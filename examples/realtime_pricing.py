#!/usr/bin/env python3
"""Real-time pricing: evaluate alternative contract terms while on the phone.

Section IV of the paper motivates the GPU engine with this scenario: "an
underwriter analyses different contractual terms and pricing while discussing
a deal with a client over the phone", using ~50 K trials per evaluation.

The script prices one cedant's proposed layer under four alternative term
structures (different retentions, limits and a stop-loss variant).  Each
alternative re-runs the aggregate analysis against the *same* Year Event
Table and the *same* ELTs — only the terms change — so the engine's layer
cache makes each re-evaluation cheap, and the loss distributions are directly
comparable trial by trial.

Run with::

    python examples/realtime_pricing.py
"""

from __future__ import annotations

import time

from repro import AggregateRiskEngine, EngineConfig
from repro.financial.contracts import aggregate_xl_terms, combined_xl_terms, occurrence_xl_terms
from repro.portfolio.pricing import price_layer
from repro.workloads import WorkloadGenerator, bench_spec
from repro.ylt.metrics import compute_risk_metrics
from repro.ylt.reporting import format_layer_comparison


def main() -> None:
    # A 10,000-trial workload: large enough for stable tail metrics, small
    # enough for interactive turnaround in pure Python.
    spec = bench_spec(seed=77).scaled(n_trials=10_000)
    workload = WorkloadGenerator(spec).generate()
    base_layer = workload.program[0]

    # The quote under discussion: a per-occurrence XL with increasing
    # retention, a cheaper low-limit variant, and a combined structure with an
    # annual stop-loss cap.
    reference_loss = base_layer.terms.occurrence_limit
    alternatives = {
        "quoted terms": base_layer,
        "higher retention": base_layer.with_terms(
            occurrence_xl_terms(base_layer.terms.occurrence_retention * 2.0, reference_loss),
            name="higher retention",
        ),
        "halved limit": base_layer.with_terms(
            occurrence_xl_terms(base_layer.terms.occurrence_retention, reference_loss * 0.5),
            name="halved limit",
        ),
        "with annual cap": base_layer.with_terms(
            combined_xl_terms(
                base_layer.terms.occurrence_retention,
                reference_loss,
                base_layer.terms.occurrence_retention * 4.0,
                reference_loss * 2.0,
            ),
            name="with annual cap",
        ),
        "pure stop-loss": base_layer.with_terms(
            aggregate_xl_terms(base_layer.terms.occurrence_retention * 5.0, reference_loss * 3.0),
            name="pure stop-loss",
        ),
    }

    engine = AggregateRiskEngine(EngineConfig(backend="chunked", chunk_events=65_536,
                                              record_max_occurrence=False))
    metrics_by_name = {}
    pricing_by_name = {}
    for name, layer in alternatives.items():
        start = time.perf_counter()
        result = engine.run(layer, workload.yet)
        elapsed = time.perf_counter() - start
        year_losses = result.ylt.layer(0)
        metrics_by_name[name] = compute_risk_metrics(year_losses)
        pricing_by_name[name] = price_layer(layer, year_losses,
                                            volatility_loading=0.3, expense_ratio=0.15)
        print(f"re-priced {name!r:<20} in {elapsed * 1000:7.1f} ms "
              f"({result.n_trials:,} trials)")

    print("\nLoss comparison (per alternative):")
    print(format_layer_comparison(metrics_by_name, return_period=100.0))

    print("\nTechnical pricing:")
    for name, pricing in pricing_by_name.items():
        print(f"  {name:<20} {pricing.summary()}")


if __name__ == "__main__":
    main()
