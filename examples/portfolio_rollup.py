#!/usr/bin/env python3
"""Portfolio roll-up: the weekly portfolio-update scenario.

Section IV of the paper: "Aggregate analysis using 50K trials on complete
portfolios consisting of 5000 contracts can be completed in around 24 hours
which may be sufficiently fast to support weekly portfolio updates performed
to account for changes such as currency fluctuations."

This example runs a (scaled-down) portfolio of layers of mixed contract types
through the multicore backend, rolls the per-layer Year Loss Tables up to
portfolio level, and prints the portfolio metrics, per-layer contributions,
group-level views and the diversification benefit — the quantities a portfolio
manager reviews in the weekly update.

Run with::

    python examples/portfolio_rollup.py
"""

from __future__ import annotations

from repro import AggregateRiskEngine, EngineConfig
from repro.parallel.executor import available_cores
from repro.portfolio.rollup import portfolio_rollup
from repro.workloads import WorkloadGenerator, bench_spec
from repro.ylt.reporting import format_layer_comparison, format_metrics_report


def main() -> None:
    # A portfolio of 8 layers x 5 ELTs over 4000 trials.
    spec = bench_spec(seed=2026).scaled(n_trials=4000, n_layers=8, elts_per_layer=5)
    workload = WorkloadGenerator(spec).generate()
    program = workload.program
    print(f"Portfolio: {program.n_layers} layers, "
          f"{program.mean_elts_per_layer:.0f} ELTs/layer, "
          f"{workload.yet.n_trials:,} trials")
    print(f"Direct-access-table memory estimate: "
          f"{program.memory_estimate_bytes() / 1e6:.0f} MB\n")

    engine = AggregateRiskEngine(EngineConfig(
        backend="multicore",
        n_workers=max(available_cores(), 1),
    ))
    result = engine.run(program, workload.yet)
    print("Analysis :", result.summary(), "\n")

    rollup = portfolio_rollup(result.ylt, program, reference_return_period=100.0)

    print(format_metrics_report(rollup.portfolio_metrics, title="Portfolio (all layers combined)"))
    print()
    print("Per-layer view:")
    print(format_layer_comparison(rollup.layer_metrics, return_period=100.0))
    print()
    if rollup.group_metrics:
        print("By contract family:")
        print(format_layer_comparison(rollup.group_metrics, return_period=100.0))
        print()
    print(f"Diversification benefit at 100yr PML: {rollup.diversification_benefit:.1%}")


if __name__ == "__main__":
    main()
