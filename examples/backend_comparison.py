#!/usr/bin/env python3
"""Backend comparison: run every engine backend on one workload.

Reproduces, at laptop scale, the comparison behind Figure 6a of the paper:
the same aggregate analysis executed by the sequential reference, the
vectorized and chunked single-process backends, the multi-process backend and
the simulated-GPU backend.  The script verifies that all backends produce the
identical Year Loss Table, reports their measured wall-clock times, and prints
the analytical full-scale projections (1M trials x 1000 events x 15 ELTs) that
EXPERIMENTS.md compares against the paper's numbers.

Run with::

    python examples/backend_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import AggregateRiskEngine, EngineConfig
from repro.core.projection import project_summary
from repro.parallel.device import WorkloadShape
from repro.parallel.executor import available_cores
from repro.workloads import WorkloadGenerator, bench_spec


def main() -> None:
    # The sequential reference is pure Python, so the comparison workload is
    # kept modest; the relative ordering is what matters.
    spec = bench_spec(seed=4242).scaled(n_trials=500)
    workload = WorkloadGenerator(spec).generate()
    print("Workload:", workload.summary(), "\n")

    configs = {
        "sequential (reference)": EngineConfig(backend="sequential"),
        "vectorized": EngineConfig(backend="vectorized"),
        "chunked": EngineConfig(backend="chunked", chunk_events=16_384),
        f"multicore ({max(available_cores(), 1)} workers)": EngineConfig(
            backend="multicore", n_workers=max(available_cores(), 1)
        ),
        "gpu-simulated (optimised)": EngineConfig(
            backend="gpu", gpu_optimised=True, threads_per_block=64, gpu_chunk_size=4
        ),
        "gpu-simulated (basic)": EngineConfig(
            backend="gpu", gpu_optimised=False, threads_per_block=256
        ),
    }

    reference_losses = None
    print(f"{'backend':<28}{'wall (s)':>12}{'speedup':>10}{'modelled device (s)':>22}")
    baseline = None
    for name, config in configs.items():
        result = AggregateRiskEngine(config).run(workload.program, workload.yet)
        if reference_losses is None:
            reference_losses = result.ylt.losses
            baseline = result.wall_seconds
        else:
            assert np.allclose(result.ylt.losses, reference_losses, rtol=1e-9, atol=1e-6), (
                f"backend {name} disagrees with the sequential reference"
            )
        modelled = "" if result.modeled_seconds is None else f"{result.modeled_seconds:.4f}"
        print(f"{name:<28}{result.wall_seconds:>12.4f}{baseline / result.wall_seconds:>10.1f}x"
              f"{modelled:>22}")

    print("\nAll backends agree with the sequential reference (checked trial by trial).")

    shape = WorkloadShape(n_trials=1_000_000, events_per_trial=1000.0, n_elts=15, n_layers=1)
    projections = project_summary(shape, n_cores=8)
    print("\nProjected full-scale runtimes (1M trials x 1000 events x 15 ELTs):")
    paper = {"sequential_cpu": "~325", "multicore_cpu": "125-135", "basic_gpu": "38.47",
             "optimised_gpu": "22.72"}
    for name, seconds in projections.items():
        print(f"  {name:<16}{seconds:>10.1f} s    (paper: {paper[name]} s)")


if __name__ == "__main__":
    main()
