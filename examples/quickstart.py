#!/usr/bin/env python3
"""Quickstart: one aggregate analysis from synthetic data to risk metrics.

This is the 60-second tour of the library:

1. generate a synthetic workload (catalog -> exposure -> ELTs -> layers, plus
   a Year Event Table) from a single seed,
2. run the Aggregate Risk Engine with the default (vectorized) backend,
3. derive the standard portfolio risk metrics (AAL, PML, TVaR) from the
   resulting Year Loss Table and print a report,
4. batch-price several candidate-term variants of the program in one
   ``run_many`` invocation (the fused multi-layer path),
5. quote the program with secondary-uncertainty bands: every ELT loss becomes
   a distribution and all replications are priced in one replication-batched
   stacked pass (CLI equivalent: ``are uncertainty --replications 32``),
6. stream a wider term sweep through the PortfolioSweepService: the variants
   lower to one ExecutionPlan per block — identical ELT gathers are shared
   across variants — and quotes stream out block by block (CLI equivalent:
   ``are sweep --variants 6 --block-rows 4``),
7. serve repeated requests from a warm RiskService: declarative JSON-able
   requests, a content-addressed cache of lowered plans and fused stacks,
   and cache/timing metadata on every response (CLI equivalents:
   ``are request --json '{...}'`` and the ``are serve`` NDJSON loop),
8. shard the run over disjoint trial ranges and merge the partial results
   *exactly* — then price the same workload out-of-core from a
   memory-mapped YET store, resident memory bounded by one shard (CLI
   equivalent: ``are run --shards 8``),
9. re-price after the Year Event Table *grows*: a result-caching service
   recognises that the new table's first trials are byte-identical to one
   it already priced, pushes only the appended trial range through the
   kernels and merges it into the cached year-loss blocks — bit-identical
   to a cold run of the whole extended table (CLI equivalent:
   ``are serve --result-cache``),
10. serve several clients *concurrently* from one warm process: an asyncio
    TCP front end multiplexes pipelined NDJSON clients over the same
    service, answers stay bit-identical to serial submission, and overload
    is rejected with a structured error instead of queueing unboundedly
    (CLI equivalent: ``are serve --listen 127.0.0.1:7332``),
11. distribute the run across a fleet: two worker processes listening on
    sockets each receive the plan once (digest-keyed), price disjoint
    trial shards pulled from a shared queue, and stream their partial
    results back into one accumulator — the merge is bit-identical to the
    monolithic run (CLI equivalent: ``are worker --listen 127.0.0.1:7401``
    on each box, then ``are run --fleet host1:7401,host2:7401``).

Every entry point above lowers to the same ExecutionPlan IR (one workload
description of tiles over trial blocks x stacked layer rows) that all five
backends schedule; power users can build plans directly with
``PlanBuilder`` and execute them via ``engine.run_plan(plan)``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AggregateRiskEngine, EngineConfig, RiskService
from repro.financial.terms import LayerTerms
from repro.portfolio import PortfolioSweepService, ReinsuranceProgram, batch_quote
from repro.uncertainty import (
    SecondaryUncertaintyAnalysis,
    UncertainEventLossTable,
    UncertainLayer,
)
from repro.workloads import WorkloadGenerator, bench_spec
from repro.ylt.metrics import compute_risk_metrics
from repro.ylt.reporting import format_metrics_report


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build a workload: 2000 trials x 100 events/trial, one layer of 15
    #    ELTs over a 40,000-event catalog (a 1/500-scale version of the
    #    paper's headline configuration).
    # ------------------------------------------------------------------ #
    workload = WorkloadGenerator(bench_spec(seed=2012)).generate()
    print("Workload :", workload.summary())
    layer = workload.program[0]
    print("Layer    :", layer.name, "-", layer.contract_kind)
    print("Terms    :", layer.terms.describe())

    # ------------------------------------------------------------------ #
    # 2. Run the aggregate analysis.
    # ------------------------------------------------------------------ #
    engine = AggregateRiskEngine(EngineConfig(backend="vectorized", record_phases=True))
    result = engine.run(workload.program, workload.yet)
    print("\nAnalysis :", result.summary())
    print("Throughput: {:,.0f} (layer, trial) pairs / second".format(result.trials_per_second))
    if result.phase_breakdown is not None:
        print("\nWhere the time goes (measured):")
        print(result.phase_breakdown.format_table())

    # ------------------------------------------------------------------ #
    # 3. Portfolio risk metrics from the Year Loss Table.
    # ------------------------------------------------------------------ #
    year_losses = result.ylt.portfolio_losses()
    metrics = compute_risk_metrics(year_losses)
    print()
    print(format_metrics_report(metrics, title="Portfolio risk metrics"))

    # ------------------------------------------------------------------ #
    # 4. Batch pricing: quote several candidate-term variants in ONE engine
    #    invocation.  run_many concatenates the programs' layers and prices
    #    them all through the fused multi-layer kernel in a single pass over
    #    the Year Event Table; batch_quote turns the per-program year losses
    #    into technical premiums.
    # ------------------------------------------------------------------ #
    variants = []
    for scale in (0.9, 1.0, 1.1):
        layers = [
            lyr.with_terms(
                LayerTerms(
                    occurrence_retention=lyr.terms.occurrence_retention * scale,
                    occurrence_limit=lyr.terms.occurrence_limit,
                    aggregate_retention=lyr.terms.aggregate_retention * scale,
                    aggregate_limit=lyr.terms.aggregate_limit,
                )
            )
            for lyr in workload.program.layers
        ]
        variants.append(ReinsuranceProgram(layers, name=f"retention x{scale:.1f}"))

    quotes = batch_quote(variants, workload.yet, engine=AggregateRiskEngine())
    print("\nBatch pricing (one fused engine invocation, 3 term variants):")
    for quote in quotes:
        print("  ", quote.summary())

    # ------------------------------------------------------------------ #
    # 5. Banded quote under secondary uncertainty.  Each ELT loss becomes a
    #    Gamma distribution (CV = 0.5) and run_batched prices all 32 sampled
    #    replications as fused stack rows in a single pass over the YET —
    #    the percentile band around each metric is the price of the loss
    #    uncertainty, at roughly the cost of one batched pricing call.
    # ------------------------------------------------------------------ #
    uncertain_layers = [
        UncertainLayer(
            elts=[UncertainEventLossTable.from_elt(elt, cv=0.5) for elt in lyr.elts],
            terms=lyr.terms,
            name=lyr.name,
        )
        for lyr in workload.program.layers
    ]
    analysis = SecondaryUncertaintyAnalysis(
        uncertain_layers, config=EngineConfig(record_max_occurrence=False)
    )
    banded = analysis.quote(workload.yet, n_replications=32, rng=2012)
    print("\nBanded quote (32 replications, one stacked engine pass):")
    print("  ", banded.summary())
    aal_band = banded.band("aal")
    print(f"   AAL band: mean={aal_band.mean:,.0f} "
          f"p5={aal_band.low:,.0f} p95={aal_band.high:,.0f} "
          f"(relative spread {aal_band.relative_spread():.1%})")

    # ------------------------------------------------------------------ #
    # 6. Streaming sweep: quote a wider term grid block by block.  Each
    #    block is one ExecutionPlan — the variants' layers share their ELT
    #    objects, so the plan dedupes their term-netted stack rows and the
    #    fused gather reads each distinct row once per block.  The generator
    #    yields quotes while later blocks are still pending, keeping the
    #    working set at one block's stack however long the sweep is.
    # ------------------------------------------------------------------ #
    grid = []
    for i in range(6):
        scale = 0.8 + 0.1 * i
        layers = [
            lyr.with_terms(
                LayerTerms(
                    occurrence_retention=lyr.terms.occurrence_retention * scale,
                    occurrence_limit=lyr.terms.occurrence_limit,
                    aggregate_retention=lyr.terms.aggregate_retention,
                    aggregate_limit=lyr.terms.aggregate_limit,
                )
            )
            for lyr in workload.program.layers
        ]
        grid.append(ReinsuranceProgram(layers, name=f"grid x{scale:.1f}"))

    service = PortfolioSweepService(AggregateRiskEngine())
    print("\nStreaming sweep (6 variants, <= 4 rows per engine pass):")
    for block in service.sweep(grid, workload.yet, max_rows_per_block=4):
        print("  ", block.summary())
        for quote in block.quotes:
            print("    ", quote.summary())

    # ------------------------------------------------------------------ #
    # 7. Serve it: a warm RiskService answers declarative requests.  The
    #    request is pure data (dict/JSON); the service resolves the names
    #    against its registry, and a content-addressed PlanCache reuses the
    #    lowered plan + fused loss stack across requests — the second,
    #    warm submission skips every pre-kernel step and is bit-identical
    #    to the first.  `service.submit(request.to_json())` would behave
    #    identically, which is exactly what `are serve` does per stdin line.
    # ------------------------------------------------------------------ #
    risk_service = RiskService(EngineConfig(backend="vectorized"))
    risk_service.register_workload("renewal", workload)
    request = {"kind": "run", "program": "renewal"}
    cold = risk_service.submit(request)
    warm = risk_service.submit(request)
    print("\nRiskService request/response (same request twice):")
    print("   cold:", cold.summary())
    print("   warm:", warm.summary())
    print("  ", risk_service.cache_stats().summary())
    print("   warm == cold bit-for-bit:",
          bool((warm.result.ylt.losses == cold.result.ylt.losses).all()))
    risk_service.close()

    # ------------------------------------------------------------------ #
    # 8. Sharded + out-of-core execution.  Every backend runs a plan as a
    #    loop over disjoint trial shards whose PartialResults merge exactly
    #    (per-trial reductions are trial-local, so any shard count is
    #    bit-identical to the monolithic run).  Writing the YET to a store
    #    directory and pricing it through YetShardReader keeps only one
    #    shard's event columns resident — the out-of-core path for tables
    #    bigger than RAM.
    # ------------------------------------------------------------------ #
    import tempfile
    from pathlib import Path

    from repro.yet import YetShardReader, save_yet_store

    sharded_engine = AggregateRiskEngine(
        EngineConfig(backend="vectorized", trial_shards=8)
    )
    sharded = sharded_engine.run(workload.program, workload.yet)
    print("\nSharded run (8 trial shards, merged exactly):")
    print("  ", sharded.summary())
    print("   sharded == monolithic bit-for-bit:",
          bool((sharded.ylt.losses == result.ylt.losses).all()))

    with tempfile.TemporaryDirectory() as tmp:
        store = save_yet_store(workload.yet, Path(tmp) / "yet_store")
        with YetShardReader(store) as reader:
            out_of_core = AggregateRiskEngine(EngineConfig()).run_sharded(
                workload.program, reader, n_shards=8
            )
    print("   out-of-core (memory-mapped store, 8 shards):",
          out_of_core.details["sharded"])
    print("   out-of-core == monolithic bit-for-bit:",
          bool((out_of_core.ylt.losses == result.ylt.losses).all()))

    # ------------------------------------------------------------------ #
    # 9. Append-trials warm delta.  The catalog vendor ships 100 more
    #    simulated years; the result-caching service sees that the extended
    #    table's first 2000 trials hash to a YET it has already priced, so
    #    only the appended range goes through the kernels and its partial
    #    result merges into the cached blocks — bit-identical to pricing
    #    the whole extended table cold.
    # ------------------------------------------------------------------ #
    import numpy as np

    from repro.yet import YearEventTable

    rng = np.random.default_rng(2013)
    yet = workload.yet
    lengths = rng.integers(1, int(yet.mean_events_per_trial * 2) + 1, size=100)
    extra_offsets = np.concatenate([[0], np.cumsum(lengths)])
    extended_yet = YearEventTable(
        np.concatenate(
            [yet.event_ids, rng.integers(0, yet.catalog_size, size=int(lengths.sum()))]
        ),
        np.concatenate([yet.trial_offsets, extra_offsets[1:] + yet.n_occurrences]),
        yet.catalog_size,
        yet.timestamps if yet.timestamps is None else np.concatenate(
            [yet.timestamps, np.sort(rng.random(int(lengths.sum())))]
        ),
    )

    caching_service = RiskService(EngineConfig(backend="vectorized"), result_cache=True)
    caching_service.register_program("renewal", workload.program)
    caching_service.register_yet("renewal", yet)
    base = caching_service.submit({"kind": "run", "program": "renewal"})

    caching_service.register_yet("renewal", extended_yet)
    delta = caching_service.submit({"kind": "run", "program": "renewal"})
    cold = RiskService(EngineConfig(backend="vectorized"))
    cold.register_program("renewal", workload.program)
    cold.register_yet("renewal", extended_yet)
    cold_run = cold.submit({"kind": "run", "program": "renewal"})

    print("\nAppend-trials warm delta (+100 trials on a result-caching service):")
    print("   base    :", base.result_cache["status"],
          f"({yet.n_trials} trials priced, cached)")
    print("   delta   :", delta.result_cache["status"],
          f"({delta.result_cache['repriced_trials']} trials repriced, "
          f"{delta.result_cache['cached_trials']} served from cache)")
    print("  ", caching_service.result_cache_stats().summary())
    print("   delta == cold extended run bit-for-bit:",
          bool((delta.result.ylt.losses == cold_run.result.ylt.losses).all()))
    caching_service.close()
    cold.close()

    # ------------------------------------------------------------------ #
    # 10. Concurrent serving.  One warm service behind the asyncio TCP
    #     front end answers pipelined clients; request "id"s match answers
    #     to questions, and every answer is bit-identical to a serial
    #     submission of the same document.
    # ------------------------------------------------------------------ #
    from repro.service.server import ServeClient, ServerThread

    serving = RiskService(EngineConfig(backend="vectorized"))
    serving.register_program("book", workload.program)
    serving.register_yet("book", workload.yet)
    serial_aal = serving.submit({"kind": "run", "program": "book"}).to_dict()[
        "results"
    ][0]["portfolio_aal"]

    with ServerThread(serving, max_inflight=2, queue_depth=8) as handle:
        with ServeClient(handle.server.host, handle.server.port) as client:
            for i in range(4):  # pipelined: all four sent before any answer
                client.send({"kind": "run", "program": "book", "id": i})
            answers = [client.recv() for _ in range(4)]
            stats = client.request({"op": "stats"})["stats"]

    print("\nConcurrent serving (4 pipelined requests over one TCP connection):")
    print("   answers :", sorted(answer["id"] for answer in answers))
    print("   served == serial bit-for-bit:",
          all(a["results"][0]["portfolio_aal"] == serial_aal for a in answers))
    print(f"   server  : served {stats['served']} | "
          f"p99 {stats['p99_seconds'] * 1e3:.1f}ms")
    serving.close()

    # ------------------------------------------------------------------ #
    # 11. Distributed fleet execution.  Each worker listens on a socket
    #     (`are worker --listen ...` runs the same class as a process);
    #     the coordinator ships the program and YET once, workers pull
    #     trial shards from a shared queue — work stealing, so a fast
    #     worker prices more shards — and every PartialResult streams
    #     back into one accumulator the moment it is priced.  Placement
    #     is pure column assembly: the merged table is bit-identical to
    #     the monolithic run, and a worker lost mid-run only costs its
    #     unfinished shards a reassignment.
    # ------------------------------------------------------------------ #
    from repro.distributed import FleetWorker

    with FleetWorker(config=EngineConfig(backend="vectorized")) as w1, FleetWorker(
        config=EngineConfig(backend="vectorized")
    ) as w2:
        fleet = engine.run_distributed(
            workload.program,
            workload.yet,
            workers=[w1.address, w2.address],
            n_shards=8,
        )
    print("\nDistributed fleet (2 socket workers, 8 shards, work stealing):")
    print("  ", fleet.summary())
    print("   shards per worker:",
          dict(fleet.details["fleet"]["shards_per_worker"]))
    print("   fleet == monolithic bit-for-bit:",
          bool((fleet.ylt.losses == result.ylt.losses).all()))


if __name__ == "__main__":
    main()
