#!/usr/bin/env python3
"""Quickstart: one aggregate analysis from synthetic data to risk metrics.

This is the 60-second tour of the library:

1. generate a synthetic workload (catalog -> exposure -> ELTs -> layers, plus
   a Year Event Table) from a single seed,
2. run the Aggregate Risk Engine with the default (vectorized) backend,
3. derive the standard portfolio risk metrics (AAL, PML, TVaR) from the
   resulting Year Loss Table and print a report.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AggregateRiskEngine, EngineConfig
from repro.workloads import WorkloadGenerator, bench_spec
from repro.ylt.metrics import compute_risk_metrics
from repro.ylt.reporting import format_metrics_report


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build a workload: 2000 trials x 100 events/trial, one layer of 15
    #    ELTs over a 40,000-event catalog (a 1/500-scale version of the
    #    paper's headline configuration).
    # ------------------------------------------------------------------ #
    workload = WorkloadGenerator(bench_spec(seed=2012)).generate()
    print("Workload :", workload.summary())
    layer = workload.program[0]
    print("Layer    :", layer.name, "-", layer.contract_kind)
    print("Terms    :", layer.terms.describe())

    # ------------------------------------------------------------------ #
    # 2. Run the aggregate analysis.
    # ------------------------------------------------------------------ #
    engine = AggregateRiskEngine(EngineConfig(backend="vectorized", record_phases=True))
    result = engine.run(workload.program, workload.yet)
    print("\nAnalysis :", result.summary())
    print("Throughput: {:,.0f} (layer, trial) pairs / second".format(result.trials_per_second))
    if result.phase_breakdown is not None:
        print("\nWhere the time goes (measured):")
        print(result.phase_breakdown.format_table())

    # ------------------------------------------------------------------ #
    # 3. Portfolio risk metrics from the Year Loss Table.
    # ------------------------------------------------------------------ #
    year_losses = result.ylt.portfolio_losses()
    metrics = compute_risk_metrics(year_losses)
    print()
    print(format_metrics_report(metrics, title="Portfolio risk metrics"))


if __name__ == "__main__":
    main()
