#!/usr/bin/env python3
"""The full analytical pipeline, step by step.

The paper's introduction describes the three stages of a reinsurer's
analytical pipeline: (i) risk assessment with catastrophe models, (ii)
portfolio risk management and pricing via aggregate analysis, and (iii)
enterprise risk management on the combined results.  This example walks
through stages (i) and (ii) explicitly — rather than using the bundled
workload generator — so the intermediate artefacts (catalog, exposure sets,
ELTs, YET, YLT, EP curves) are all visible.

Run with::

    python examples/catastrophe_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import AggregateRiskEngine, EngineConfig
from repro.catalog import CatalogGenerator
from repro.elt import elt_statistics
from repro.exposure import ExposureGenerator, RegionGrid
from repro.financial import CurrencyConverter, Currency, FinancialTerms
from repro.financial.contracts import combined_xl_terms
from repro.hazard import CatastropheModel
from repro.portfolio import Layer, ReinsuranceProgram
from repro.yet import YETSimulator
from repro.ylt import aep_curve, oep_curve
from repro.ylt.reporting import format_ep_table


def main() -> None:
    n_regions = 16
    rng_seed = 9001

    # --- Stage 0: the stochastic event catalog ------------------------- #
    catalog = CatalogGenerator(n_regions=n_regions).generate_with_rate(
        20_000, events_per_year=120.0, rng=rng_seed
    )
    print(f"Catalog: {catalog.size:,} events, "
          f"{catalog.total_annual_rate:.0f} expected occurrences/year")
    for peril, info in catalog.peril_summary().items():
        print(f"  {peril.value:<14} {int(info['count']):>7,} events  "
              f"rate {info['total_annual_rate']:.2f}/yr")

    # --- Stage 1: exposure sets -> catastrophe model -> ELTs ------------ #
    grid = RegionGrid(n_lat=2, n_lon=8)
    exposure_generator = ExposureGenerator(grid)
    cedants = exposure_generator.generate_many(6, n_buildings=150, rng=rng_seed + 1)
    cat_model = CatastropheModel(catalog, n_regions=n_regions)

    fx = CurrencyConverter()
    cedant_currencies = [Currency.USD, Currency.EUR, Currency.USD,
                         Currency.GBP, Currency.JPY, Currency.CAD]
    elts = []
    print("\nEvent Loss Tables (one per cedant exposure set):")
    for portfolio, currency in zip(cedants, cedant_currencies):
        terms = FinancialTerms(share=0.85, fx_rate=fx.fx_rate_for_elt(currency))
        elt = cat_model.generate_elt(portfolio, terms=terms)
        elts.append(elt)
        stats = elt_statistics(elt)
        print(f"  {elt.name:<14} ({currency.value})  {stats.format_summary()}")

    # --- Stage 2a: layers over the ELTs --------------------------------- #
    probabilities = catalog.occurrence_probabilities()
    expected_event_loss = sum(float(probabilities[e.event_ids] @ e.losses) for e in elts)
    expected_annual_loss = expected_event_loss * catalog.total_annual_rate
    working_layer = Layer(
        elts[:3],
        combined_xl_terms(0.02 * expected_annual_loss, 0.5 * expected_annual_loss,
                          0.05 * expected_annual_loss, 1.5 * expected_annual_loss),
        name="working-layer",
    )
    cat_layer = Layer(
        elts[3:],
        combined_xl_terms(0.1 * expected_annual_loss, 2.0 * expected_annual_loss,
                          0.2 * expected_annual_loss, 4.0 * expected_annual_loss),
        name="cat-layer",
    )
    program = ReinsuranceProgram([working_layer, cat_layer], name="pipeline-program")

    # --- Stage 2b: the Year Event Table ---------------------------------- #
    yet = YETSimulator(catalog).simulate(5000, rng=rng_seed + 2)
    print(f"\nYET: {yet.n_trials:,} trials, "
          f"{yet.mean_events_per_trial:.0f} events/trial on average, "
          f"{yet.memory_bytes / 1e6:.1f} MB")

    # --- Stage 2c: aggregate analysis ------------------------------------ #
    engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
    result = engine.run(program, yet)
    print("Aggregate analysis:", result.summary())

    # --- Stage 2d: EP curves and headline metrics ------------------------ #
    portfolio_losses = result.ylt.portfolio_losses()
    print(f"\nPortfolio AAL: {portfolio_losses.mean():,.0f}")
    print(f"Worst simulated year: {portfolio_losses.max():,.0f}")
    print()
    print(format_ep_table(aep_curve(portfolio_losses), return_periods=(10, 25, 50, 100, 250)))
    print()
    print(format_ep_table(oep_curve(result.ylt.portfolio_max_occurrence()),
                          return_periods=(10, 25, 50, 100, 250)))

    # Sanity relationship: the AEP curve dominates the OEP curve.
    aep100 = aep_curve(portfolio_losses).loss_at_return_period(100)
    oep100 = oep_curve(result.ylt.portfolio_max_occurrence()).loss_at_return_period(100)
    assert aep100 >= oep100 - 1e-6
    print(f"\nAEP(100yr) = {aep100:,.0f} >= OEP(100yr) = {oep100:,.0f}  ✓")


if __name__ == "__main__":
    main()
