#!/usr/bin/env python3
"""Secondary uncertainty: losses as distributions rather than simple means.

The paper's discussion (Section IV) anticipates extending the engine so that
event losses are represented as distributions.  This example wraps a
workload's ELTs with per-event loss uncertainty (coefficient of variation
0.6), runs a replicated aggregate analysis, and reports how much the headline
risk metrics move when the loss uncertainty is taken into account.

Run with::

    python examples/secondary_uncertainty.py
"""

from __future__ import annotations

from repro.core.config import EngineConfig
from repro.uncertainty import (
    SecondaryUncertaintyAnalysis,
    UncertainEventLossTable,
    UncertainLayer,
)
from repro.workloads import WorkloadGenerator, bench_spec


def main() -> None:
    spec = bench_spec(seed=314).scaled(n_trials=1000, elts_per_layer=6)
    workload = WorkloadGenerator(spec).generate()
    base_layer = workload.program[0]
    print("Workload:", workload.summary())

    # Wrap every ELT of the layer with a loss distribution (CV = 0.6).
    uncertain_layer = UncertainLayer(
        elts=[UncertainEventLossTable.from_elt(elt, cv=0.6) for elt in base_layer.elts],
        terms=base_layer.terms,
        name=base_layer.name,
    )
    analysis = SecondaryUncertaintyAnalysis(
        [uncertain_layer],
        config=EngineConfig(backend="vectorized", record_max_occurrence=False),
    )

    expected = analysis.expected_metrics(workload.yet, return_periods=(100.0, 250.0))
    print("\nDeterministic (mean-loss) analysis:")
    for name, value in expected.items():
        print(f"  {name:<10}: {value:>18,.0f}")

    # run_batched samples every replication from its own child stream, stacks
    # all of them into fused rows and prices them in ONE pass over the YET —
    # the cost is close to a single batched pricing call rather than
    # n_replications full engine invocations (method="replay" reproduces the
    # same numbers through the per-replication loop).
    n_replications = 40
    summaries = analysis.run_batched(
        workload.yet, n_replications=n_replications, rng=2718,
        return_periods=(100.0, 250.0), tvar_levels=(0.99,),
    )
    print(f"\nReplicated analysis ({n_replications} samplings of the event-loss distributions):")
    print(f"{'metric':<10}{'mean':>18}{'p5':>18}{'p95':>18}{'spread':>10}")
    for name, summary in summaries.items():
        print(f"{name:<10}{summary.mean:>18,.0f}{summary.low:>18,.0f}"
              f"{summary.high:>18,.0f}{summary.relative_spread():>9.1%}")

    print("\nInterpretation: the replication spread is the share of metric uncertainty")
    print("attributable to per-event loss uncertainty on top of the event-sequence")
    print("uncertainty already captured by the Year Event Table.")


if __name__ == "__main__":
    main()
