"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``.  This shim
exists so that the package can be installed in environments without the
``wheel`` package (where ``pip install -e .`` cannot build an editable wheel):
``python setup.py develop`` performs a legacy editable install.
"""

from setuptools import setup

setup()
