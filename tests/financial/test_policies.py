"""Tests for repro.financial.policies (vectorised term application)."""

import numpy as np
import pytest

from repro.financial.policies import (
    aggregate_terms_shortcut,
    apply_aggregate_terms_cumulative,
    apply_financial_terms,
    apply_financial_terms_matrix,
    apply_occurrence_terms,
    layer_net_of_terms,
)
from repro.financial.terms import FinancialTerms, LayerTerms


class TestApplyFinancialTerms:
    def test_matches_scalar_apply(self):
        terms = FinancialTerms(retention=10.0, limit=100.0, share=0.8, fx_rate=1.3)
        losses = np.array([0.0, 5.0, 50.0, 500.0])
        expected = [terms.apply(float(x)) for x in losses]
        np.testing.assert_allclose(apply_financial_terms(losses, terms), expected)

    def test_input_not_modified(self):
        losses = np.array([10.0, 20.0])
        apply_financial_terms(losses, FinancialTerms(retention=5.0))
        np.testing.assert_allclose(losses, [10.0, 20.0])


class TestApplyFinancialTermsMatrix:
    def test_rowwise_terms(self):
        losses = np.array([[100.0, 200.0], [100.0, 200.0]])
        result = apply_financial_terms_matrix(
            losses,
            retentions=np.array([0.0, 50.0]),
            limits=np.array([150.0, np.inf]),
            shares=np.array([1.0, 0.5]),
        )
        np.testing.assert_allclose(result, [[100.0, 150.0], [25.0, 75.0]])

    def test_fx_rates_applied(self):
        losses = np.array([[100.0]])
        result = apply_financial_terms_matrix(
            losses, np.array([0.0]), np.array([np.inf]), np.array([1.0]), np.array([2.0])
        )
        np.testing.assert_allclose(result, [[200.0]])

    def test_matches_per_row_scalar_function(self):
        rng = np.random.default_rng(3)
        losses = rng.gamma(2.0, 100.0, size=(4, 50))
        retentions = rng.uniform(0, 50, 4)
        limits = rng.uniform(100, 300, 4)
        shares = rng.uniform(0.3, 1.0, 4)
        result = apply_financial_terms_matrix(losses, retentions, limits, shares)
        for row in range(4):
            terms = FinancialTerms(retentions[row], limits[row], shares[row])
            np.testing.assert_allclose(result[row], apply_financial_terms(losses[row], terms))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            apply_financial_terms_matrix(np.zeros(3), np.zeros(1), np.ones(1), np.ones(1))


class TestOccurrenceAndAggregateTerms:
    def test_occurrence_terms_match_scalar(self):
        terms = LayerTerms(occurrence_retention=50.0, occurrence_limit=100.0)
        losses = np.array([0.0, 40.0, 120.0, 400.0])
        expected = [terms.apply_occurrence(float(x)) for x in losses]
        np.testing.assert_allclose(apply_occurrence_terms(losses, terms), expected)

    def test_shortcut_equals_cumulative_pass(self):
        rng = np.random.default_rng(8)
        losses = rng.gamma(1.5, 100.0, size=60)
        offsets = np.array([0, 10, 10, 25, 40, 60])
        terms = LayerTerms(aggregate_retention=300.0, aggregate_limit=1200.0)
        np.testing.assert_allclose(
            aggregate_terms_shortcut(losses, offsets, terms),
            apply_aggregate_terms_cumulative(losses, offsets, terms),
            rtol=1e-12,
        )

    def test_cumulative_pass_empty_trials(self):
        terms = LayerTerms(aggregate_retention=10.0, aggregate_limit=50.0)
        result = apply_aggregate_terms_cumulative(np.zeros(0), np.array([0, 0, 0]), terms)
        np.testing.assert_allclose(result, [0.0, 0.0])

    def test_aggregate_limit_binds(self):
        losses = np.array([100.0, 100.0, 100.0])
        offsets = np.array([0, 3])
        terms = LayerTerms(aggregate_retention=0.0, aggregate_limit=150.0)
        np.testing.assert_allclose(aggregate_terms_shortcut(losses, offsets, terms), [150.0])

    def test_aggregate_retention_binds(self):
        losses = np.array([100.0, 100.0])
        offsets = np.array([0, 2])
        terms = LayerTerms(aggregate_retention=150.0, aggregate_limit=np.inf)
        np.testing.assert_allclose(aggregate_terms_shortcut(losses, offsets, terms), [50.0])


class TestLayerNetOfTerms:
    def test_hand_computed_example(self):
        # One trial with three occurrences of combined losses 100, 200, 300.
        per_event = np.array([100.0, 200.0, 300.0])
        offsets = np.array([0, 3])
        terms = LayerTerms(
            occurrence_retention=50.0,
            occurrence_limit=200.0,
            aggregate_retention=100.0,
            aggregate_limit=250.0,
        )
        # Occurrence losses: 50, 150, 200 -> total 400.
        # Aggregate: min(max(400 - 100, 0), 250) = 250.
        np.testing.assert_allclose(layer_net_of_terms(per_event, offsets, terms), [250.0])

    def test_shortcut_flag_equivalence(self):
        rng = np.random.default_rng(11)
        per_event = rng.gamma(2.0, 50.0, size=40)
        offsets = np.array([0, 15, 30, 40])
        terms = LayerTerms(10.0, 120.0, 200.0, 600.0)
        np.testing.assert_allclose(
            layer_net_of_terms(per_event, offsets, terms, use_shortcut=True),
            layer_net_of_terms(per_event, offsets, terms, use_shortcut=False),
            rtol=1e-12,
        )

    def test_passthrough_terms_sum_events(self):
        per_event = np.array([10.0, 20.0, 5.0])
        offsets = np.array([0, 2, 3])
        np.testing.assert_allclose(
            layer_net_of_terms(per_event, offsets, LayerTerms()), [30.0, 5.0]
        )
