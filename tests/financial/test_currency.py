"""Tests for repro.financial.currency."""

import pytest

from repro.financial.currency import Currency, CurrencyConverter


class TestCurrencyConverter:
    def test_default_rates_identity_for_base(self):
        converter = CurrencyConverter()
        assert converter.rate(Currency.USD) == pytest.approx(1.0)

    def test_convert_to_base(self):
        converter = CurrencyConverter({Currency.EUR: 1.2, Currency.USD: 1.0})
        assert converter.convert(100.0, Currency.EUR) == pytest.approx(120.0)

    def test_cross_rate(self):
        converter = CurrencyConverter({Currency.EUR: 1.2, Currency.GBP: 1.5, Currency.USD: 1.0})
        assert converter.rate(Currency.GBP, Currency.EUR) == pytest.approx(1.25)

    def test_round_trip_conversion(self):
        converter = CurrencyConverter()
        amount = 1234.5
        eur = converter.convert(amount, Currency.USD, Currency.EUR)
        back = converter.convert(eur, Currency.EUR, Currency.USD)
        assert back == pytest.approx(amount)

    def test_fx_rate_for_elt(self):
        converter = CurrencyConverter({Currency.JPY: 0.01, Currency.USD: 1.0})
        assert converter.fx_rate_for_elt(Currency.JPY) == pytest.approx(0.01)

    def test_unknown_currency_raises(self):
        converter = CurrencyConverter({Currency.USD: 1.0})
        with pytest.raises(KeyError):
            converter.rate(Currency.AUD)

    def test_base_rate_must_be_one(self):
        with pytest.raises(ValueError):
            CurrencyConverter({Currency.USD: 2.0})

    def test_non_positive_rate_rejected(self):
        with pytest.raises(ValueError):
            CurrencyConverter({Currency.EUR: 0.0, Currency.USD: 1.0})

    def test_custom_base(self):
        converter = CurrencyConverter({Currency.USD: 0.9, Currency.EUR: 1.0}, base=Currency.EUR)
        assert converter.base is Currency.EUR
        assert converter.convert(10.0, Currency.USD) == pytest.approx(9.0)

    def test_currencies_listing(self):
        converter = CurrencyConverter()
        assert Currency.USD in converter.currencies
