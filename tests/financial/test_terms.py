"""Tests for repro.financial.terms (Table I semantics)."""

import math

import pytest

from repro.financial.terms import FinancialTerms, LayerTerms, LayerTermsVectors


class TestFinancialTerms:
    def test_passthrough_defaults(self):
        terms = FinancialTerms()
        assert terms.is_passthrough
        assert terms.apply(123.4) == pytest.approx(123.4)

    def test_retention_subtracted(self):
        terms = FinancialTerms(retention=100.0)
        assert terms.apply(250.0) == pytest.approx(150.0)
        assert terms.apply(80.0) == 0.0

    def test_limit_caps(self):
        terms = FinancialTerms(limit=300.0)
        assert terms.apply(1000.0) == pytest.approx(300.0)

    def test_share_scales(self):
        assert FinancialTerms(share=0.25).apply(400.0) == pytest.approx(100.0)

    def test_fx_applied_before_retention(self):
        terms = FinancialTerms(retention=100.0, fx_rate=2.0)
        # 100 * 2 = 200 gross, minus retention 100 = 100
        assert terms.apply(100.0) == pytest.approx(100.0)

    def test_full_stack(self):
        terms = FinancialTerms(retention=50.0, limit=200.0, share=0.5, fx_rate=1.5)
        # 300 * 1.5 = 450; min(max(450 - 50, 0), 200) = 200; * 0.5 = 100
        assert terms.apply(300.0) == pytest.approx(100.0)

    @pytest.mark.parametrize("kwargs", [
        dict(retention=-1.0),
        dict(limit=-1.0),
        dict(share=1.2),
        dict(share=-0.1),
        dict(fx_rate=0.0),
    ])
    def test_invalid_terms(self, kwargs):
        with pytest.raises(ValueError):
            FinancialTerms(**kwargs)

    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            FinancialTerms().apply(-5.0)


class TestLayerTerms:
    def test_passthrough_defaults(self):
        terms = LayerTerms()
        assert terms.is_passthrough
        assert not terms.has_occurrence_terms
        assert not terms.has_aggregate_terms

    def test_occurrence_application_matches_table1(self):
        # Table I: occurrence loss net of retention, capped at the limit.
        terms = LayerTerms(occurrence_retention=100.0, occurrence_limit=400.0)
        assert terms.apply_occurrence(50.0) == 0.0
        assert terms.apply_occurrence(300.0) == pytest.approx(200.0)
        assert terms.apply_occurrence(1000.0) == pytest.approx(400.0)

    def test_aggregate_application_matches_table1(self):
        terms = LayerTerms(aggregate_retention=500.0, aggregate_limit=1000.0)
        assert terms.apply_aggregate(400.0) == 0.0
        assert terms.apply_aggregate(900.0) == pytest.approx(400.0)
        assert terms.apply_aggregate(5000.0) == pytest.approx(1000.0)

    def test_max_annual_recovery(self):
        assert LayerTerms(aggregate_limit=750.0).max_annual_recovery() == 750.0
        assert math.isinf(LayerTerms().max_annual_recovery())

    def test_flags(self):
        assert LayerTerms(occurrence_retention=1.0).has_occurrence_terms
        assert LayerTerms(aggregate_limit=10.0).has_aggregate_terms

    def test_describe_mentions_all_terms(self):
        text = LayerTerms(1.0, 2.0, 3.0, 4.0).describe()
        for token in ("T_OccR", "T_OccL", "T_AggR", "T_AggL"):
            assert token in text

    def test_describe_unlimited(self):
        assert "unlimited" in LayerTerms().describe()

    @pytest.mark.parametrize("kwargs", [
        dict(occurrence_retention=-1.0),
        dict(occurrence_limit=-2.0),
        dict(aggregate_retention=-3.0),
        dict(aggregate_limit=-4.0),
    ])
    def test_invalid_terms(self, kwargs):
        with pytest.raises(ValueError):
            LayerTerms(**kwargs)

    def test_negative_losses_rejected(self):
        with pytest.raises(ValueError):
            LayerTerms().apply_occurrence(-1.0)
        with pytest.raises(ValueError):
            LayerTerms().apply_aggregate(-1.0)


class TestLayerTermsVectors:
    def make_terms(self):
        return [
            LayerTerms(1.0, 10.0, 100.0, 1000.0),
            LayerTerms(2.0, float("inf"), 0.0, 500.0),
            LayerTerms(),
        ]

    def test_from_terms_round_trips(self):
        terms = self.make_terms()
        vectors = LayerTermsVectors.from_terms(terms)
        assert vectors.n_layers == len(vectors) == 3
        assert list(vectors) == terms
        assert vectors[1] == terms[1]

    def test_take_permutes(self):
        vectors = LayerTermsVectors.from_terms(self.make_terms())
        permuted = vectors.take([2, 0, 1])
        assert permuted[0] == vectors[2]
        assert permuted[2] == vectors[1]

    def test_mismatched_vector_lengths_rejected(self):
        import numpy as np

        with pytest.raises(ValueError):
            LayerTermsVectors(
                np.zeros(2), np.zeros(3), np.zeros(2), np.zeros(2)
            )

    def test_invalid_term_values_rejected(self):
        import numpy as np

        ok = np.zeros(1)
        inf = np.array([float("inf")])
        with pytest.raises(ValueError, match="non-negative"):
            LayerTermsVectors(np.array([-5.0]), ok, ok, ok)
        with pytest.raises(ValueError, match="non-negative"):
            LayerTermsVectors(ok, ok, ok, np.array([-1.0]))
        with pytest.raises(ValueError, match="non-negative"):
            LayerTermsVectors(np.array([float("nan")]), ok, ok, ok)
        with pytest.raises(ValueError, match="finite"):
            LayerTermsVectors(inf, ok, ok, ok)
        # limits may be infinite, matching LayerTerms
        LayerTermsVectors(ok, inf, ok, inf)
