"""Tests for repro.financial.contracts (contract-family constructors)."""

import math

import pytest

from repro.financial.contracts import (
    aggregate_xl_terms,
    combined_xl_terms,
    contract_kind,
    occurrence_xl_terms,
    quota_share_terms,
)
from repro.financial.terms import LayerTerms


class TestOccurrenceXL:
    def test_terms_set(self):
        terms = occurrence_xl_terms(retention=1e6, limit=5e6)
        assert terms.occurrence_retention == 1e6
        assert terms.occurrence_limit == 5e6
        assert math.isinf(terms.aggregate_limit)
        assert terms.aggregate_retention == 0.0

    def test_kind(self):
        assert contract_kind(occurrence_xl_terms(1e6, 5e6)) == "per-occurrence XL"

    def test_invalid(self):
        with pytest.raises(ValueError):
            occurrence_xl_terms(-1.0, 5e6)
        with pytest.raises(ValueError):
            occurrence_xl_terms(1.0, 0.0)


class TestAggregateXL:
    def test_terms_set(self):
        terms = aggregate_xl_terms(retention=2e6, limit=1e7)
        assert terms.aggregate_retention == 2e6
        assert terms.aggregate_limit == 1e7
        assert math.isinf(terms.occurrence_limit)

    def test_kind(self):
        assert contract_kind(aggregate_xl_terms(2e6, 1e7)) == "aggregate XL"


class TestCombinedXL:
    def test_terms_set(self):
        terms = combined_xl_terms(1e5, 1e6, 5e5, 5e6)
        assert terms.has_occurrence_terms and terms.has_aggregate_terms

    def test_kind(self):
        assert contract_kind(combined_xl_terms(1e5, 1e6, 5e5, 5e6)) == "combined XL"

    def test_passthrough_kind(self):
        assert contract_kind(LayerTerms()) == "pass-through"


class TestQuotaShare:
    def test_share_applied(self):
        terms = quota_share_terms(0.3)
        assert terms.share == 0.3
        assert terms.apply(1000.0) == pytest.approx(300.0)

    def test_event_limit(self):
        terms = quota_share_terms(0.5, event_limit=100.0)
        assert terms.apply(1000.0) == pytest.approx(50.0)

    def test_invalid_share(self):
        with pytest.raises(ValueError):
            quota_share_terms(1.5)
