"""Tests for repro.yet.table (the Year Event Table container)."""

import numpy as np
import pytest

from repro.yet.table import YearEventTable


def make_yet() -> YearEventTable:
    return YearEventTable.from_trials(
        trials=[[1, 2, 3], [4], [], [5, 6]],
        catalog_size=10,
        timestamps=[[0.1, 0.2, 0.3], [0.5], [], [0.4, 0.9]],
    )


class TestConstruction:
    def test_shape_accessors(self):
        yet = make_yet()
        assert yet.n_trials == 4
        assert yet.n_occurrences == 6
        np.testing.assert_array_equal(yet.events_per_trial, [3, 1, 0, 2])
        assert yet.mean_events_per_trial == pytest.approx(1.5)

    def test_event_ids_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            YearEventTable.from_trials([[11]], catalog_size=10)

    def test_offsets_validated(self):
        with pytest.raises(ValueError):
            YearEventTable(np.array([1, 2]), np.array([0, 1]), catalog_size=10)

    def test_timestamp_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            YearEventTable(np.array([1, 2]), np.array([0, 2]), 10, timestamps=np.array([0.1]))

    def test_timestamps_range_checked(self):
        with pytest.raises(ValueError):
            YearEventTable(np.array([1]), np.array([0, 1]), 10, timestamps=np.array([1.5]))

    def test_from_trials_timestamp_length_mismatch(self):
        with pytest.raises(ValueError):
            YearEventTable.from_trials([[1, 2]], 10, timestamps=[[0.1]])


class TestTrialAccess:
    def test_trial_views(self):
        yet = make_yet()
        np.testing.assert_array_equal(yet.trial(0), [1, 2, 3])
        np.testing.assert_array_equal(yet.trial(2), [])
        np.testing.assert_array_equal(yet.trial(3), [5, 6])

    def test_trial_timestamps(self):
        yet = make_yet()
        np.testing.assert_allclose(yet.trial_timestamps(3), [0.4, 0.9])

    def test_trial_timestamps_default_zeros(self):
        yet = YearEventTable.from_trials([[1, 2]], catalog_size=10)
        np.testing.assert_allclose(yet.trial_timestamps(0), [0.0, 0.0])

    def test_trial_records_tuples(self):
        records = make_yet().trial_records(0)
        assert records == [(1, 0.1), (2, 0.2), (3, 0.3)]

    def test_trial_out_of_range(self):
        with pytest.raises(IndexError):
            make_yet().trial(4)

    def test_iter_trials(self):
        indices = [i for i, _ in make_yet().iter_trials()]
        assert indices == [0, 1, 2, 3]


class TestSlicing:
    def test_slice_trials_preserves_content(self):
        yet = make_yet()
        sliced = yet.slice_trials(1, 4)
        assert sliced.n_trials == 3
        np.testing.assert_array_equal(sliced.trial(0), yet.trial(1))
        np.testing.assert_array_equal(sliced.trial(2), yet.trial(3))

    def test_slice_trials_timestamps(self):
        sliced = make_yet().slice_trials(3, 4)
        np.testing.assert_allclose(sliced.trial_timestamps(0), [0.4, 0.9])

    def test_slice_invalid_range(self):
        with pytest.raises(IndexError):
            make_yet().slice_trials(2, 8)

    def test_memory_bytes_positive(self):
        assert make_yet().memory_bytes > 0
