"""Tests for repro.yet.io (YET serialization)."""

import numpy as np
import pytest

from repro.yet.io import load_yet, save_yet
from repro.yet.table import YearEventTable


def make_yet(with_timestamps: bool = True) -> YearEventTable:
    return YearEventTable.from_trials(
        trials=[[1, 2], [3], [4, 5, 6]],
        catalog_size=50,
        timestamps=[[0.1, 0.6], [0.2], [0.3, 0.5, 0.9]] if with_timestamps else None,
    )


class TestRoundTrip:
    def test_roundtrip_with_timestamps(self, tmp_path):
        original = make_yet(True)
        path = save_yet(original, tmp_path / "yet_a")
        loaded = load_yet(path)
        assert loaded.n_trials == original.n_trials
        assert loaded.catalog_size == original.catalog_size
        np.testing.assert_array_equal(loaded.event_ids, original.event_ids)
        np.testing.assert_array_equal(loaded.trial_offsets, original.trial_offsets)
        np.testing.assert_allclose(loaded.timestamps, original.timestamps)

    def test_roundtrip_without_timestamps(self, tmp_path):
        original = make_yet(False)
        path = save_yet(original, tmp_path / "yet_b.npz")
        loaded = load_yet(path)
        assert loaded.timestamps is None
        np.testing.assert_array_equal(loaded.event_ids, original.event_ids)

    def test_extension_added_automatically(self, tmp_path):
        path = save_yet(make_yet(), tmp_path / "no_extension")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_load_by_basename_without_extension(self, tmp_path):
        save_yet(make_yet(), tmp_path / "named")
        loaded = load_yet(tmp_path / "named")
        assert loaded.n_trials == 3

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_yet(tmp_path / "does_not_exist.npz")

    def test_creates_parent_directories(self, tmp_path):
        path = save_yet(make_yet(), tmp_path / "nested" / "dir" / "yet")
        assert path.exists()
