"""Tests for repro.yet.io (YET serialization)."""

import numpy as np
import pytest

from repro.yet.io import load_yet, save_yet
from repro.yet.table import YearEventTable


def make_yet(with_timestamps: bool = True) -> YearEventTable:
    return YearEventTable.from_trials(
        trials=[[1, 2], [3], [4, 5, 6]],
        catalog_size=50,
        timestamps=[[0.1, 0.6], [0.2], [0.3, 0.5, 0.9]] if with_timestamps else None,
    )


class TestRoundTrip:
    def test_roundtrip_with_timestamps(self, tmp_path):
        original = make_yet(True)
        path = save_yet(original, tmp_path / "yet_a")
        loaded = load_yet(path)
        assert loaded.n_trials == original.n_trials
        assert loaded.catalog_size == original.catalog_size
        np.testing.assert_array_equal(loaded.event_ids, original.event_ids)
        np.testing.assert_array_equal(loaded.trial_offsets, original.trial_offsets)
        np.testing.assert_allclose(loaded.timestamps, original.timestamps)

    def test_roundtrip_without_timestamps(self, tmp_path):
        original = make_yet(False)
        path = save_yet(original, tmp_path / "yet_b.npz")
        loaded = load_yet(path)
        assert loaded.timestamps is None
        np.testing.assert_array_equal(loaded.event_ids, original.event_ids)

    def test_extension_added_automatically(self, tmp_path):
        path = save_yet(make_yet(), tmp_path / "no_extension")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_load_by_basename_without_extension(self, tmp_path):
        save_yet(make_yet(), tmp_path / "named")
        loaded = load_yet(tmp_path / "named")
        assert loaded.n_trials == 3

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_yet(tmp_path / "does_not_exist.npz")

    def test_creates_parent_directories(self, tmp_path):
        path = save_yet(make_yet(), tmp_path / "nested" / "dir" / "yet")
        assert path.exists()


class TestYetStore:
    def test_store_roundtrip_through_shards(self, tmp_path):
        from repro.yet.io import YetShardReader, save_yet_store

        original = make_yet(True)
        store = save_yet_store(original, tmp_path / "store")
        with YetShardReader(store) as reader:
            assert reader.n_trials == original.n_trials
            assert reader.n_occurrences == original.n_occurrences
            assert reader.catalog_size == original.catalog_size
            whole = reader.shard(reader.shard_ranges(1)[0])
        np.testing.assert_array_equal(whole.event_ids, original.event_ids)
        np.testing.assert_array_equal(whole.trial_offsets, original.trial_offsets)
        np.testing.assert_allclose(whole.timestamps, original.timestamps)

    def test_shards_match_slice_trials(self, tmp_path):
        from repro.yet.io import YetShardReader, save_yet_store

        original = make_yet(False)
        store = save_yet_store(original, tmp_path / "store")
        with YetShardReader(store) as reader:
            for trials, shard in reader.iter_shards(2):
                expected = original.slice_trials(trials.start, trials.stop)
                np.testing.assert_array_equal(shard.event_ids, expected.event_ids)
                np.testing.assert_array_equal(
                    shard.trial_offsets, expected.trial_offsets
                )
                assert shard.timestamps is None

    def test_budget_shard_count(self, tmp_path):
        from repro.yet.io import YetShardReader, save_yet_store

        original = make_yet(True)
        store = save_yet_store(original, tmp_path / "store")
        with YetShardReader(store) as reader:
            assert reader.shard_count_for_budget(reader.event_bytes) == 1
            assert reader.shard_count_for_budget(reader.event_bytes // 2) == 2
            with pytest.raises(ValueError, match="positive"):
                reader.shard_count_for_budget(0)

    def test_closed_reader_rejects_access(self, tmp_path):
        from repro.yet.io import YetShardReader, save_yet_store
        from repro.parallel.partitioner import TrialRange

        store = save_yet_store(make_yet(True), tmp_path / "store")
        reader = YetShardReader(store)
        reader.close()
        with pytest.raises(ValueError, match="closed"):
            reader.shard(TrialRange(0, 1))

    def test_missing_store_raises(self, tmp_path):
        from repro.yet.io import YetShardReader

        with pytest.raises(FileNotFoundError, match="no YET store"):
            YetShardReader(tmp_path / "nowhere")

    def test_out_of_range_shard_rejected(self, tmp_path):
        from repro.yet.io import YetShardReader, save_yet_store
        from repro.parallel.partitioner import TrialRange

        store = save_yet_store(make_yet(True), tmp_path / "store")
        with YetShardReader(store) as reader:
            with pytest.raises(IndexError, match="outside"):
                reader.shard(TrialRange(0, reader.n_trials + 1))

    def test_shard_is_independent_of_the_mapping(self, tmp_path):
        """A materialised shard must survive close(): a real copy, not a view."""
        from repro.yet.io import YetShardReader, save_yet_store

        original = make_yet(True)
        store = save_yet_store(original, tmp_path / "store")
        reader = YetShardReader(store)
        trials = reader.shard_ranges(1)[0]
        shard = reader.shard(trials)
        assert not np.shares_memory(shard.event_ids, reader._event_ids)
        reader.close()
        np.testing.assert_array_equal(shard.event_ids, original.event_ids)
