"""Tests for repro.yet.simulator."""

import numpy as np
import pytest

from repro.catalog.frequency import PoissonFrequency
from repro.catalog.peril import default_peril_profiles
from repro.yet.simulator import YETSimulator


class TestSimulate:
    def test_trial_count(self, small_catalog):
        yet = YETSimulator(small_catalog).simulate(200, rng=1)
        assert yet.n_trials == 200

    def test_mean_events_per_trial_close_to_rate(self, small_catalog):
        yet = YETSimulator(small_catalog).simulate(500, rng=2)
        assert yet.mean_events_per_trial == pytest.approx(small_catalog.total_annual_rate, rel=0.1)

    def test_deterministic_with_seed(self, small_catalog):
        sim = YETSimulator(small_catalog)
        a = sim.simulate(50, rng=3)
        b = sim.simulate(50, rng=3)
        np.testing.assert_array_equal(a.event_ids, b.event_ids)

    def test_event_ids_within_catalog(self, small_catalog):
        yet = YETSimulator(small_catalog).simulate(100, rng=4)
        assert yet.event_ids.min() >= 0
        assert yet.event_ids.max() < small_catalog.size

    def test_timestamps_sorted_within_trials(self, small_catalog):
        yet = YETSimulator(small_catalog, peril_profiles=default_peril_profiles()).simulate(50, rng=5)
        for i in range(yet.n_trials):
            ts = yet.trial_timestamps(i)
            assert (np.diff(ts) >= 0).all()

    def test_without_timestamps(self, small_catalog):
        yet = YETSimulator(small_catalog).simulate(20, rng=6, with_timestamps=False)
        assert yet.timestamps is None

    def test_trial_length_bounds_enforced(self, small_catalog):
        sim = YETSimulator(small_catalog, min_events_per_trial=40, max_events_per_trial=60)
        yet = sim.simulate(100, rng=7)
        lengths = yet.events_per_trial
        assert lengths.min() >= 40
        assert lengths.max() <= 60

    def test_custom_frequency_model(self, small_catalog):
        sim = YETSimulator(small_catalog, frequency_model=PoissonFrequency(5.0))
        yet = sim.simulate(400, rng=8)
        assert yet.mean_events_per_trial == pytest.approx(5.0, rel=0.15)

    def test_frequent_events_appear_more_often(self, small_catalog):
        yet = YETSimulator(small_catalog).simulate(400, rng=9)
        counts = np.bincount(yet.event_ids, minlength=small_catalog.size)
        top_rate_event = int(np.argmax(small_catalog.annual_rates))
        low_rate_event = int(np.argmin(small_catalog.annual_rates))
        assert counts[top_rate_event] >= counts[low_rate_event]


class TestSimulateFixedLength:
    def test_exact_trial_length(self, small_catalog):
        yet = YETSimulator(small_catalog).simulate_fixed_length(50, 30, rng=10)
        np.testing.assert_array_equal(yet.events_per_trial, np.full(50, 30))

    def test_with_timestamps_sorted(self, small_catalog):
        yet = YETSimulator(small_catalog).simulate_fixed_length(20, 15, rng=11, with_timestamps=True)
        for i in range(yet.n_trials):
            assert (np.diff(yet.trial_timestamps(i)) >= 0).all()

    def test_invalid_arguments(self, small_catalog):
        sim = YETSimulator(small_catalog)
        with pytest.raises(ValueError):
            sim.simulate(0)
        with pytest.raises(ValueError):
            sim.simulate_fixed_length(10, 0)


class TestConstruction:
    def test_empty_catalog_rejected(self, small_catalog):
        empty = small_catalog.subset(np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            YETSimulator(empty)

    def test_invalid_bounds_rejected(self, small_catalog):
        with pytest.raises(ValueError):
            YETSimulator(small_catalog, min_events_per_trial=-1)
        with pytest.raises(ValueError):
            YETSimulator(small_catalog, min_events_per_trial=10, max_events_per_trial=5)
