"""YET store backends and concurrent shard readers.

Covers the pluggable get/put-by-key stores behind the distributed fleet's
YET references, the in-memory shard source's bounds contract (which must
match :meth:`YetShardReader.shard` character for character), and the
out-of-core claim that matters to a fleet: two *processes* can memory-map
the same store and price disjoint shards concurrently.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.parallel.partitioner import TrialRange
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.presets import tiny_spec
from repro.yet.io import YetShardReader, save_yet_store, yet_from_bytes, yet_to_bytes
from repro.yet.stores import (
    InMemoryYetStore,
    LocalDirYetStore,
    TableShardSource,
    resolve_yet_ref,
)
from repro.yet.table import YearEventTable


def small_yet():
    return YearEventTable.from_trials(
        trials=[[1, 2], [4], [3, 2, 1], [], [2]], catalog_size=10
    )


class TestTableShardSource:
    def test_shape_accessors_match_the_table(self):
        yet = small_yet()
        source = TableShardSource(yet)
        assert source.n_trials == yet.n_trials
        assert source.n_occurrences == yet.n_occurrences
        assert source.mean_events_per_trial == yet.mean_events_per_trial
        assert source.event_bytes == yet.event_bytes

    def test_shard_slices_the_table(self):
        yet = small_yet()
        shard = TableShardSource(yet).shard(TrialRange(1, 4))
        expected = yet.slice_trials(1, 4)
        assert shard.n_trials == 3
        assert np.array_equal(shard.event_ids, expected.event_ids)
        assert np.array_equal(shard.trial_offsets, expected.trial_offsets)

    # (TrialRange itself rejects negative or inverted ranges at
    # construction, so only in-shape ranges beyond the table reach shard.)
    @pytest.mark.parametrize("start,stop", [(0, 6), (5, 6), (6, 6)], ids=str)
    def test_bounds_contract_matches_the_reader(self, tmp_path, start, stop):
        # The store-backed source and the mmap reader must reject a bad
        # range with the *identical* message — callers switch between them
        # by topology, not by error handling.
        yet = small_yet()
        source = TableShardSource(yet)
        with pytest.raises(IndexError) as from_source:
            source.shard(TrialRange(start, stop))
        with YetShardReader(save_yet_store(yet, tmp_path / "s")) as reader:
            with pytest.raises(IndexError) as from_reader:
                reader.shard(TrialRange(start, stop))
        assert str(from_source.value) == str(from_reader.value)
        assert f"0 <= start <= stop <= {yet.n_trials}" in str(from_source.value)

    def test_iter_shards_covers_the_table(self):
        source = TableShardSource(small_yet())
        ranges = [trials for trials, _ in source.iter_shards(3)]
        assert ranges[0].start == 0
        assert ranges[-1].stop == source.n_trials

    def test_closed_source_rejects_shards(self):
        source = TableShardSource(small_yet())
        source.close()
        with pytest.raises(ValueError, match="closed"):
            source.shard(TrialRange(0, 1))


class TestLocalDirYetStore:
    def test_put_open_round_trip(self, tmp_path):
        store = LocalDirYetStore(tmp_path)
        yet = small_yet()
        store.put("tiny", yet)
        assert "tiny" in store
        with store.open("tiny") as reader:
            shard = reader.shard(TrialRange(0, yet.n_trials))
        assert np.array_equal(shard.event_ids, yet.event_ids)

    def test_put_is_idempotent_by_key(self, tmp_path):
        store = LocalDirYetStore(tmp_path)
        store.put("k", small_yet())
        store.put("k", small_yet())
        assert store.keys() == ["k"]

    def test_ref_resolves_to_a_reader(self, tmp_path):
        store = LocalDirYetStore(tmp_path)
        store.put("k", small_yet())
        ref = store.ref("k")
        assert ref["kind"] == "local_dir"
        with resolve_yet_ref(ref) as source:
            assert source.n_trials == small_yet().n_trials

    def test_missing_key_raises(self, tmp_path):
        store = LocalDirYetStore(tmp_path)
        with pytest.raises(KeyError):
            store.open("absent")

    @pytest.mark.parametrize("key", ["", "a/b", "a\\b", ".", "..", "a\x00b"])
    def test_hostile_keys_rejected(self, tmp_path, key):
        store = LocalDirYetStore(tmp_path)
        with pytest.raises(ValueError, match="key"):
            store.put(key, small_yet())


class TestInMemoryYetStore:
    def test_put_open_and_ref(self):
        store = InMemoryYetStore()
        yet = small_yet()
        store.put("d1", yet)
        assert "d1" in store and "d2" not in store
        ref = store.ref("d1")
        assert ref == {"kind": "inline", "digest": "d1"}
        with store.open("d1") as source:
            assert source.n_trials == yet.n_trials

    def test_bytes_round_trip(self):
        store = InMemoryYetStore()
        yet = small_yet()
        store.put_bytes("d1", yet_to_bytes(yet))
        decoded = yet_from_bytes(store.get_bytes("d1"))
        assert np.array_equal(decoded.event_ids, yet.event_ids)
        assert np.array_equal(decoded.trial_offsets, yet.trial_offsets)

    def test_unshipped_inline_ref_raises_keyerror(self):
        # The lookup failure the worker converts into MissingArtifact.
        with pytest.raises(KeyError):
            resolve_yet_ref({"kind": "inline", "digest": "nope"}, InMemoryYetStore())

    def test_unknown_ref_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            resolve_yet_ref({"kind": "ftp"})


def _price_shard_in_child(store_dir, start, stop, queue):
    """Spawn target: mmap the shared store, price one shard, return losses."""
    workload = WorkloadGenerator(tiny_spec()).generate()
    engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
    with YetShardReader(store_dir) as reader:
        shard = reader.shard(TrialRange(start, stop))
        result = engine.run(workload.program, shard)
    queue.put((start, stop, result.ylt.losses))


class TestConcurrentReaders:
    def test_two_processes_price_disjoint_shards_of_one_store(self, tmp_path):
        workload = WorkloadGenerator(tiny_spec()).generate()
        yet = workload.yet
        store = save_yet_store(yet, tmp_path / "shared")
        mono = AggregateRiskEngine(EngineConfig(backend="vectorized")).run(
            workload.program, yet
        )
        mid = yet.n_trials // 2
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        children = [
            ctx.Process(
                target=_price_shard_in_child, args=(str(store), lo, hi, queue)
            )
            for lo, hi in ((0, mid), (mid, yet.n_trials))
        ]
        for child in children:
            child.start()
        blocks = {}
        try:
            for _ in children:
                start, stop, losses = queue.get(timeout=120)
                blocks[(start, stop)] = losses
        finally:
            for child in children:
                child.join(timeout=30)
        assert set(blocks) == {(0, mid), (mid, yet.n_trials)}
        merged = np.hstack([blocks[(0, mid)], blocks[(mid, yet.n_trials)]])
        assert np.array_equal(merged, mono.ylt.losses)
