"""Tests for repro.catalog.events."""

import numpy as np
import pytest

from repro.catalog.events import Event, EventCatalog
from repro.catalog.peril import Peril


def build_catalog(n: int = 10) -> EventCatalog:
    events = [
        Event(event_id=i, peril=Peril.HURRICANE if i % 2 == 0 else Peril.FLOOD,
              annual_rate=0.1 * (i + 1), mean_severity=1e6 * (i + 1),
              intensity=0.1 * i, region=i % 3)
        for i in range(n)
    ]
    return EventCatalog.from_events(events)


class TestEvent:
    def test_valid_event(self):
        event = Event(0, Peril.FLOOD, 0.5, 1e6, 0.3, region=2)
        assert event.region == 2

    @pytest.mark.parametrize("kwargs", [
        dict(event_id=-1, peril=Peril.FLOOD, annual_rate=0.5, mean_severity=1e6, intensity=0.3),
        dict(event_id=0, peril=Peril.FLOOD, annual_rate=0.0, mean_severity=1e6, intensity=0.3),
        dict(event_id=0, peril=Peril.FLOOD, annual_rate=0.5, mean_severity=-1.0, intensity=0.3),
        dict(event_id=0, peril=Peril.FLOOD, annual_rate=0.5, mean_severity=1e6, intensity=-0.1),
        dict(event_id=0, peril=Peril.FLOOD, annual_rate=0.5, mean_severity=1e6, intensity=0.3, region=-1),
    ])
    def test_invalid_event_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Event(**kwargs)


class TestEventCatalog:
    def test_size_and_roundtrip(self):
        catalog = build_catalog(10)
        assert catalog.size == len(catalog) == 10
        event = catalog[3]
        assert event.event_id == 3
        assert event.peril is Peril.FLOOD
        assert event.annual_rate == pytest.approx(0.4)

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            _ = build_catalog(5)[5]

    def test_iteration_yields_all_events(self):
        catalog = build_catalog(6)
        assert [e.event_id for e in catalog] == list(range(6))

    def test_total_annual_rate(self):
        catalog = build_catalog(4)
        assert catalog.total_annual_rate == pytest.approx(0.1 + 0.2 + 0.3 + 0.4)

    def test_occurrence_probabilities_sum_to_one(self):
        catalog = build_catalog(10)
        assert catalog.occurrence_probabilities().sum() == pytest.approx(1.0)

    def test_peril_mask_and_events(self):
        catalog = build_catalog(10)
        hurricane_ids = catalog.events_for_peril(Peril.HURRICANE)
        assert all(i % 2 == 0 for i in hurricane_ids)
        assert catalog.peril_mask(Peril.HURRICANE).sum() == 5

    def test_events_for_region(self):
        catalog = build_catalog(9)
        region_ids = catalog.events_for_region(1)
        assert all(i % 3 == 1 for i in region_ids)

    def test_peril_summary_counts(self):
        summary = build_catalog(10).peril_summary()
        assert summary[Peril.HURRICANE]["count"] == 5
        assert summary[Peril.FLOOD]["count"] == 5

    def test_from_events_requires_dense_ids(self):
        events = [Event(0, Peril.FLOOD, 0.1, 1.0, 0.1), Event(2, Peril.FLOOD, 0.1, 1.0, 0.1)]
        with pytest.raises(ValueError):
            EventCatalog.from_events(events)

    def test_subset_reindexes(self):
        catalog = build_catalog(10)
        subset = catalog.subset(np.array([2, 5, 7]))
        assert subset.size == 3
        assert subset[0].annual_rate == pytest.approx(0.3)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            EventCatalog(
                perils=np.zeros(3, dtype=np.int16),
                annual_rates=np.ones(2),
                mean_severities=np.ones(3),
                intensities=np.ones(3),
            )

    def test_non_positive_rates_rejected(self):
        with pytest.raises(ValueError):
            EventCatalog(
                perils=np.zeros(2, dtype=np.int16),
                annual_rates=np.array([1.0, 0.0]),
                mean_severities=np.ones(2),
                intensities=np.ones(2),
            )
