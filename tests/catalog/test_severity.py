"""Tests for repro.catalog.severity."""

import numpy as np
import pytest

from repro.catalog.severity import (
    GammaSeverity,
    LognormalSeverity,
    ParetoSeverity,
    severity_for_peril,
)


class TestLognormalSeverity:
    def test_sample_mean_matches(self):
        model = LognormalSeverity(mean_loss=1e6, cv_loss=1.0)
        samples = model.sample(100_000, rng=1)
        assert samples.mean() == pytest.approx(1e6, rel=0.05)

    def test_sample_cv_matches(self):
        model = LognormalSeverity(mean_loss=1e6, cv_loss=0.8)
        samples = model.sample(200_000, rng=2)
        assert samples.std() / samples.mean() == pytest.approx(0.8, rel=0.1)

    def test_samples_positive(self):
        samples = LognormalSeverity(1e5, 2.0).sample(1000, rng=3)
        assert (samples > 0).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LognormalSeverity(0.0, 1.0)
        with pytest.raises(ValueError):
            LognormalSeverity(1.0, 0.0)


class TestParetoSeverity:
    def test_mean_formula(self):
        model = ParetoSeverity(x_min=100.0, alpha=3.0)
        assert model.mean == pytest.approx(150.0)

    def test_from_mean_cv_roundtrip(self):
        model = ParetoSeverity.from_mean_cv(mean=1e6, cv=0.5)
        assert model.mean == pytest.approx(1e6, rel=1e-9)
        assert model.cv == pytest.approx(0.5, rel=1e-9)

    def test_sample_mean(self):
        model = ParetoSeverity.from_mean_cv(1e5, 0.4)
        samples = model.sample(200_000, rng=4)
        assert samples.mean() == pytest.approx(1e5, rel=0.05)

    def test_samples_above_xmin(self):
        model = ParetoSeverity(x_min=50.0, alpha=4.0)
        assert (model.sample(1000, rng=5) >= 50.0).all()

    def test_alpha_must_exceed_two(self):
        with pytest.raises(ValueError):
            ParetoSeverity(x_min=1.0, alpha=2.0)


class TestGammaSeverity:
    def test_shape_scale_derivation(self):
        model = GammaSeverity(mean_loss=1000.0, cv_loss=0.5)
        assert model.shape == pytest.approx(4.0)
        assert model.scale == pytest.approx(250.0)

    def test_sample_moments(self):
        model = GammaSeverity(mean_loss=2000.0, cv_loss=0.7)
        samples = model.sample(200_000, rng=6)
        assert samples.mean() == pytest.approx(2000.0, rel=0.03)
        assert samples.std() / samples.mean() == pytest.approx(0.7, rel=0.05)

    def test_std_property(self):
        model = GammaSeverity(1000.0, 0.5)
        assert model.std == pytest.approx(500.0)


class TestSeverityForPeril:
    def test_heavy_tailed_selects_lognormal(self):
        assert isinstance(severity_for_peril(1e6, 2.0, heavy_tailed=True), LognormalSeverity)

    def test_light_tailed_selects_gamma(self):
        assert isinstance(severity_for_peril(1e6, 0.5, heavy_tailed=False), GammaSeverity)
