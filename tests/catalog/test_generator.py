"""Tests for repro.catalog.generator."""

import numpy as np
import pytest

from repro.catalog.generator import CatalogGenerator, PerilMix
from repro.catalog.peril import Peril


class TestPerilMix:
    def test_normalised_sums_to_one(self):
        mix = PerilMix({Peril.HURRICANE: 2.0, Peril.FLOOD: 2.0})
        shares = mix.normalised()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares[Peril.HURRICANE] == pytest.approx(0.5)

    def test_counts_sum_exactly(self):
        mix = PerilMix({Peril.HURRICANE: 1.0, Peril.FLOOD: 1.0, Peril.TORNADO: 1.0})
        counts = mix.counts(100)
        assert sum(counts.values()) == 100

    def test_counts_largest_remainder(self):
        mix = PerilMix({Peril.HURRICANE: 1.0, Peril.FLOOD: 1.0, Peril.TORNADO: 1.0})
        counts = mix.counts(7)
        assert sum(counts.values()) == 7
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            PerilMix({})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            PerilMix({Peril.FLOOD: -1.0})

    def test_non_peril_key_rejected(self):
        with pytest.raises(TypeError):
            PerilMix({"flood": 1.0})  # type: ignore[dict-item]


class TestCatalogGenerator:
    def test_catalog_size(self):
        catalog = CatalogGenerator(n_regions=4).generate(1000, rng=1)
        assert catalog.size == 1000

    def test_deterministic_with_seed(self):
        gen = CatalogGenerator(n_regions=4)
        a = gen.generate(500, rng=42)
        b = gen.generate(500, rng=42)
        np.testing.assert_array_equal(a.annual_rates, b.annual_rates)
        np.testing.assert_array_equal(a.mean_severities, b.mean_severities)

    def test_total_rate_matches_profiles(self):
        gen = CatalogGenerator(n_regions=4)
        catalog = gen.generate(2000, rng=2)
        expected = sum(p.annual_rate for p in gen.profiles.values())
        assert catalog.total_annual_rate == pytest.approx(expected, rel=1e-9)

    def test_generate_with_rate_rescales(self):
        catalog = CatalogGenerator(n_regions=4).generate_with_rate(1000, events_per_year=250.0, rng=3)
        assert catalog.total_annual_rate == pytest.approx(250.0, rel=1e-9)

    def test_regions_within_bounds(self):
        catalog = CatalogGenerator(n_regions=6).generate(500, rng=4)
        assert catalog.regions.min() >= 0
        assert catalog.regions.max() < 6

    def test_all_perils_present_in_large_catalog(self):
        catalog = CatalogGenerator(n_regions=4).generate(600, rng=5)
        present = {p for p, info in catalog.peril_summary().items() if info["count"] > 0}
        assert present == set(Peril)

    def test_intensities_non_negative(self):
        catalog = CatalogGenerator(n_regions=4).generate(300, rng=6)
        assert (catalog.intensities >= 0).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CatalogGenerator(n_regions=0)
        with pytest.raises(ValueError):
            CatalogGenerator(rate_shape=0.0)
        with pytest.raises(ValueError):
            CatalogGenerator().generate(0)
