"""Tests for repro.catalog.peril."""

import pytest

from repro.catalog.peril import Peril, PerilProfile, default_peril_profiles


class TestPerilProfile:
    def test_valid_profile(self):
        profile = PerilProfile(Peril.HURRICANE, annual_rate=3.0, severity_mean=1e9,
                               severity_cv=2.0, season_peak=0.7, season_concentration=10.0)
        assert profile.peril is Peril.HURRICANE

    @pytest.mark.parametrize("field,value", [
        ("annual_rate", 0.0),
        ("severity_mean", -1.0),
        ("severity_cv", 0.0),
        ("season_peak", 1.5),
        ("season_concentration", -1.0),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        kwargs = dict(peril=Peril.FLOOD, annual_rate=1.0, severity_mean=1e8,
                      severity_cv=1.0, season_peak=0.5, season_concentration=0.0)
        kwargs[field] = value
        with pytest.raises(ValueError):
            PerilProfile(**kwargs)


class TestDefaultProfiles:
    def test_covers_every_peril(self):
        profiles = default_peril_profiles()
        assert set(profiles) == set(Peril)

    def test_profiles_keyed_consistently(self):
        profiles = default_peril_profiles()
        for peril, profile in profiles.items():
            assert profile.peril is peril

    def test_earthquake_more_severe_than_tornado(self):
        profiles = default_peril_profiles()
        assert profiles[Peril.EARTHQUAKE].severity_mean > profiles[Peril.TORNADO].severity_mean

    def test_tornado_more_frequent_than_earthquake(self):
        profiles = default_peril_profiles()
        assert profiles[Peril.TORNADO].annual_rate > profiles[Peril.EARTHQUAKE].annual_rate
