"""Tests for repro.catalog.frequency."""

import numpy as np
import pytest

from repro.catalog.frequency import NegativeBinomialFrequency, PoissonFrequency


class TestPoissonFrequency:
    def test_moments(self):
        model = PoissonFrequency(rate=5.0)
        assert model.mean == 5.0
        assert model.variance == 5.0

    def test_sample_mean_close_to_rate(self):
        model = PoissonFrequency(rate=20.0)
        counts = model.sample_counts(20_000, rng=1)
        assert counts.mean() == pytest.approx(20.0, rel=0.05)

    def test_deterministic_with_seed(self):
        model = PoissonFrequency(rate=3.0)
        np.testing.assert_array_equal(model.sample_counts(10, rng=7), model.sample_counts(10, rng=7))

    def test_counts_non_negative_integers(self):
        counts = PoissonFrequency(2.0).sample_counts(100, rng=2)
        assert counts.dtype == np.int64
        assert (counts >= 0).all()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonFrequency(0.0)

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError):
            PoissonFrequency(1.0).sample_counts(-1)


class TestNegativeBinomialFrequency:
    def test_moments(self):
        model = NegativeBinomialFrequency(rate=10.0, dispersion=2.0)
        assert model.mean == 10.0
        assert model.variance == 20.0

    def test_overdispersion_visible_in_samples(self):
        model = NegativeBinomialFrequency(rate=10.0, dispersion=3.0)
        counts = model.sample_counts(50_000, rng=3)
        assert counts.mean() == pytest.approx(10.0, rel=0.05)
        assert counts.var() > 1.5 * counts.mean()

    def test_dispersion_must_exceed_one(self):
        with pytest.raises(ValueError):
            NegativeBinomialFrequency(rate=5.0, dispersion=1.0)


class TestClippedCounts:
    def test_clipping_bounds_respected(self):
        model = PoissonFrequency(rate=10.0)
        counts = model.clipped_counts(1000, rng=4, min_events=8, max_events=12)
        assert counts.min() >= 8
        assert counts.max() <= 12

    def test_no_max_allows_large_counts(self):
        model = PoissonFrequency(rate=100.0)
        counts = model.clipped_counts(100, rng=5, min_events=0, max_events=None)
        assert counts.max() > 12

    def test_invalid_bounds(self):
        model = PoissonFrequency(1.0)
        with pytest.raises(ValueError):
            model.clipped_counts(10, min_events=-1)
        with pytest.raises(ValueError):
            model.clipped_counts(10, min_events=5, max_events=2)
