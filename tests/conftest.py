"""Shared pytest fixtures.

The expensive fixtures (synthetic workloads) are session-scoped: the workload
generator is deterministic, so sharing one instance across tests does not
introduce coupling, and it keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.generator import CatalogGenerator
from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.elt.table import EventLossTable
from repro.financial.terms import FinancialTerms, LayerTerms
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.presets import tiny_spec
from repro.yet.table import YearEventTable


@pytest.fixture(scope="session")
def tiny_workload():
    """A small but fully realistic end-to-end workload (64 trials, 2 layers)."""
    return WorkloadGenerator(tiny_spec()).generate()


@pytest.fixture(scope="session")
def tiny_reference_result(tiny_workload):
    """The sequential (reference) engine result for the tiny workload."""
    engine = AggregateRiskEngine(EngineConfig(backend="sequential", record_max_occurrence=True))
    return engine.run(tiny_workload.program, tiny_workload.yet)


@pytest.fixture(scope="session")
def small_catalog():
    """A 2000-event catalog with ~50 expected occurrences per year."""
    return CatalogGenerator(n_regions=8).generate_with_rate(2000, events_per_year=50.0, rng=123)


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(987)


def make_manual_layer(catalog_size: int = 100) -> tuple[Layer, YearEventTable]:
    """A hand-built layer + YET whose year losses can be verified by hand.

    Two ELTs over a 100-event catalog; three trials with known events.  Used
    by several test modules (imported as a plain helper, not a fixture, so it
    can be parameterised).
    """
    elt_a = EventLossTable(
        event_ids=np.array([1, 2, 3]),
        losses=np.array([100.0, 200.0, 300.0]),
        catalog_size=catalog_size,
        terms=FinancialTerms(),
        name="elt-a",
    )
    elt_b = EventLossTable(
        event_ids=np.array([2, 4]),
        losses=np.array([50.0, 500.0]),
        catalog_size=catalog_size,
        terms=FinancialTerms(),
        name="elt-b",
    )
    layer = Layer([elt_a, elt_b], LayerTerms(), name="manual-layer")
    yet = YearEventTable.from_trials(
        trials=[[1, 2], [4], [3, 2, 1]],
        catalog_size=catalog_size,
    )
    return layer, yet


@pytest.fixture()
def manual_layer_and_yet():
    """Fixture wrapper around :func:`make_manual_layer`."""
    return make_manual_layer()


@pytest.fixture()
def manual_program(manual_layer_and_yet):
    """A one-layer program around the manual layer."""
    layer, yet = manual_layer_and_yet
    return ReinsuranceProgram([layer], name="manual-program"), yet
