"""Tests for repro.workloads.presets."""

import pytest

from repro.workloads.presets import (
    PAPER_FULL_SCALE,
    bench_spec,
    paper_scaled_spec,
    preset,
    preset_names,
    tiny_spec,
)


class TestPresets:
    def test_paper_full_scale_matches_paper_parameters(self):
        assert PAPER_FULL_SCALE.n_trials == 1_000_000
        assert PAPER_FULL_SCALE.events_per_trial == 1000
        assert PAPER_FULL_SCALE.elts_per_layer == 15
        assert PAPER_FULL_SCALE.catalog_size == 2_000_000
        assert PAPER_FULL_SCALE.total_lookups == 15_000_000_000

    def test_tiny_spec_is_small(self):
        spec = tiny_spec()
        assert spec.n_trials <= 100
        assert spec.total_lookups < 10_000

    def test_bench_spec_preserves_paper_structure(self):
        spec = bench_spec()
        assert spec.elts_per_layer == PAPER_FULL_SCALE.elts_per_layer
        # Trials remain the dominant dimension and the catalog stays much
        # larger than a single ELT (direct access tables remain sparse).
        assert spec.n_trials > spec.events_per_trial
        assert spec.catalog_size >= 10 * spec.events_per_trial

    def test_paper_scaled_spec_scales_trials_only(self):
        spec = paper_scaled_spec(0.001)
        assert spec.n_trials == 1000
        assert spec.events_per_trial == PAPER_FULL_SCALE.events_per_trial
        assert spec.elts_per_layer == PAPER_FULL_SCALE.elts_per_layer

    def test_paper_scaled_invalid_fraction(self):
        with pytest.raises(ValueError):
            paper_scaled_spec(0.0)

    def test_preset_lookup(self):
        assert preset("tiny").n_trials == tiny_spec().n_trials
        assert "bench" in preset_names()

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset("gigantic")

    def test_seeds_make_presets_deterministic(self):
        assert preset("bench").seed == preset("bench").seed
