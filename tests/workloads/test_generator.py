"""Tests for repro.workloads.generator."""

import numpy as np
import pytest

from repro.workloads.generator import WorkloadGenerator, WorkloadSpec


class TestWorkloadSpec:
    def test_defaults_valid(self):
        spec = WorkloadSpec()
        assert spec.n_elts_total == spec.n_layers * spec.elts_per_layer
        assert spec.total_lookups == spec.n_trials * spec.events_per_trial * spec.elts_per_layer

    def test_shape_conversion(self):
        spec = WorkloadSpec(n_trials=100, events_per_trial=10, n_layers=2, elts_per_layer=3)
        shape = spec.shape()
        assert shape.n_trials == 100
        assert shape.n_elts == 3
        assert shape.n_layers == 2

    def test_scaled_override(self):
        spec = WorkloadSpec().scaled(n_trials=5)
        assert spec.n_trials == 5

    @pytest.mark.parametrize("kwargs", [
        dict(n_trials=0),
        dict(events_per_trial=0),
        dict(elts_per_layer=0),
        dict(catalog_size=0),
        dict(elt_share=-0.1),
    ])
    def test_invalid_spec(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)


class TestWorkloadGenerator:
    @pytest.fixture(scope="class")
    def workload(self):
        spec = WorkloadSpec(n_trials=50, events_per_trial=30, n_layers=2, elts_per_layer=4,
                            catalog_size=800, buildings_per_exposure=30, n_regions=8, seed=99)
        return WorkloadGenerator(spec).generate()

    def test_shapes_match_spec(self, workload):
        assert workload.yet.n_trials == 50
        assert workload.yet.mean_events_per_trial == pytest.approx(30.0)
        assert workload.program.n_layers == 2
        assert all(layer.n_elts == 4 for layer in workload.program)
        assert workload.catalog.size == 800

    def test_deterministic_for_same_seed(self):
        spec = WorkloadSpec(n_trials=20, events_per_trial=10, n_layers=1, elts_per_layer=2,
                            catalog_size=300, buildings_per_exposure=20, n_regions=8, seed=5)
        a = WorkloadGenerator(spec).generate()
        b = WorkloadGenerator(spec).generate()
        np.testing.assert_array_equal(a.yet.event_ids, b.yet.event_ids)
        np.testing.assert_allclose(a.elts[0].losses, b.elts[0].losses)

    def test_different_seeds_differ(self):
        base = WorkloadSpec(n_trials=20, events_per_trial=10, n_layers=1, elts_per_layer=2,
                            catalog_size=300, buildings_per_exposure=20, n_regions=8)
        a = WorkloadGenerator(base.scaled(seed=1)).generate()
        b = WorkloadGenerator(base.scaled(seed=2)).generate()
        assert not np.array_equal(a.yet.event_ids, b.yet.event_ids)

    def test_elts_reference_catalog(self, workload):
        for elt in workload.elts:
            assert elt.catalog_size == workload.catalog.size
            assert elt.size > 0

    def test_elts_sparse(self, workload):
        densities = [elt.density for elt in workload.elts]
        assert max(densities) < 0.9

    def test_layer_terms_bind(self, workload):
        for layer in workload.program:
            assert layer.terms.has_occurrence_terms
            assert layer.terms.has_aggregate_terms

    def test_elt_share_propagated(self, workload):
        for elt in workload.elts:
            assert elt.terms.share == pytest.approx(workload.spec.elt_share)

    def test_variable_trial_length_mode(self):
        spec = WorkloadSpec(n_trials=200, events_per_trial=20, n_layers=1, elts_per_layer=2,
                            catalog_size=300, buildings_per_exposure=20, n_regions=8,
                            fixed_trial_length=False, seed=3)
        workload = WorkloadGenerator(spec).generate()
        lengths = workload.yet.events_per_trial
        assert lengths.std() > 0  # Poisson lengths vary
        assert workload.yet.mean_events_per_trial == pytest.approx(20.0, rel=0.15)

    def test_summary_and_shape(self, workload):
        assert "trials=50" in workload.summary()
        assert workload.shape.n_trials == 50
