"""Tests for repro.portfolio.layer."""

import numpy as np
import pytest

from repro.elt.table import EventLossTable
from repro.financial.terms import LayerTerms
from repro.portfolio.layer import Layer


def make_elts(n: int = 3, catalog_size: int = 50):
    rng = np.random.default_rng(1)
    elts = []
    for i in range(n):
        ids = rng.choice(catalog_size, size=5, replace=False)
        elts.append(EventLossTable(ids, rng.gamma(2.0, 100.0, 5), catalog_size, name=f"elt-{i}"))
    return elts


class TestLayer:
    def test_shape_accessors(self):
        layer = Layer(make_elts(4), LayerTerms(), name="test")
        assert layer.n_elts == 4
        assert layer.catalog_size == 50
        assert layer.n_records == 20

    def test_default_terms_passthrough(self):
        assert Layer(make_elts()).terms.is_passthrough

    def test_contract_kind(self):
        layer = Layer(make_elts(), LayerTerms(occurrence_retention=10.0, occurrence_limit=100.0))
        assert layer.contract_kind == "per-occurrence XL"

    def test_loss_matrix_cached(self):
        layer = Layer(make_elts())
        assert layer.loss_matrix() is layer.loss_matrix()

    def test_invalidate_cache(self):
        layer = Layer(make_elts())
        first = layer.loss_matrix()
        layer.invalidate_cache()
        assert layer.loss_matrix() is not first

    def test_with_terms_shares_matrix(self):
        layer = Layer(make_elts(), name="original", premium=100.0)
        matrix = layer.loss_matrix()
        clone = layer.with_terms(LayerTerms(aggregate_limit=1e6))
        assert clone.loss_matrix() is matrix
        assert clone.terms.aggregate_limit == 1e6
        assert clone.name == "original"
        assert clone.premium == 100.0

    def test_with_terms_new_name(self):
        clone = Layer(make_elts(), name="a").with_terms(LayerTerms(), name="b")
        assert clone.name == "b"

    def test_expected_ground_up_loss(self):
        elts = make_elts(2)
        expected = sum(float(elt.losses.sum()) for elt in elts)
        assert Layer(elts).expected_ground_up_loss() == pytest.approx(expected)

    def test_requires_elts(self):
        with pytest.raises(ValueError):
            Layer([], LayerTerms())

    def test_requires_common_catalog(self):
        elts = make_elts(2)
        other = EventLossTable(np.array([0]), np.array([1.0]), catalog_size=10)
        with pytest.raises(ValueError):
            Layer(elts + [other])

    def test_negative_premium_rejected(self):
        with pytest.raises(ValueError):
            Layer(make_elts(), premium=-1.0)
