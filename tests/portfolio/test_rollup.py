"""Tests for repro.portfolio.rollup."""

import numpy as np
import pytest

from repro.elt.table import EventLossTable
from repro.financial.terms import LayerTerms
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.portfolio.rollup import portfolio_rollup
from repro.ylt.table import YearLossTable


def make_ylt(n_trials: int = 2000, n_layers: int = 3, seed: int = 1) -> YearLossTable:
    rng = np.random.default_rng(seed)
    losses = rng.gamma(2.0, 1e5, size=(n_layers, n_trials))
    names = [f"layer-{i}" for i in range(n_layers)]
    return YearLossTable(losses, names)


def make_program(n_layers: int = 3) -> ReinsuranceProgram:
    layers = []
    for i in range(n_layers):
        elt = EventLossTable(np.array([i]), np.array([10.0]), catalog_size=10)
        terms = LayerTerms(occurrence_retention=1.0, occurrence_limit=5.0) if i % 2 == 0 \
            else LayerTerms(aggregate_retention=1.0, aggregate_limit=5.0)
        layers.append(Layer([elt], terms, name=f"layer-{i}"))
    return ReinsuranceProgram(layers)


class TestPortfolioRollup:
    def test_portfolio_aal_is_sum_of_layer_aals(self):
        ylt = make_ylt()
        result = portfolio_rollup(ylt)
        layer_aal_sum = sum(m.aal for m in result.layer_metrics.values())
        assert result.portfolio_aal == pytest.approx(layer_aal_sum, rel=1e-9)

    def test_diversification_benefit_positive_for_independent_layers(self):
        result = portfolio_rollup(make_ylt())
        assert 0.0 < result.diversification_benefit < 1.0

    def test_no_diversification_for_single_layer(self):
        ylt = YearLossTable(np.random.default_rng(2).gamma(2.0, 1e5, size=(1, 1000)))
        result = portfolio_rollup(ylt)
        assert result.diversification_benefit == pytest.approx(0.0, abs=1e-9)

    def test_layer_metrics_keyed_by_name(self):
        result = portfolio_rollup(make_ylt())
        assert set(result.layer_metrics) == {"layer-0", "layer-1", "layer-2"}

    def test_group_metrics_by_contract_kind(self):
        ylt = make_ylt()
        program = make_program()
        result = portfolio_rollup(ylt, program)
        assert set(result.group_metrics) == {"per-occurrence XL", "aggregate XL"}

    def test_group_metrics_empty_without_program(self):
        assert portfolio_rollup(make_ylt()).group_metrics == {}

    def test_reference_return_period_included(self):
        result = portfolio_rollup(make_ylt(), reference_return_period=200.0)
        assert 200.0 in result.portfolio_metrics.pml
        assert result.reference_return_period == 200.0

    def test_invalid_return_period(self):
        with pytest.raises(ValueError):
            portfolio_rollup(make_ylt(), reference_return_period=0.5)
