"""Tests for the streaming portfolio sweep service."""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.financial.terms import LayerTerms
from repro.portfolio.pricing import batch_quote
from repro.portfolio.program import ReinsuranceProgram
from repro.portfolio.sweep import PortfolioSweepService, SweepBlock


def _variants(program, n):
    """n candidate-term variants sharing the program's ELT objects."""
    variants = []
    for i in range(n):
        scale = 1.0 + 0.2 * i
        layers = [
            layer.with_terms(
                LayerTerms(
                    occurrence_retention=layer.terms.occurrence_retention * scale,
                    occurrence_limit=layer.terms.occurrence_limit,
                    aggregate_retention=layer.terms.aggregate_retention * scale,
                    aggregate_limit=layer.terms.aggregate_limit,
                )
            )
            for layer in program.layers
        ]
        variants.append(ReinsuranceProgram(layers, name=f"variant-{i}"))
    return variants


class TestSweepBlocks:
    def test_single_block_by_default(self, tiny_workload):
        service = PortfolioSweepService(config=EngineConfig())
        variants = _variants(tiny_workload.program, 3)
        blocks = list(service.sweep(variants, tiny_workload.yet))
        assert len(blocks) == 1
        assert blocks[0].n_programs == 3
        assert blocks[0].n_rows == 3 * tiny_workload.program.n_layers

    def test_row_bound_splits_blocks(self, tiny_workload):
        service = PortfolioSweepService(config=EngineConfig())
        variants = _variants(tiny_workload.program, 5)
        n_layers = tiny_workload.program.n_layers
        blocks = list(
            service.sweep(variants, tiny_workload.yet, max_rows_per_block=2 * n_layers)
        )
        assert [b.n_programs for b in blocks] == [2, 2, 1]
        assert [b.index for b in blocks] == [0, 1, 2]
        # Programs are never split across blocks and arrive in order.
        names = [p.name for b in blocks for p in b.programs]
        assert names == [f"variant-{i}" for i in range(5)]

    def test_dedup_within_block(self, tiny_workload):
        service = PortfolioSweepService(config=EngineConfig())
        variants = _variants(tiny_workload.program, 4)
        (block,) = service.sweep(variants, tiny_workload.yet)
        assert block.n_rows == 4 * tiny_workload.program.n_layers
        assert block.n_unique_rows == tiny_workload.program.n_layers
        assert block.dedup_factor == pytest.approx(4.0)
        assert "x4.00 shared" in block.summary()

    def test_no_dedupe(self, tiny_workload):
        service = PortfolioSweepService(config=EngineConfig())
        variants = _variants(tiny_workload.program, 2)
        (block,) = service.sweep(variants, tiny_workload.yet, dedupe=False)
        assert block.n_unique_rows == block.n_rows

    def test_generator_is_lazy(self, tiny_workload):
        """Block k is only executed when the caller advances past k-1."""
        calls = []

        class CountingEngine(AggregateRiskEngine):
            def run_plan(self, plan):
                calls.append(plan.n_rows)
                return super().run_plan(plan)

        service = PortfolioSweepService(engine=CountingEngine(EngineConfig()))
        variants = _variants(tiny_workload.program, 4)
        n_layers = tiny_workload.program.n_layers
        stream = service.sweep(
            variants, tiny_workload.yet, max_rows_per_block=n_layers
        )
        assert calls == []
        next(stream)
        assert len(calls) == 1
        next(stream)
        assert len(calls) == 2

    def test_empty_sweep_rejected(self, tiny_workload):
        service = PortfolioSweepService(config=EngineConfig())
        with pytest.raises(ValueError, match="at least one"):
            list(service.sweep([], tiny_workload.yet))

    def test_negative_block_bound_rejected(self, tiny_workload):
        service = PortfolioSweepService(config=EngineConfig())
        with pytest.raises(ValueError, match="non-negative"):
            list(service.sweep([tiny_workload.program], tiny_workload.yet,
                               max_rows_per_block=-1))

    def test_accepts_bare_layer(self, tiny_workload):
        service = PortfolioSweepService(config=EngineConfig())
        (block,) = service.sweep([tiny_workload.program[0]], tiny_workload.yet)
        assert block.n_rows == 1
        assert block.quotes[0].n_layers == 1


class TestSweepQuotes:
    def test_quotes_match_batch_quote(self, tiny_workload):
        """The streaming sweep prices exactly like the one-shot batch path."""
        variants = _variants(tiny_workload.program, 3)
        engine = AggregateRiskEngine(EngineConfig())
        expected = batch_quote(variants, tiny_workload.yet, engine=engine)
        service = PortfolioSweepService(engine=engine)
        quotes = service.quote_all(variants, tiny_workload.yet)
        assert len(quotes) == 3
        for got, want in zip(quotes, expected):
            assert got.program_name == want.program_name
            assert got.total_premium == pytest.approx(want.total_premium, rel=1e-12)

    def test_block_size_never_changes_quotes(self, tiny_workload):
        variants = _variants(tiny_workload.program, 4)
        service = PortfolioSweepService(config=EngineConfig())
        one_block = service.quote_all(variants, tiny_workload.yet)
        n_layers = tiny_workload.program.n_layers
        per_program = service.quote_all(
            variants, tiny_workload.yet, max_rows_per_block=n_layers
        )
        for lhs, rhs in zip(one_block, per_program):
            assert lhs.total_expected_loss == rhs.total_expected_loss
            assert lhs.total_premium == rhs.total_premium

    def test_results_align_with_programs(self, tiny_workload):
        variants = _variants(tiny_workload.program, 2)
        service = PortfolioSweepService(config=EngineConfig())
        (block,) = service.sweep(variants, tiny_workload.yet)
        solo = AggregateRiskEngine(EngineConfig()).run(variants[1], tiny_workload.yet)
        assert np.array_equal(block.results[1].ylt.losses, solo.ylt.losses)

    def test_multicore_backend_sweep(self, tiny_workload):
        service = PortfolioSweepService(
            config=EngineConfig(backend="multicore", n_workers=2)
        )
        variants = _variants(tiny_workload.program, 2)
        reference = PortfolioSweepService(config=EngineConfig())
        multicore_quotes = service.quote_all(variants, tiny_workload.yet)
        vector_quotes = reference.quote_all(variants, tiny_workload.yet)
        for lhs, rhs in zip(multicore_quotes, vector_quotes):
            assert lhs.total_premium == pytest.approx(rhs.total_premium, rel=1e-9)
