"""Tests for repro.portfolio.program."""

import numpy as np
import pytest

from repro.elt.table import EventLossTable
from repro.financial.terms import LayerTerms
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram


def make_layer(name: str, n_elts: int = 2, catalog_size: int = 30, **term_kwargs) -> Layer:
    rng = np.random.default_rng(abs(hash(name)) % 2**32)
    elts = [
        EventLossTable(
            rng.choice(catalog_size, 4, replace=False), rng.gamma(2.0, 10.0, 4), catalog_size
        )
        for _ in range(n_elts)
    ]
    return Layer(elts, LayerTerms(**term_kwargs), name=name, premium=50.0)


def make_program() -> ReinsuranceProgram:
    layers = [
        make_layer("occ", occurrence_retention=5.0, occurrence_limit=50.0),
        make_layer("agg", aggregate_retention=5.0, aggregate_limit=100.0),
        make_layer("both", occurrence_retention=5.0, occurrence_limit=50.0,
                   aggregate_retention=5.0, aggregate_limit=100.0, n_elts=4),
    ]
    return ReinsuranceProgram(layers, name="prog")


class TestReinsuranceProgram:
    def test_shape(self):
        program = make_program()
        assert program.n_layers == len(program) == 3
        assert program.catalog_size == 30
        assert program.mean_elts_per_layer == pytest.approx((2 + 2 + 4) / 3)

    def test_iteration_and_indexing(self):
        program = make_program()
        assert program[0].name == "occ"
        assert [layer.name for layer in program] == ["occ", "agg", "both"]

    def test_layer_names(self):
        assert make_program().layer_names == ("occ", "agg", "both")

    def test_layer_by_name(self):
        assert make_program().layer_by_name("agg").name == "agg"
        with pytest.raises(KeyError):
            make_program().layer_by_name("missing")

    def test_total_premium(self):
        assert make_program().total_premium == pytest.approx(150.0)

    def test_group_by_contract_kind(self):
        groups = make_program().group_by_contract_kind()
        assert set(groups) == {"per-occurrence XL", "aggregate XL", "combined XL"}

    def test_subset(self):
        subset = make_program().subset([0, 2], name="sub")
        assert subset.n_layers == 2
        assert subset.layer_names == ("occ", "both")

    def test_memory_estimate(self):
        program = make_program()
        expected = (2 + 2 + 4) * 30 * 8
        assert program.memory_estimate_bytes() == expected

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            ReinsuranceProgram([])

    def test_mixed_catalog_sizes_rejected(self):
        mismatched = make_layer("other", catalog_size=60)
        with pytest.raises(ValueError):
            ReinsuranceProgram([make_layer("a"), mismatched])
