"""Tests for repro.portfolio.pricing."""

import numpy as np
import pytest

from repro.core.engine import AggregateRiskEngine
from repro.elt.table import EventLossTable
from repro.financial.terms import LayerTerms
from repro.portfolio.layer import Layer
from repro.portfolio.pricing import (
    batch_quote,
    loss_ratio,
    price_layer,
    price_program,
    rate_on_line,
)
from repro.portfolio.program import ReinsuranceProgram


def make_layer(aggregate_limit: float = 1e6) -> Layer:
    elt = EventLossTable(np.array([1, 2]), np.array([100.0, 200.0]), catalog_size=10)
    return Layer([elt], LayerTerms(aggregate_limit=aggregate_limit), name="priced")


class TestRateOnLine:
    def test_basic(self):
        assert rate_on_line(100_000.0, 1_000_000.0) == pytest.approx(0.1)

    def test_infinite_limit_gives_nan(self):
        assert np.isnan(rate_on_line(100.0, np.inf))

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            rate_on_line(1.0, 0.0)


class TestLossRatio:
    def test_basic(self):
        assert loss_ratio(50.0, 200.0) == pytest.approx(0.25)

    def test_zero_premium_rejected(self):
        with pytest.raises(ValueError):
            loss_ratio(50.0, 0.0)


class TestPriceLayer:
    def test_premium_components_consistent(self):
        rng = np.random.default_rng(1)
        year_losses = rng.gamma(2.0, 1e5, size=5000)
        pricing = price_layer(make_layer(), year_losses, volatility_loading=0.3, expense_ratio=0.2)
        assert pricing.expected_loss == pytest.approx(year_losses.mean())
        assert pricing.technical_premium == pytest.approx(
            (pricing.expected_loss + pricing.volatility_load) / 0.8
        )
        assert pricing.expense_load == pytest.approx(
            pricing.technical_premium - pricing.expected_loss - pricing.volatility_load
        )

    def test_premium_exceeds_expected_loss(self):
        year_losses = np.random.default_rng(2).gamma(2.0, 1e5, size=1000)
        pricing = price_layer(make_layer(), year_losses)
        assert pricing.technical_premium > pricing.expected_loss

    def test_zero_volatility_loading(self):
        year_losses = np.full(100, 5000.0)
        pricing = price_layer(make_layer(), year_losses, volatility_loading=0.0, expense_ratio=0.0)
        assert pricing.technical_premium == pytest.approx(5000.0)

    def test_rate_on_line_uses_aggregate_limit(self):
        year_losses = np.full(100, 5000.0)
        pricing = price_layer(make_layer(aggregate_limit=50_000.0), year_losses,
                              volatility_loading=0.0, expense_ratio=0.0)
        assert pricing.rate_on_line == pytest.approx(0.1)

    def test_rate_on_line_falls_back_to_occurrence_limit(self):
        elt = EventLossTable(np.array([1]), np.array([10.0]), catalog_size=5)
        layer = Layer([elt], LayerTerms(occurrence_limit=20_000.0))
        pricing = price_layer(layer, np.full(10, 1000.0), volatility_loading=0.0, expense_ratio=0.0)
        assert pricing.rate_on_line == pytest.approx(0.05)

    def test_invalid_expense_ratio(self):
        with pytest.raises(ValueError):
            price_layer(make_layer(), np.array([1.0, 2.0]), expense_ratio=1.0)

    def test_summary_text(self):
        pricing = price_layer(make_layer(), np.array([1.0, 2.0, 3.0]))
        assert "premium=" in pricing.summary()

    def test_metrics_embedded(self):
        pricing = price_layer(make_layer(), np.arange(1.0, 101.0))
        assert pricing.metrics.n_trials == 100


class TestProgramQuote:
    def test_price_program_matches_per_layer_pricing(self, tiny_workload):
        program = tiny_workload.program
        ylt = AggregateRiskEngine().run(program, tiny_workload.yet).ylt
        quote = price_program(program, ylt)
        assert quote.n_layers == program.n_layers
        assert quote.layer_names == program.layer_names
        for index, layer in enumerate(program.layers):
            solo = price_layer(layer, ylt.layer(index))
            assert quote.layer_pricings[index].technical_premium == pytest.approx(
                solo.technical_premium
            )
        assert quote.total_premium == pytest.approx(
            sum(p.technical_premium for p in quote.layer_pricings)
        )
        assert quote.total_expected_loss == pytest.approx(
            sum(p.expected_loss for p in quote.layer_pricings)
        )

    def test_price_program_rejects_shape_mismatch(self, tiny_workload):
        program = tiny_workload.program
        ylt = AggregateRiskEngine().run(program, tiny_workload.yet).ylt
        with pytest.raises(ValueError, match="layers"):
            price_program(program.subset([0]), ylt)

    def test_layer_lookup_by_name_and_index(self, tiny_workload):
        program = tiny_workload.program
        ylt = AggregateRiskEngine().run(program, tiny_workload.yet).ylt
        quote = price_program(program, ylt)
        name = program.layer_names[0]
        assert quote.layer(name) is quote.layer(0)
        with pytest.raises(KeyError):
            quote.layer("no-such-layer")

    def test_summary_text(self, tiny_workload):
        program = tiny_workload.program
        ylt = AggregateRiskEngine().run(program, tiny_workload.yet).ylt
        quote = price_program(program, ylt)
        assert "premium=" in quote.summary()
        assert program.name in quote.summary()


class TestBatchQuote:
    def test_batch_matches_individual_quotes(self, tiny_workload):
        program = tiny_workload.program
        variant = program.subset([1], name="variant")
        engine = AggregateRiskEngine()
        quotes = batch_quote([program, variant], tiny_workload.yet, engine=engine)
        assert [q.program_name for q in quotes] == [program.name, "variant"]
        solo = price_program(
            variant, engine.run(variant, tiny_workload.yet).ylt
        )
        assert quotes[1].total_premium == pytest.approx(solo.total_premium)

    def test_accepts_bare_layers(self, tiny_workload):
        layer = tiny_workload.program.layers[0]
        quotes = batch_quote([layer], tiny_workload.yet)
        assert len(quotes) == 1
        assert quotes[0].n_layers == 1

    def test_loading_parameters_forwarded(self, tiny_workload):
        program = tiny_workload.program
        lean = batch_quote(
            [program], tiny_workload.yet, volatility_loading=0.0, expense_ratio=0.0
        )[0]
        loaded = batch_quote(
            [program], tiny_workload.yet, volatility_loading=0.5, expense_ratio=0.2
        )[0]
        assert loaded.total_premium > lean.total_premium
        assert lean.total_premium == pytest.approx(lean.total_expected_loss)
