"""Regression tests for the digest and plan-cache fixes behind result caching.

Three bugs are pinned here because the result cache's delta matching trusts
the digests completely:

* ``yet_digest`` ignored ``catalog_size`` and the timestamps column, so two
  semantically different YETs could share one cache key;
* ``_hexdigest`` concatenated parts without framing, so differently-split
  byte sequences (``"ab"+"c"`` vs ``"a"+"bc"``) collided;
* ``PlanCache.get_or_build`` raced: two threads missing the same key both
  ran the (expensive) builder.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.parallel.partitioner import TrialRange
from repro.service import RiskService
from repro.service.cache import PlanCache
from repro.service.digests import _hexdigest, yet_digest, yet_prefix_digest
from repro.yet.io import YetShardReader, save_yet_store, shard_count_for_budget
from repro.yet.table import YearEventTable


def _yet_with_timestamps() -> YearEventTable:
    return YearEventTable.from_trials(
        [[3, 7], [1], [2, 5, 9]],
        catalog_size=16,
        timestamps=[[0.1, 0.6], [0.4], [0.2, 0.5, 0.9]],
    )


class TestYetDigestCoverage:
    def test_catalog_width_changes_digest(self, tiny_workload):
        """Same events, wider catalog -> a different content digest."""
        yet = tiny_workload.yet
        widened = YearEventTable(
            yet.event_ids, yet.trial_offsets, yet.catalog_size * 2, yet.timestamps
        )
        assert yet_digest(yet) != yet_digest(widened)

    def test_catalog_width_changes_cache_keys(self, tiny_workload):
        """The regression as the service sees it: distinct plan-cache keys.

        Before the fix, a program priced over a re-widened YET hit the old
        plan (whose stack has the old catalog width) instead of lowering a
        new one.
        """
        yet = tiny_workload.yet
        widened = YearEventTable(
            yet.event_ids, yet.trial_offsets, yet.catalog_size * 2, yet.timestamps
        )
        with RiskService(EngineConfig(backend="vectorized")) as service:
            key = service._program_key("run", [tiny_workload.program], yet, 0)
            widened_key = service._program_key(
                "run", [tiny_workload.program], widened, 0
            )
        assert key != widened_key

    def test_timestamp_presence_changes_digest(self):
        timed = _yet_with_timestamps()
        untimed = YearEventTable(
            timed.event_ids, timed.trial_offsets, timed.catalog_size, None
        )
        assert yet_digest(timed) != yet_digest(untimed)

    def test_timestamp_bytes_change_digest(self):
        timed = _yet_with_timestamps()
        shifted_ts = timed.timestamps.copy()
        shifted_ts[0] += 0.05
        shifted = YearEventTable(
            timed.event_ids, timed.trial_offsets, timed.catalog_size, shifted_ts
        )
        assert yet_digest(timed) != yet_digest(shifted)

    def test_digest_is_content_addressed(self):
        a = _yet_with_timestamps()
        b = _yet_with_timestamps()
        assert a is not b
        assert yet_digest(a) == yet_digest(b)


class TestYetPrefixDigest:
    def test_prefix_digest_matches_sliced_table(self):
        yet = _yet_with_timestamps()
        for n in range(yet.n_trials + 1):
            if n == 0:
                continue  # slice_trials allows it but a 0-trial YET is degenerate
            assert yet_prefix_digest(yet, n) == yet_digest(yet.slice_trials(0, n))

    def test_full_length_prefix_is_the_digest(self, tiny_workload):
        yet = tiny_workload.yet
        assert yet_prefix_digest(yet, yet.n_trials) == yet_digest(yet)

    def test_out_of_range_prefix_rejected(self, tiny_workload):
        yet = tiny_workload.yet
        with pytest.raises(ValueError):
            yet_prefix_digest(yet, yet.n_trials + 1)
        with pytest.raises(ValueError):
            yet_prefix_digest(yet, -1)


class TestHexdigestFraming:
    def test_part_boundaries_are_framed(self):
        """The canonical framing collision: "ab"+"c" must differ from "a"+"bc"."""
        assert _hexdigest([b"ab", b"c"]) != _hexdigest([b"a", b"bc"])

    def test_empty_parts_are_significant(self):
        assert _hexdigest([b"x", b""]) != _hexdigest([b"x"])

    def test_deterministic(self):
        assert _hexdigest([b"a", b"bc"]) == _hexdigest([b"a", b"bc"])


class TestPlanCacheBuildRace:
    def test_concurrent_get_or_build_runs_builder_once(self):
        """Two threads racing one cold key must share a single build."""
        cache = PlanCache(4)
        barrier = threading.Barrier(2)
        builds: list[int] = []
        results: list[object] = []

        def builder():
            builds.append(threading.get_ident())
            time.sleep(0.05)  # widen the race window
            return object()

        def worker():
            barrier.wait()
            plan, _ = cache.get_or_build("key", builder)
            results.append(plan)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(builds) == 1
        assert results[0] is results[1]

    def test_failed_build_releases_the_key(self):
        cache = PlanCache(4)

        with pytest.raises(RuntimeError):
            cache.get_or_build("key", self._raise)
        # The per-key build lock must not leak; a retry builds normally.
        plan, hit = cache.get_or_build("key", object)
        assert not hit
        assert plan is not None
        assert cache._build_locks == {}

    @staticmethod
    def _raise():
        raise RuntimeError("builder exploded")

    def test_len_and_contains_are_consistent(self):
        cache = PlanCache(2)
        cache.put("a", object())
        assert len(cache) == 1
        assert "a" in cache
        assert "b" not in cache

    def test_peek_does_not_touch_stats_or_order(self):
        cache = PlanCache(2)
        cache.put("a", object())
        cache.put("b", object())
        before = cache.stats
        assert cache.peek("a") is not None
        assert cache.peek("missing") is None
        after = cache.stats
        assert (after.hits, after.misses) == (before.hits, before.misses)
        cache.put("c", object())  # evicts the LRU entry: "a" (peek kept order)
        assert "a" not in cache and "b" in cache and "c" in cache


class TestShardReaderBounds:
    def test_stop_at_n_trials_is_accepted(self, tiny_workload, tmp_path):
        store = save_yet_store(tiny_workload.yet, tmp_path / "store")
        with YetShardReader(store) as reader:
            full = reader.shard(TrialRange(0, reader.n_trials))
            assert full.n_trials == tiny_workload.yet.n_trials
            np.testing.assert_array_equal(full.event_ids, tiny_workload.yet.event_ids)

    def test_error_message_reports_inclusive_stop_bound(self, tiny_workload, tmp_path):
        store = save_yet_store(tiny_workload.yet, tmp_path / "store")
        with YetShardReader(store) as reader:
            with pytest.raises(IndexError, match=r"<= stop <= "):
                reader.shard(TrialRange(0, reader.n_trials + 1))
            # The old message claimed [0, n_trials), which shard() never enforced.
            with pytest.raises(IndexError) as excinfo:
                reader.shard(TrialRange(0, reader.n_trials + 1))
            assert f"[0, {reader.n_trials})" not in str(excinfo.value)


class TestShardCountForBudget:
    def test_ceil_division(self):
        assert shard_count_for_budget(1000, 250) == 4
        assert shard_count_for_budget(1001, 250) == 5
        assert shard_count_for_budget(1, 250) == 1

    def test_empty_table_is_one_shard(self):
        assert shard_count_for_budget(0, 64) == 1

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            shard_count_for_budget(1000, 0)

    def test_reader_delegates_to_the_helper(self, tiny_workload, tmp_path):
        store = save_yet_store(tiny_workload.yet, tmp_path / "store")
        with YetShardReader(store) as reader:
            for budget in (64, 1024, 10**9):
                assert reader.shard_count_for_budget(budget) == (
                    shard_count_for_budget(reader.event_bytes, budget)
                )

    def test_engine_sharding_matches_the_helper(self, tiny_workload):
        """run_sharded's byte-budget branch must use the same arithmetic."""
        from repro.core.engine import AggregateRiskEngine

        engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
        budget = max(tiny_workload.yet.event_bytes // 3, 1)
        result = engine.run_sharded(
            tiny_workload.program, tiny_workload.yet, max_shard_bytes=budget
        )
        expected = shard_count_for_budget(tiny_workload.yet.event_bytes, budget)
        assert result.details["trial_shards"] == min(
            expected, tiny_workload.yet.n_trials
        )
