"""Tests for the AnalysisRequest schema: round-trips and validation."""

import json

import pytest

from repro.service.request import (
    REQUEST_KINDS,
    AnalysisRequest,
    RequestValidationError,
)


class TestRoundTrip:
    def test_dict_round_trip_defaults(self):
        request = AnalysisRequest(kind="run", program="bench").validate()
        assert AnalysisRequest.from_dict(request.to_dict()) == request

    def test_dict_round_trip_every_field(self):
        request = AnalysisRequest(
            kind="sweep",
            program="bench",
            variants=8,
            dedupe=False,
            max_rows_per_block=16,
            return_periods=(10.0, 50.0),
            tvar_levels=(0.95,),
            seed=7,
            quote=False,
            tags={"client": "desk-3"},
        ).validate()
        assert AnalysisRequest.from_dict(request.to_dict()) == request

    def test_json_round_trip(self):
        request = AnalysisRequest(
            kind="run_many", programs=("a", "b"), yet="y", dedupe=False
        ).validate()
        document = request.to_json()
        json.loads(document)  # well-formed
        assert AnalysisRequest.from_json(document) == request

    def test_to_dict_is_json_compatible(self):
        request = AnalysisRequest(kind="uncertainty", program="bench", seed=3)
        json.dumps(request.to_dict())

    def test_lists_become_tuples(self):
        request = AnalysisRequest.from_dict(
            {"kind": "run_many", "programs": ["a", "b"]}
        )
        assert request.programs == ("a", "b")
        assert isinstance(request.return_periods, tuple)


class TestValidation:
    def test_all_kinds_accepted(self):
        for kind in REQUEST_KINDS:
            AnalysisRequest(kind=kind)  # construction never validates eagerly

    def test_unknown_kind_rejected(self):
        with pytest.raises(RequestValidationError, match="unknown kind"):
            AnalysisRequest(kind="teleport").validate()

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestValidationError, match="unknown fields.*programme"):
            AnalysisRequest.from_dict({"kind": "run", "programme": "typo"})

    def test_missing_kind_rejected(self):
        with pytest.raises(RequestValidationError, match="missing required field 'kind'"):
            AnalysisRequest.from_dict({"program": "bench"})

    def test_run_requires_program(self):
        with pytest.raises(RequestValidationError, match="requires a program"):
            AnalysisRequest(kind="run").validate()

    def test_run_rejects_program_list(self):
        with pytest.raises(RequestValidationError, match="single program"):
            AnalysisRequest(kind="run", program="a", programs=("b",)).validate()

    def test_run_many_needs_programs_or_variants(self):
        with pytest.raises(RequestValidationError, match="explicit program names"):
            AnalysisRequest(kind="run_many", program="a").validate()

    def test_run_many_rejects_both_forms(self):
        with pytest.raises(RequestValidationError, match="either"):
            AnalysisRequest(
                kind="run_many", program="a", variants=2, programs=("b",)
            ).validate()

    def test_run_stacked_requires_stack_and_yet(self):
        with pytest.raises(RequestValidationError, match="requires a stack"):
            AnalysisRequest(kind="run_stacked").validate()
        with pytest.raises(RequestValidationError, match="explicit YET"):
            AnalysisRequest(kind="run_stacked", stack="s").validate()

    def test_stack_rejected_on_other_kinds(self):
        with pytest.raises(RequestValidationError, match="does not take a stack"):
            AnalysisRequest(kind="run", program="a", stack="s").validate()

    @pytest.mark.parametrize(
        "overrides,match",
        [
            (dict(replications=0), "replications"),
            (dict(replication_block=-1), "replication_block"),
            (dict(cv=-0.5), "cv"),
            (dict(method="guess"), "unknown method"),
            (dict(return_periods=(0.0,)), "return periods"),
            (dict(tvar_levels=(1.5,)), "TVaR levels"),
            (dict(variants=-1), "variants"),
            (dict(max_rows_per_block=-2), "max_rows_per_block"),
        ],
    )
    def test_field_bounds(self, overrides, match):
        with pytest.raises(RequestValidationError, match=match):
            AnalysisRequest(kind="uncertainty", program="a", **overrides).validate()

    def test_workers_only_on_run(self):
        with pytest.raises(RequestValidationError, match="does not support distributed"):
            AnalysisRequest(
                kind="uncertainty", program="a", workers=("h:1",)
            ).validate()

    @pytest.mark.parametrize("address", ["localhost", "host:", ":9", "host:http"])
    def test_worker_address_must_be_host_port(self, address):
        with pytest.raises(RequestValidationError, match="HOST:PORT"):
            AnalysisRequest(kind="run", program="a", workers=(address,)).validate()

    def test_workers_round_trip(self):
        request = AnalysisRequest(
            kind="run", program="a", workers=("10.0.0.1:7001", "10.0.0.2:7001")
        ).validate()
        assert AnalysisRequest.from_dict(request.to_dict()) == request
        assert AnalysisRequest.from_json(request.to_json()).workers == request.workers

    def test_validation_error_names_field(self):
        with pytest.raises(RequestValidationError) as excinfo:
            AnalysisRequest(kind="run").validate()
        assert excinfo.value.field == "program"

    def test_invalid_json_document(self):
        with pytest.raises(RequestValidationError, match="not valid JSON"):
            AnalysisRequest.from_json("{nope")

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(RequestValidationError, match="expected a mapping"):
            AnalysisRequest.from_dict(["kind", "run"])

    def test_scalar_list_field_rejected(self):
        with pytest.raises(RequestValidationError, match="must be a list"):
            AnalysisRequest.from_dict({"kind": "run_many", "programs": "solo"})
