"""Tests for the content digests and the PlanCache LRU."""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.plan import PlanBuilder
from repro.financial.terms import LayerTerms
from repro.portfolio.layer import Layer
from repro.service.cache import PlanCache
from repro.service.digests import (
    PLAN_RELEVANT_CONFIG_FIELDS,
    config_digest,
    program_digest,
    stack_digest,
    terms_digest,
    yet_digest,
)


class TestDigests:
    def test_program_digest_deterministic(self, tiny_workload):
        assert program_digest(tiny_workload.program) == program_digest(
            tiny_workload.program
        )

    def test_program_digest_content_addressed(self, tiny_workload):
        """Two distinct objects with the same content share one digest."""
        program = tiny_workload.program
        clone = Layer(program.layers[0].elts, program.layers[0].terms,
                      name=program.layers[0].name)
        assert program_digest(clone) != ""
        rebuilt = type(program)(
            [Layer(l.elts, l.terms, name=l.name) for l in program.layers],
            name=program.name,
        )
        assert program_digest(rebuilt) == program_digest(program)

    def test_term_change_changes_digest(self, tiny_workload):
        layer = tiny_workload.program.layers[0]
        variant = layer.with_terms(LayerTerms(occurrence_retention=12345.0))
        assert program_digest(layer) != program_digest(variant)

    def test_elt_content_change_changes_digest(self, tiny_workload):
        from repro.elt.table import EventLossTable

        layer = tiny_workload.program.layers[0]
        elt = layer.elts[0]
        bumped = EventLossTable(
            elt.event_ids, elt.losses * 1.01, catalog_size=elt.catalog_size,
            terms=elt.terms,
        )
        mutated = Layer([bumped, *layer.elts[1:]], layer.terms, name=layer.name)
        assert program_digest(layer) != program_digest(mutated)

    def test_yet_digest_memoized_and_stable(self, tiny_workload):
        first = yet_digest(tiny_workload.yet)
        assert yet_digest(tiny_workload.yet) == first

    def test_config_digest_ignores_irrelevant_fields(self):
        assert config_digest(EngineConfig()) == config_digest(
            EngineConfig(record_phases=True)
        )

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(backend="chunked"),
            dict(fused_layers=False),
            dict(use_aggregate_shortcut=False),
            dict(record_max_occurrence=False),
            dict(chunk_events=999),
            dict(n_workers=3),
            dict(shared_memory="on"),
        ],
    )
    def test_config_digest_tracks_relevant_fields(self, overrides):
        assert config_digest(EngineConfig()) != config_digest(
            EngineConfig(**overrides)
        )

    def test_relevant_fields_exist_on_config(self):
        config = EngineConfig()
        for name in PLAN_RELEVANT_CONFIG_FIELDS:
            getattr(config, name)

    def test_stack_and_terms_digests(self):
        stack = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert stack_digest(stack) == stack_digest(stack.copy())
        assert stack_digest(stack) != stack_digest(stack * 2)
        terms = [LayerTerms(), LayerTerms(occurrence_retention=5.0)]
        assert terms_digest(terms) == terms_digest(list(terms))
        assert terms_digest(terms) != terms_digest(terms[:1])


class TestPlanCache:
    def _plan(self, workload):
        return PlanBuilder.from_program(workload.program, workload.yet)

    def test_miss_then_hit(self, tiny_workload):
        cache = PlanCache(maxsize=4)
        plan = self._plan(tiny_workload)
        assert cache.get("k") is None
        cache.put("k", plan)
        assert cache.get("k") is plan
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)

    def test_get_or_build(self, tiny_workload):
        cache = PlanCache(maxsize=4)
        built = []

        def builder():
            built.append(True)
            return self._plan(tiny_workload)

        plan, hit = cache.get_or_build("k", builder)
        assert not hit and len(built) == 1
        again, hit = cache.get_or_build("k", builder)
        assert hit and again is plan and len(built) == 1

    def test_lru_eviction_order(self, tiny_workload):
        cache = PlanCache(maxsize=2)
        plan = self._plan(tiny_workload)
        cache.put("a", plan)
        cache.put("b", plan)
        assert cache.get("a") is plan  # refresh "a": "b" becomes the LRU
        cache.put("c", plan)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_clear_keeps_stats(self, tiny_workload):
        cache = PlanCache(maxsize=2)
        cache.put("a", self._plan(tiny_workload))
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError, match="maxsize"):
            PlanCache(maxsize=0)

    def test_hit_rate(self):
        cache = PlanCache()
        assert cache.stats.hit_rate == 0.0
        cache.get("missing")
        assert cache.stats.hit_rate == 0.0
        assert "plan-cache" in cache.stats.summary()
