"""Tests for the delta-aware ResultCache and its RiskService serving paths.

The load-bearing claims pinned here:

* an exact repeat is served without any kernel pass;
* an append-trials delta prices only the appended range and the merged
  result is **bit-identical** to a cold monolithic run — on every backend;
* a single-layer delta re-prices only the changed stack rows, composed
  bit-identically to a cold run of the full program;
* the on-disk tier survives a service restart and still serves exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.core.results import PartialResult, ResultAccumulator
from repro.financial.terms import LayerTerms
from repro.parallel.partitioner import TrialRange
from repro.portfolio.program import ReinsuranceProgram
from repro.service import AnalysisRequest, ResultCache, RiskService
from repro.service.digests import layer_digest, yet_digest
from repro.yet.table import YearEventTable


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #
def append_trials(yet: YearEventTable, n_extra: int, seed: int = 11) -> YearEventTable:
    """A YET whose first ``yet.n_trials`` trials are byte-identical to ``yet``.

    Built by concatenating freshly drawn trials onto the stored arrays, the
    way a simulation campaign extends an event set in place.
    """
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 6, size=n_extra)
    extra_ids = rng.integers(0, yet.catalog_size, size=int(lengths.sum()))
    extra_offsets = np.zeros(n_extra + 1, dtype=np.int64)
    np.cumsum(lengths, out=extra_offsets[1:])
    event_ids = np.concatenate([yet.event_ids, extra_ids])
    trial_offsets = np.concatenate(
        [yet.trial_offsets, extra_offsets[1:] + yet.n_occurrences]
    )
    timestamps = None
    if yet.timestamps is not None:
        extra_ts = np.sort(rng.random(int(lengths.sum())))
        timestamps = np.concatenate([yet.timestamps, extra_ts])
    return YearEventTable(event_ids, trial_offsets, yet.catalog_size, timestamps)


def with_scaled_layer(program: ReinsuranceProgram, row: int, scale: float = 1.5):
    """The program with one layer's occurrence retention scaled (a row delta)."""
    layers = list(program.layers)
    layer = layers[row]
    layers[row] = layer.with_terms(
        LayerTerms(
            occurrence_retention=layer.terms.occurrence_retention * scale,
            occurrence_limit=layer.terms.occurrence_limit,
            aggregate_retention=layer.terms.aggregate_retention,
            aggregate_limit=layer.terms.aggregate_limit,
        )
    )
    return ReinsuranceProgram(layers, name=program.name)


def complete_accumulator(n_rows: int, n_trials: int, fill: float) -> ResultAccumulator:
    accumulator = ResultAccumulator(n_rows, TrialRange(0, n_trials))
    accumulator.add(
        PartialResult(
            TrialRange(0, n_trials), np.full((n_rows, n_trials), fill)
        )
    )
    return accumulator


def counting_service(config: EngineConfig, **kwargs) -> tuple[RiskService, list]:
    """A RiskService whose engine records every run_plan invocation."""
    service = RiskService(config, **kwargs)
    calls: list = []
    inner = service.engine.run_plan

    def recording_run_plan(plan):
        calls.append(plan)
        return inner(plan)

    service.engine.run_plan = recording_run_plan
    return service, calls


def backend_config(backend: str) -> EngineConfig:
    return EngineConfig(backend=backend, n_workers=2 if backend == "multicore" else 1)


# --------------------------------------------------------------------- #
# ResultCache unit behaviour
# --------------------------------------------------------------------- #
class TestResultCacheUnit:
    def _yet(self, n_trials: int = 4) -> YearEventTable:
        return YearEventTable.from_trials(
            [[i % 8, (i + 3) % 8] for i in range(n_trials)], catalog_size=8
        )

    def test_exact_roundtrip_and_stats(self):
        cache = ResultCache(maxsize=4)
        yet = self._yet()
        accumulator = complete_accumulator(2, yet.n_trials, 1.0)
        cache.store(
            program_digest="p",
            yet_digest=yet_digest(yet),
            config_digest="c",
            accumulator=accumulator,
        )
        match = cache.lookup(program_digest="p", config_digest="c", yet=yet)
        assert match.status == "exact"
        assert match.accumulator is accumulator
        miss = cache.lookup(program_digest="other", config_digest="c", yet=yet)
        assert miss.status == "miss"
        stats = cache.stats
        assert (stats.exact_hits, stats.misses, stats.entries) == (1, 1, 1)

    def test_append_match_exposes_only_the_gap(self):
        cache = ResultCache(maxsize=4)
        yet = self._yet(4)
        extended_yet = append_trials(yet, 3)
        cache.store(
            program_digest="p",
            yet_digest=yet_digest(yet),
            config_digest="c",
            accumulator=complete_accumulator(2, yet.n_trials, 1.0),
        )
        match = cache.lookup(program_digest="p", config_digest="c", yet=extended_yet)
        assert match.status == "append"
        assert match.accumulator.trials == TrialRange(0, extended_yet.n_trials)
        assert match.accumulator.missing_ranges() == [TrialRange(4, 7)]
        assert cache.stats.append_hits == 1

    def test_shrunk_yet_is_a_miss(self):
        cache = ResultCache(maxsize=4)
        yet = self._yet(4)
        cache.store(
            program_digest="p",
            yet_digest=yet_digest(yet),
            config_digest="c",
            accumulator=complete_accumulator(2, yet.n_trials, 1.0),
        )
        shrunk = yet.slice_trials(0, 2)
        assert cache.lookup(
            program_digest="p", config_digest="c", yet=shrunk
        ).status == "miss"

    def test_row_match_requires_a_strict_subset(self):
        cache = ResultCache(maxsize=4)
        yet = self._yet()
        cache.store(
            program_digest="p",
            yet_digest=yet_digest(yet),
            config_digest="c",
            accumulator=complete_accumulator(3, yet.n_trials, 1.0),
            row_digests=("r0", "r1", "r2"),
        )
        match = cache.lookup(
            program_digest="q",
            config_digest="c",
            yet=yet,
            row_digests=("r0", "CHANGED", "r2"),
        )
        assert match.status == "rows"
        assert match.changed_rows == (1,)
        # Every row changed: nothing reusable.
        assert cache.lookup(
            program_digest="q2", config_digest="c", yet=yet,
            row_digests=("a", "b", "d"),
        ).status == "miss"
        # Different row count: not a sibling.
        assert cache.lookup(
            program_digest="q3", config_digest="c", yet=yet,
            row_digests=("r0", "r1"),
        ).status == "miss"

    def test_config_digest_partitions_entries(self):
        cache = ResultCache(maxsize=4)
        yet = self._yet()
        cache.store(
            program_digest="p",
            yet_digest=yet_digest(yet),
            config_digest="c1",
            accumulator=complete_accumulator(2, yet.n_trials, 1.0),
        )
        assert cache.lookup(
            program_digest="p", config_digest="c2", yet=yet
        ).status == "miss"

    def test_memory_only_eviction_forgets_the_entry(self):
        cache = ResultCache(maxsize=1)
        yet_a, yet_b = self._yet(3), self._yet(5)
        for name, yet in (("a", yet_a), ("b", yet_b)):
            cache.store(
                program_digest=name,
                yet_digest=yet_digest(yet),
                config_digest="c",
                accumulator=complete_accumulator(1, yet.n_trials, 2.0),
            )
        stats = cache.stats
        assert stats.evictions == 1 and stats.entries == 1
        assert cache.lookup(
            program_digest="a", config_digest="c", yet=yet_a
        ).status == "miss"
        assert cache.lookup(
            program_digest="b", config_digest="c", yet=yet_b
        ).status == "exact"

    def test_disk_backed_eviction_still_serves(self, tmp_path):
        cache = ResultCache(maxsize=1, disk_dir=tmp_path)
        yet_a, yet_b = self._yet(3), self._yet(5)
        for name, yet in (("a", yet_a), ("b", yet_b)):
            cache.store(
                program_digest=name,
                yet_digest=yet_digest(yet),
                config_digest="c",
                accumulator=complete_accumulator(1, yet.n_trials, 3.0),
            )
        match = cache.lookup(program_digest="a", config_digest="c", yet=yet_a)
        assert match.status == "exact"
        np.testing.assert_array_equal(
            match.accumulator.year_losses(), np.full((1, 3), 3.0)
        )
        assert cache.stats.disk_loads == 1

    def test_disk_tier_survives_a_new_instance(self, tmp_path):
        yet = self._yet(4)
        first = ResultCache(maxsize=2, disk_dir=tmp_path)
        first.store(
            program_digest="p",
            yet_digest=yet_digest(yet),
            config_digest="c",
            accumulator=complete_accumulator(2, yet.n_trials, 4.5),
            row_digests=("r0", "r1"),
        )
        reborn = ResultCache(maxsize=2, disk_dir=tmp_path)
        assert reborn.stats.disk_entries == 1
        match = reborn.lookup(program_digest="p", config_digest="c", yet=yet)
        assert match.status == "exact"
        np.testing.assert_array_equal(
            match.accumulator.year_losses(), np.full((2, 4), 4.5)
        )
        # Row digests persisted too: a sibling row delta still matches.
        sibling = reborn.lookup(
            program_digest="q", config_digest="c", yet=yet,
            row_digests=("r0", "CHANGED"),
        )
        assert sibling.status == "rows" and sibling.changed_rows == (1,)

    def test_eviction_repoints_latest_to_surviving_entry(self):
        """Evicting the deepest entry must not orphan the append index.

        Regression: ``_deindex`` dropped ``_latest`` with no fallback, so
        after the deepest (program, config) entry was evicted every later
        append-trials lookup degraded to a full miss even though an older
        complete entry still survived in the cache.
        """
        cache = ResultCache(maxsize=2)
        yet_base = self._yet(4)
        yet_extended = append_trials(yet_base, 3)
        cache.store(
            program_digest="p",
            yet_digest=yet_digest(yet_base),
            config_digest="c",
            accumulator=complete_accumulator(2, yet_base.n_trials, 1.0),
        )
        cache.store(
            program_digest="p",
            yet_digest=yet_digest(yet_extended),
            config_digest="c",
            accumulator=complete_accumulator(2, yet_extended.n_trials, 2.0),
        )
        # Touch the base so the deeper entry is the LRU eviction victim...
        assert cache.lookup(
            program_digest="p", config_digest="c", yet=yet_base
        ).status == "exact"
        # ...then push an unrelated entry in to evict it.
        other = self._yet(5)
        cache.store(
            program_digest="other",
            yet_digest=yet_digest(other),
            config_digest="c",
            accumulator=complete_accumulator(1, other.n_trials, 3.0),
        )
        assert cache.stats.evictions == 1
        # The extended YET still gets an append hit off the surviving base.
        match = cache.lookup(
            program_digest="p", config_digest="c", yet=yet_extended
        )
        assert match.status == "append"
        assert match.accumulator.missing_ranges() == [
            TrialRange(yet_base.n_trials, yet_extended.n_trials)
        ]

    def test_evicting_the_only_entry_clears_the_index(self):
        """When nothing survives, the append index entry must go away too."""
        cache = ResultCache(maxsize=1)
        yet = self._yet(4)
        cache.store(
            program_digest="p",
            yet_digest=yet_digest(yet),
            config_digest="c",
            accumulator=complete_accumulator(1, yet.n_trials, 1.0),
        )
        cache.store(
            program_digest="q",
            yet_digest=yet_digest(yet),
            config_digest="c",
            accumulator=complete_accumulator(1, yet.n_trials, 2.0),
        )
        extended = append_trials(yet, 2)
        assert cache.lookup(
            program_digest="p", config_digest="c", yet=extended
        ).status == "miss"

    def test_incomplete_accumulator_rejected(self):
        cache = ResultCache(maxsize=2)
        incomplete = ResultAccumulator(1, TrialRange(0, 4))
        incomplete.add(PartialResult(TrialRange(0, 2), np.zeros((1, 2))))
        with pytest.raises(ValueError, match="complete"):
            cache.store(
                program_digest="p",
                yet_digest="y",
                config_digest="c",
                accumulator=incomplete,
            )

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=0)


# --------------------------------------------------------------------- #
# RiskService serving paths
# --------------------------------------------------------------------- #
class TestServiceResultCache:
    def test_disabled_by_default(self, tiny_workload):
        with RiskService(EngineConfig(backend="vectorized")) as service:
            service.register_workload("w", tiny_workload)
            response = service.submit({"kind": "run", "program": "w"})
            assert service.result_cache is None
            assert response.result_cache is None

    def test_exact_repeat_skips_the_kernel_pass(self, tiny_workload):
        service, calls = counting_service(
            EngineConfig(backend="vectorized"), result_cache=True
        )
        with service:
            service.register_workload("w", tiny_workload)
            cold = service.submit({"kind": "run", "program": "w"})
            assert cold.result_cache["status"] == "miss"
            cold_calls = len(calls)
            warm = service.submit({"kind": "run", "program": "w"})
            assert warm.result_cache["status"] == "exact"
            assert len(calls) == cold_calls  # no engine pass at all
            np.testing.assert_array_equal(
                warm.result.ylt.losses, cold.result.ylt.losses
            )
            assert warm.result_cache["stats"]["exact_hits"] == 1

    def test_per_request_opt_out(self, tiny_workload):
        service, calls = counting_service(
            EngineConfig(backend="vectorized"), result_cache=True
        )
        with service:
            service.register_workload("w", tiny_workload)
            service.submit({"kind": "run", "program": "w"})
            bypass = service.submit(
                {"kind": "run", "program": "w", "result_cache": False}
            )
            assert bypass.result_cache is None
            assert len(calls) == 2  # the opt-out request ran the kernels again
            assert service.result_cache.stats.exact_hits == 0

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_append_delta_bit_identical_to_cold(self, tiny_workload, backend):
        """The headline invariant, on every backend: warm append == cold run."""
        config = backend_config(backend)
        extended_yet = append_trials(tiny_workload.yet, 48)

        with RiskService(config, result_cache=True) as warm:
            warm.register_program("w", tiny_workload.program)
            warm.register_yet("w", tiny_workload.yet)
            warm.submit({"kind": "run", "program": "w"})
            warm.register_yet("w", extended_yet)
            delta = warm.submit({"kind": "run", "program": "w"})
        assert delta.result_cache["status"] == "append"
        assert delta.result_cache["repriced_trials"] == 48
        assert delta.result_cache["cached_trials"] == tiny_workload.yet.n_trials

        with RiskService(config) as cold_service:
            cold_service.register_program("w", tiny_workload.program)
            cold_service.register_yet("w", extended_yet)
            cold = cold_service.submit({"kind": "run", "program": "w"})

        np.testing.assert_array_equal(delta.result.ylt.losses, cold.result.ylt.losses)
        warm_occ = delta.result.ylt.max_occurrence_losses
        cold_occ = cold.result.ylt.max_occurrence_losses
        assert (warm_occ is None) == (cold_occ is None)
        if warm_occ is not None:
            np.testing.assert_array_equal(warm_occ, cold_occ)

    def test_append_delta_prices_only_the_gap(self, tiny_workload):
        service, calls = counting_service(
            EngineConfig(backend="vectorized"), result_cache=True
        )
        extended_yet = append_trials(tiny_workload.yet, 32)
        with service:
            service.register_program("w", tiny_workload.program)
            service.register_yet("w", tiny_workload.yet)
            service.submit({"kind": "run", "program": "w"})
            calls.clear()
            service.register_yet("w", extended_yet)
            service.submit({"kind": "run", "program": "w"})
            assert len(calls) == 1
            assert calls[0].trials == TrialRange(
                tiny_workload.yet.n_trials, extended_yet.n_trials
            )

    def test_repeated_appends_accumulate(self, tiny_workload):
        """Extend twice: each delta prices its own gap; results stay exact."""
        config = EngineConfig(backend="vectorized")
        once = append_trials(tiny_workload.yet, 16, seed=3)
        twice = append_trials(once, 16, seed=4)
        with RiskService(config, result_cache=True) as service:
            service.register_program("w", tiny_workload.program)
            for yet in (tiny_workload.yet, once, twice):
                service.register_yet("w", yet)
                response = service.submit({"kind": "run", "program": "w"})
        assert response.result_cache["status"] == "append"
        with RiskService(config) as cold_service:
            cold_service.register_program("w", tiny_workload.program)
            cold_service.register_yet("w", twice)
            cold = cold_service.submit({"kind": "run", "program": "w"})
        np.testing.assert_array_equal(
            response.result.ylt.losses, cold.result.ylt.losses
        )

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_row_delta_bit_identical_to_cold(self, tiny_workload, backend):
        config = backend_config(backend)
        changed_program = with_scaled_layer(tiny_workload.program, 0)

        with RiskService(config, result_cache=True) as warm:
            warm.register_program("base", tiny_workload.program)
            warm.register_yet("base", tiny_workload.yet)
            warm.submit({"kind": "run", "program": "base"})
            warm.register_program("changed", changed_program)
            warm.register_yet("changed", tiny_workload.yet)
            delta = warm.submit({"kind": "run", "program": "changed"})
        assert delta.result_cache["status"] == "rows"
        assert delta.result_cache["repriced_rows"] == [0]

        with RiskService(config) as cold_service:
            cold_service.register_program("changed", changed_program)
            cold_service.register_yet("changed", tiny_workload.yet)
            cold = cold_service.submit({"kind": "run", "program": "changed"})

        np.testing.assert_array_equal(delta.result.ylt.losses, cold.result.ylt.losses)
        warm_occ = delta.result.ylt.max_occurrence_losses
        cold_occ = cold.result.ylt.max_occurrence_losses
        assert (warm_occ is None) == (cold_occ is None)
        if warm_occ is not None:
            np.testing.assert_array_equal(warm_occ, cold_occ)

    def test_row_delta_prices_only_changed_rows(self, tiny_workload):
        service, calls = counting_service(
            EngineConfig(backend="vectorized"), result_cache=True
        )
        with service:
            service.register_program("base", tiny_workload.program)
            service.register_yet("base", tiny_workload.yet)
            service.submit({"kind": "run", "program": "base"})
            calls.clear()
            changed_program = with_scaled_layer(tiny_workload.program, 1)
            service.register_program("changed", changed_program)
            service.register_yet("changed", tiny_workload.yet)
            response = service.submit({"kind": "run", "program": "changed"})
            assert response.result_cache["status"] == "rows"
            assert len(calls) == 1
            assert calls[0].n_rows == 1  # only the changed layer was priced

    def test_row_delta_occ_mismatch_falls_back_to_full_recompute(self, tiny_workload):
        """A sibling without occurrence losses must not poison the composition.

        Regression: when the cached sibling and the delta run disagreed on
        carrying max-occurrence losses, ``_serve_row_delta`` silently set
        ``occ = None`` — a result NOT bit-identical to a cold run.  The
        mismatch must instead fall back to a full recompute.
        """
        config = EngineConfig(backend="vectorized")  # records max occurrence
        program, yet = tiny_workload.program, tiny_workload.yet
        changed_program = with_scaled_layer(program, 0)

        with RiskService(config, result_cache=True) as service:
            service.register_program("changed", changed_program)
            service.register_yet("changed", yet)
            # Seed an occurrence-less sibling under the base program's real
            # digests (an entry stored before occurrence tracking existed —
            # the config digest pins occurrence *settings*, not history).
            plan_key = service._program_key("run", [program], yet, 0)
            service.result_cache.store(
                program_digest=plan_key[1][0],
                yet_digest=plan_key[2],
                config_digest=f"{plan_key[3]}|shards=0",
                accumulator=complete_accumulator(program.n_layers, yet.n_trials, 0.0),
                row_digests=tuple(layer_digest(layer) for layer in program.layers),
            )
            delta = service.submit({"kind": "run", "program": "changed"})
            assert delta.result_cache["status"] == "rows_fallback"
            assert delta.result_cache["reason"] == "occurrence_mismatch"
            # The fallback stored the complete entry: a repeat serves exactly,
            # occurrence losses intact.
            repeat = service.submit({"kind": "run", "program": "changed"})
            assert repeat.result_cache["status"] == "exact"
            assert repeat.result.ylt.max_occurrence_losses is not None

        with RiskService(config) as cold_service:
            cold_service.register_program("changed", changed_program)
            cold_service.register_yet("changed", yet)
            cold = cold_service.submit({"kind": "run", "program": "changed"})

        np.testing.assert_array_equal(delta.result.ylt.losses, cold.result.ylt.losses)
        assert cold.result.ylt.max_occurrence_losses is not None
        assert delta.result.ylt.max_occurrence_losses is not None  # was dropped
        np.testing.assert_array_equal(
            delta.result.ylt.max_occurrence_losses,
            cold.result.ylt.max_occurrence_losses,
        )

    def test_sharded_request_delta_matches_sharded_cold(self, tiny_workload):
        """shards is scheduling, not semantics — but keys must still line up."""
        config = EngineConfig(backend="vectorized")
        extended_yet = append_trials(tiny_workload.yet, 24)
        with RiskService(config, result_cache=True) as warm:
            warm.register_program("w", tiny_workload.program)
            warm.register_yet("w", tiny_workload.yet)
            warm.submit({"kind": "run", "program": "w", "shards": 2})
            warm.register_yet("w", extended_yet)
            delta = warm.submit({"kind": "run", "program": "w", "shards": 2})
        assert delta.result_cache["status"] == "append"
        with RiskService(config) as cold_service:
            cold_service.register_program("w", tiny_workload.program)
            cold_service.register_yet("w", extended_yet)
            cold = cold_service.submit({"kind": "run", "program": "w", "shards": 2})
        np.testing.assert_array_equal(delta.result.ylt.losses, cold.result.ylt.losses)

    def test_disk_tier_survives_service_restart(self, tiny_workload, tmp_path):
        config = EngineConfig(backend="vectorized")
        with RiskService(config, result_cache_dir=tmp_path) as first:
            first.register_workload("w", tiny_workload)
            cold = first.submit({"kind": "run", "program": "w"})
            assert cold.result_cache["status"] == "miss"

        service, calls = counting_service(config, result_cache_dir=tmp_path)
        with service:
            service.register_workload("w", tiny_workload)
            warm = service.submit({"kind": "run", "program": "w"})
            assert warm.result_cache["status"] == "exact"
            assert calls == []  # served from disk, no kernel pass
            np.testing.assert_array_equal(
                warm.result.ylt.losses, cold.result.ylt.losses
            )

    def test_quotes_ride_the_cached_result(self, tiny_workload):
        with RiskService(
            EngineConfig(backend="vectorized"), result_cache=True
        ) as service:
            service.register_workload("w", tiny_workload)
            cold = service.submit({"kind": "run", "program": "w", "quote": True})
            warm = service.submit({"kind": "run", "program": "w", "quote": True})
        assert warm.quotes and len(warm.quotes) == len(cold.quotes)
        assert warm.quotes[0].total_premium == cold.quotes[0].total_premium
