"""Integration tests for the asyncio concurrent serving front end.

The claims pinned here:

* M pipelined clients x K requests each get answers bit-identical to
  serial submission (ids echoed, every request answered exactly once);
* admission control rejects the overflow with a well-formed
  ``{"error": {"type": "Overloaded"}}`` line and keeps serving;
* the HTTP shim answers ``GET /stats`` and ``POST /submit`` on the same
  port as the NDJSON protocol;
* a graceful drain answers everything in flight and, together with
  ``RiskService.close()``, leaves /dev/shm clean;
* the registry lock serializes preset workload generation under
  concurrent submits (no lost or duplicated generation).
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import EngineConfig
from repro.service import RiskService
from repro.service.server import Overloaded, RiskServer, ServeClient, ServerThread


def _service(tiny_workload, **kwargs) -> RiskService:
    service = RiskService(EngineConfig(backend="vectorized"), **kwargs)
    service.register_workload("w", tiny_workload)
    return service


def _shm_entries() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


class TestPipelinedServing:
    def test_pipelined_clients_bit_identical_to_serial(self, tiny_workload):
        """M clients x K pipelined requests == serial submission, bit for bit."""
        documents = [
            {"kind": "run", "program": "w", "quote": True},
            {"kind": "run", "program": "w", "shards": 2},
            {"kind": "run_many", "program": "w", "variants": 2},
        ]
        with _service(tiny_workload) as serial_service:
            serial = [serial_service.submit(dict(doc)).to_dict() for doc in documents]

        n_clients, rounds = 4, 2
        with _service(tiny_workload) as service:
            with ServerThread(service, max_inflight=4, queue_depth=64) as handle:
                host, port = handle.server.host, handle.server.port

                def drive(client_index: int) -> list:
                    with ServeClient(host, port) as client:
                        sent = []
                        for round_index in range(rounds):
                            for doc_index, doc in enumerate(documents):
                                request_id = f"c{client_index}-r{round_index}-d{doc_index}"
                                client.send({**doc, "id": request_id})
                                sent.append((request_id, doc_index))
                        answers = {}
                        for _ in sent:
                            answer = client.recv()
                            answers[answer["id"]] = answer
                        return [(answers[rid], doc_index) for rid, doc_index in sent]

                with ThreadPoolExecutor(max_workers=n_clients) as pool:
                    per_client = list(pool.map(drive, range(n_clients)))

        for client_answers in per_client:
            assert len(client_answers) == rounds * len(documents)
            for answer, doc_index in client_answers:
                expected = serial[doc_index]
                assert "error" not in answer
                assert answer["kind"] == expected["kind"]
                # Bit-identity: the metric floats must match exactly.
                for got, want in zip(answer["results"], expected["results"]):
                    assert got["portfolio_aal"] == want["portfolio_aal"]
                    assert got["n_layers"] == want["n_layers"]
                    assert got["n_trials"] == want["n_trials"]
                for got, want in zip(answer["quotes"], expected["quotes"]):
                    assert got["premium"] == want["premium"]
                    assert got["expected_loss"] == want["expected_loss"]

    def test_concurrent_cold_misses_build_one_plan(self, tiny_workload):
        """Racing first requests share one lowered plan (per-key build locks)."""
        n_clients = 6
        with _service(tiny_workload) as service:
            with ServerThread(service, max_inflight=n_clients) as handle:
                host, port = handle.server.host, handle.server.port
                barrier = threading.Barrier(n_clients)

                def race(_: int) -> dict:
                    with ServeClient(host, port) as client:
                        barrier.wait()
                        return client.request({"kind": "run", "program": "w"})

                with ThreadPoolExecutor(max_workers=n_clients) as pool:
                    answers = list(pool.map(race, range(n_clients)))
            aals = {answer["results"][0]["portfolio_aal"] for answer in answers}
            assert len(aals) == 1
            assert service.cache_stats().entries == 1

    def test_control_ops_and_id_echo(self, tiny_workload):
        with _service(tiny_workload) as service:
            with ServerThread(service) as handle:
                with ServeClient(handle.server.host, handle.server.port) as client:
                    assert client.request({"op": "ping", "id": 9}) == {
                        "ok": True,
                        "id": 9,
                    }
                    client.request({"kind": "run", "program": "w", "id": "x"})
                    stats = client.request({"op": "stats"})
                    assert stats["stats"]["served"] == 1
                    assert stats["stats"]["p99_seconds"] >= stats["stats"]["p50_seconds"] >= 0
                    assert stats["max_inflight"] == handle.server.max_inflight
                    unknown = client.request({"op": "warp", "id": 3})
                    assert unknown["error"]["field"] == "op"
                    assert unknown["id"] == 3

    def test_malformed_and_invalid_lines_answer_errors(self, tiny_workload):
        with _service(tiny_workload) as service:
            with ServerThread(service) as handle:
                with ServeClient(handle.server.host, handle.server.port) as client:
                    client._file.write(b"{not json\n")
                    client._file.flush()
                    bad_json = client.recv()
                    assert bad_json["error"]["type"] == "JSONDecodeError"
                    bad_schema = client.request({"kind": "run", "program": "nope", "id": 1})
                    assert bad_schema["error"]["type"] == "RequestValidationError"
                    assert bad_schema["id"] == 1
                    # The connection is still serving after both errors.
                    ok = client.request({"kind": "run", "program": "w"})
                    assert ok["kind"] == "run"
            assert service is not None


class TestAdmissionControl:
    def test_overload_rejections_well_formed(self, tiny_workload):
        with _service(tiny_workload) as service:
            inner = service.engine.run_plan

            def slow_run_plan(plan):
                time.sleep(0.4)
                return inner(plan)

            service.engine.run_plan = slow_run_plan
            with ServerThread(service, max_inflight=1, queue_depth=0) as handle:
                with ServeClient(handle.server.host, handle.server.port) as client:
                    n_requests = 5
                    for i in range(n_requests):
                        client.send({"kind": "run", "program": "w", "id": i})
                    answers = [client.recv() for _ in range(n_requests)]
                    served = [a for a in answers if "error" not in a]
                    rejected = [a for a in answers if "error" in a]
                    assert served and rejected
                    assert len(served) + len(rejected) == n_requests
                    for reject in rejected:
                        assert reject["error"]["type"] == "Overloaded"
                        assert "id" in reject  # echoed so pipelines can match
                    # After the burst drains, the server admits again.
                    again = client.request({"kind": "run", "program": "w", "id": "later"})
                    assert "error" not in again
                    stats = client.request({"op": "stats"})["stats"]
                    assert stats["rejected"] == len(rejected)
                    assert stats["served"] == len(served) + 1

    def test_overloaded_is_the_wire_type(self):
        from repro.service.response import error_payload

        payload = error_payload(Overloaded("queue full"))
        assert payload == {"error": {"message": "queue full", "type": "Overloaded"}}


class TestHttpShim:
    def test_stats_and_submit(self, tiny_workload):
        import urllib.request

        with _service(tiny_workload) as service:
            with ServerThread(service) as handle:
                base = f"http://{handle.server.host}:{handle.server.port}"
                body = json.dumps({"kind": "run", "program": "w", "id": "h"}).encode()
                with urllib.request.urlopen(
                    urllib.request.Request(f"{base}/submit", data=body, method="POST")
                ) as http_response:
                    answer = json.loads(http_response.read())
                assert answer["kind"] == "run" and answer["id"] == "h"
                with urllib.request.urlopen(f"{base}/stats") as http_response:
                    stats = json.loads(http_response.read())
                assert stats["stats"]["served"] == 1

    def test_unknown_route_404(self, tiny_workload):
        import urllib.error
        import urllib.request

        with _service(tiny_workload) as service:
            with ServerThread(service) as handle:
                base = f"http://{handle.server.host}:{handle.server.port}"
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(f"{base}/nope")
                assert excinfo.value.code == 404


class TestGracefulDrain:
    def test_drain_answers_inflight_and_disconnects(self, tiny_workload):
        with _service(tiny_workload) as service:
            inner = service.engine.run_plan

            def slow_run_plan(plan):
                time.sleep(0.3)
                return inner(plan)

            service.engine.run_plan = slow_run_plan
            handle = ServerThread(service, max_inflight=2).start()
            client = ServeClient(handle.server.host, handle.server.port)
            try:
                client.send({"kind": "run", "program": "w", "id": "inflight"})
                time.sleep(0.05)  # let the server admit it
                handle.server.request_shutdown()
                answer = client.recv()
                assert answer["id"] == "inflight" and "error" not in answer
                # The drained server then disconnects us.
                with pytest.raises(ConnectionError):
                    client.recv()
            finally:
                client.close()
                handle.stop()

    def test_drain_rejects_new_requests(self, tiny_workload):
        with _service(tiny_workload) as service:
            handle = ServerThread(service).start()
            client = ServeClient(handle.server.host, handle.server.port)
            try:
                client.request({"kind": "run", "program": "w"})
                handle.server.request_shutdown()
                # A line racing the drain is either rejected (Overloaded)
                # or never answered (EOF) — it must not hang.
                try:
                    client.send({"kind": "run", "program": "w", "id": "late"})
                    answer = client.recv()
                    assert answer["error"]["type"] == "Overloaded"
                except (ConnectionError, BrokenPipeError, OSError):
                    pass
            finally:
                client.close()
                handle.stop()

    def test_drain_leaves_dev_shm_clean(self, tiny_workload):
        """Shared-memory serving: after drain + close, no leaked segments."""
        before = _shm_entries()
        config = EngineConfig(backend="multicore", n_workers=2, shared_memory="on")
        service = RiskService(config)
        service.register_workload("w", tiny_workload)
        with service:
            with ServerThread(service, max_inflight=2) as handle:
                with ServeClient(handle.server.host, handle.server.port) as client:
                    for i in range(3):
                        answer = client.request({"kind": "run", "program": "w", "id": i})
                        assert "error" not in answer
        leaked = _shm_entries() - before
        assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"


class TestRegistryConcurrency:
    def test_preset_generation_neither_lost_nor_duplicated(self, monkeypatch):
        """N threads x mixed preset seeds: one generation per (name, seed)."""
        from repro.workloads import generator as generator_module

        counts: dict = {}
        count_lock = threading.Lock()
        original_generate = generator_module.WorkloadGenerator.generate

        def counting_generate(self):
            with count_lock:
                counts[self.spec.seed] = counts.get(self.spec.seed, 0) + 1
            time.sleep(0.02)  # widen the race window the lock must close
            return original_generate(self)

        monkeypatch.setattr(
            generator_module.WorkloadGenerator, "generate", counting_generate
        )

        seeds = [101, 102, 103, 104]
        n_threads, rounds = 6, 3
        with RiskService(EngineConfig(backend="vectorized")) as service:

            def drive(thread_index: int) -> list:
                responses = []
                for round_index in range(rounds):
                    seed = seeds[(thread_index + round_index) % len(seeds)]
                    responses.append(
                        service.submit({"kind": "run", "program": "tiny", "seed": seed})
                    )
                return responses

            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                all_responses = [r for rs in pool.map(drive, range(n_threads)) for r in rs]

        assert len(all_responses) == n_threads * rounds
        assert all(response.results for response in all_responses)
        # Exactly one generation per distinct (preset, seed) — nothing lost
        # (every seed generated), nothing duplicated (no seed generated twice).
        assert counts == {seed: 1 for seed in seeds}

    def test_concurrent_register_and_submit(self, tiny_workload):
        """Registering under new names while serving never corrupts lookups."""
        with _service(tiny_workload) as service:
            stop = threading.Event()
            errors: list = []

            def register_loop() -> None:
                i = 0
                while not stop.is_set():
                    service.register_workload(f"w{i % 5}", tiny_workload)
                    i += 1

            writer = threading.Thread(target=register_loop, daemon=True)
            writer.start()
            try:
                with ThreadPoolExecutor(max_workers=4) as pool:
                    def drive(_: int):
                        try:
                            return service.submit({"kind": "run", "program": "w"})
                        except Exception as exc:  # noqa: BLE001
                            errors.append(exc)
                            return None

                    results = list(pool.map(drive, range(16)))
            finally:
                stop.set()
                writer.join(timeout=5)
            assert not errors
            assert all(r is not None and r.results for r in results)
