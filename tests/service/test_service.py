"""Tests for the RiskService: dispatch, caching, warm-path identity, shm."""

from pathlib import Path

import numpy as np
import pytest

from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.financial.terms import LayerTerms
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.service import (
    AnalysisRequest,
    RequestValidationError,
    RiskService,
)

SHM_DIR = Path("/dev/shm")


def _shm_entries() -> set:
    """Names of the POSIX shared-memory segments currently alive."""
    if not SHM_DIR.exists():  # pragma: no cover - non-Linux fallback
        return set()
    return {p.name for p in SHM_DIR.iterdir() if p.name.startswith("psm_")}


@pytest.fixture()
def service(tiny_workload):
    with RiskService(EngineConfig()) as svc:
        svc.register_workload("tiny", tiny_workload)
        yield svc


class TestDispatch:
    def test_run_result_matches_engine(self, service, tiny_workload):
        response = service.submit({"kind": "run", "program": "tiny"})
        direct = AggregateRiskEngine(EngineConfig()).run(
            tiny_workload.program, tiny_workload.yet
        )
        np.testing.assert_array_equal(response.result.ylt.losses, direct.ylt.losses)
        assert response.kind == "run"
        assert response.backend == "vectorized"
        assert set(response.timings) >= {"lower", "execute", "total"}

    def test_accepts_request_dict_json_and_object(self, service):
        request = AnalysisRequest(kind="run", program="tiny")
        by_object = service.submit(request)
        by_dict = service.submit({"kind": "run", "program": "tiny"})
        by_json = service.submit('{"kind": "run", "program": "tiny"}')
        for response in (by_dict, by_json):
            np.testing.assert_array_equal(
                response.result.ylt.losses, by_object.result.ylt.losses
            )

    def test_run_many_variants_match_engine_run_many(self, service, tiny_workload):
        from repro.service.service import candidate_variants

        response = service.submit(
            {"kind": "run_many", "program": "tiny", "variants": 3}
        )
        assert len(response.results) == 3 == len(response.quotes)
        variants = candidate_variants(tiny_workload.program, 3)
        direct = AggregateRiskEngine(EngineConfig()).run_many(
            variants, tiny_workload.yet
        )
        for got, want in zip(response.results, direct):
            np.testing.assert_array_equal(got.ylt.losses, want.ylt.losses)

    def test_run_many_explicit_names(self, service, tiny_workload):
        service.register_program("other", tiny_workload.program)
        response = service.submit(
            {"kind": "run_many", "programs": ["tiny", "other"], "yet": "tiny"}
        )
        assert len(response.results) == 2
        np.testing.assert_array_equal(
            response.results[0].ylt.losses, response.results[1].ylt.losses
        )

    def test_run_stacked_matches_engine(self, service, tiny_workload):
        program = tiny_workload.program
        stack = np.stack(
            [layer.loss_matrix().combined_net_losses() for layer in program.layers]
        )
        terms = [layer.terms for layer in program.layers]
        service.register_stack("rows", stack, terms)
        response = service.submit(
            {"kind": "run_stacked", "stack": "rows", "yet": "tiny"}
        )
        direct = AggregateRiskEngine(EngineConfig()).run_stacked(
            stack, terms, tiny_workload.yet
        )
        np.testing.assert_array_equal(response.result.ylt.losses, direct.ylt.losses)

    def test_sweep_matches_run_many_quotes(self, service):
        swept = service.submit(
            {"kind": "sweep", "program": "tiny", "variants": 4, "max_rows_per_block": 4}
        )
        batched = service.submit(
            {"kind": "run_many", "program": "tiny", "variants": 4}
        )
        assert [q.summary() for q in swept.quotes] == [
            q.summary() for q in batched.quotes
        ]
        assert len(swept.details["blocks"]) == 2

    def test_uncertainty_bands_and_quote(self, service):
        response = service.submit(
            {"kind": "uncertainty", "program": "tiny", "replications": 4, "seed": 5}
        )
        assert "aal" in response.bands
        assert response.quotes[0].has_uncertainty
        repeat = service.submit(
            {"kind": "uncertainty", "program": "tiny", "replications": 4, "seed": 5}
        )
        np.testing.assert_array_equal(
            response.bands["aal"].values, repeat.bands["aal"].values
        )

    def test_preset_fallback_without_registration(self):
        with RiskService(EngineConfig()) as svc:
            response = svc.submit({"kind": "run", "program": "tiny"})
            assert response.result.ylt.n_layers == 2

    def test_quote_flag_off(self, service):
        response = service.submit(
            {"kind": "run", "program": "tiny", "quote": False}
        )
        assert response.quotes == ()

    def test_sweep_quote_flag_off_skips_pricing(self, service, monkeypatch):
        import repro.portfolio.sweep as sweep_module

        def exploding_price(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pricing must be skipped when quote=false")

        monkeypatch.setattr(sweep_module, "price_program", exploding_price)
        response = service.submit(
            {"kind": "sweep", "program": "tiny", "variants": 3, "quote": False}
        )
        assert response.quotes == ()
        assert len(response.results) == 3

    def test_preset_workload_memo_bounded(self):
        with RiskService(EngineConfig()) as svc:
            for seed in range(12):
                svc.submit({"kind": "run", "program": "tiny", "seed": seed})
            assert len(svc._preset_workloads) <= svc._max_preset_workloads

    def test_tags_echoed(self, service):
        response = service.submit(
            {"kind": "run", "program": "tiny", "tags": {"ticket": "RISK-17"}}
        )
        assert response.to_dict()["tags"] == {"ticket": "RISK-17"}

    def test_response_to_dict_json_compatible(self, service):
        import json

        response = service.submit({"kind": "run", "program": "tiny"})
        json.dumps(response.to_dict())


class TestRegistryErrors:
    def test_unknown_program(self, service):
        with pytest.raises(RequestValidationError, match="unknown program"):
            service.submit({"kind": "run", "program": "nope"})

    def test_unknown_stack(self, service):
        with pytest.raises(RequestValidationError, match="unknown stack"):
            service.submit({"kind": "run_stacked", "stack": "nope", "yet": "tiny"})

    def test_unknown_yet(self, service):
        with pytest.raises(RequestValidationError, match="unknown YET"):
            service.submit({"kind": "run", "program": "tiny", "yet": "nope"})

    def test_program_without_companion_yet(self, service, tiny_workload):
        service.register_program("orphan", tiny_workload.program)
        with pytest.raises(RequestValidationError, match="names no YET"):
            service.submit({"kind": "run", "program": "orphan"})


class TestPlanCacheBehaviour:
    def test_cold_then_warm(self, service):
        cold = service.submit({"kind": "run", "program": "tiny"})
        warm = service.submit({"kind": "run", "program": "tiny"})
        assert cold.cache.hit is False
        assert warm.cache.hit is True
        assert service.cache_stats().hits >= 1

    def test_program_content_change_invalidates(self, service, tiny_workload):
        service.submit({"kind": "run", "program": "tiny"})
        reshaped = ReinsuranceProgram(
            [
                layer.with_terms(LayerTerms(occurrence_retention=99_999.0))
                for layer in tiny_workload.program.layers
            ],
            name=tiny_workload.program.name,
        )
        service.register_program("tiny", reshaped)
        response = service.submit({"kind": "run", "program": "tiny"})
        assert response.cache.hit is False

    def test_content_addressing_across_objects(self, service, tiny_workload):
        """A rebuilt program with identical content hits the warm plan."""
        service.submit({"kind": "run", "program": "tiny"})
        rebuilt = ReinsuranceProgram(
            [
                Layer(layer.elts, layer.terms, name=layer.name)
                for layer in tiny_workload.program.layers
            ],
            name=tiny_workload.program.name,
        )
        service.register_program("tiny", rebuilt)
        response = service.submit({"kind": "run", "program": "tiny"})
        assert response.cache.hit is True

    def test_config_change_means_different_key(self, tiny_workload):
        with RiskService(EngineConfig()) as first:
            first.register_workload("tiny", tiny_workload)
            first.submit({"kind": "run", "program": "tiny"})
            key_a = first.submit({"kind": "run", "program": "tiny"}).cache.key
        with RiskService(EngineConfig(chunk_events=4096)) as second:
            second.register_workload("tiny", tiny_workload)
            response = second.submit({"kind": "run", "program": "tiny"})
            assert response.cache.hit is False
            assert response.cache.key == key_a  # key prefix is the program digest

    def test_dedupe_flag_is_part_of_the_key(self, service):
        service.submit({"kind": "run_many", "program": "tiny", "variants": 2})
        flipped = service.submit(
            {"kind": "run_many", "program": "tiny", "variants": 2, "dedupe": False}
        )
        assert flipped.cache.hit is False

    def test_sweep_warm_second_pass(self, service):
        service.submit(
            {"kind": "sweep", "program": "tiny", "variants": 4, "max_rows_per_block": 4}
        )
        warm = service.submit(
            {"kind": "sweep", "program": "tiny", "variants": 4, "max_rows_per_block": 4}
        )
        assert warm.cache.hit is True
        assert warm.cache.hits == 2  # one lookup per block

    def test_uncertainty_expected_plan_warms(self, service):
        cold = service.submit(
            {"kind": "uncertainty", "program": "tiny", "replications": 3, "seed": 1}
        )
        warm = service.submit(
            {"kind": "uncertainty", "program": "tiny", "replications": 3, "seed": 1}
        )
        assert cold.cache.hit is False
        assert warm.cache.hit is True


class TestWarmVsColdIdentity:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_warm_request_bit_identical_to_cold(self, tiny_workload, backend):
        """The cache may change latency, never a single output bit."""
        config = EngineConfig(
            backend=backend,
            n_workers=2 if backend == "multicore" else 1,
        )
        with RiskService(config) as svc:
            svc.register_workload("tiny", tiny_workload)
            cold = svc.submit({"kind": "run", "program": "tiny"})
            warm = svc.submit({"kind": "run", "program": "tiny"})
            assert cold.cache.hit is False and warm.cache.hit is True
            assert np.array_equal(
                cold.result.ylt.losses, warm.result.ylt.losses
            )
            cold_max = cold.result.ylt.max_occurrence_losses
            warm_max = warm.result.ylt.max_occurrence_losses
            assert np.array_equal(cold_max, warm_max)

        # A brand-new cold service reproduces both exactly.
        with RiskService(config) as fresh:
            fresh.register_workload("tiny", tiny_workload)
            again = fresh.submit({"kind": "run", "program": "tiny"})
            assert np.array_equal(
                again.result.ylt.losses, cold.result.ylt.losses
            )


class TestSharedWorkspaceReuse:
    def test_workspace_reused_and_shm_clean(self, tiny_workload):
        before = _shm_entries()
        config = EngineConfig(backend="multicore", n_workers=2, shared_memory="on")
        with RiskService(config) as svc:
            svc.register_workload("tiny", tiny_workload)
            cold = svc.submit({"kind": "run", "program": "tiny"})
            warm = svc.submit({"kind": "run", "program": "tiny"})
            assert cold.result.details["shared_memory"] is True
            assert cold.result.details["workspace_reused"] is False
            assert warm.result.details["workspace_reused"] is True
            np.testing.assert_array_equal(
                cold.result.ylt.losses, warm.result.ylt.losses
            )
            # The retained workspace is alive between requests...
            assert len(_shm_entries()) >= len(before)
        # ...and close() (via the context manager) frees every segment.
        assert _shm_entries() - before == set()

    def test_release_workspaces_idempotent(self, tiny_workload):
        config = EngineConfig(backend="multicore", n_workers=2, shared_memory="on")
        svc = RiskService(config)
        svc.register_workload("tiny", tiny_workload)
        svc.submit({"kind": "run", "program": "tiny"})
        svc.close()
        svc.close()

    def test_cache_eviction_releases_workspace(self, tiny_workload):
        """Evicted plans are garbage collected and their segments unlinked."""
        import gc

        before = _shm_entries()
        config = EngineConfig(backend="multicore", n_workers=2, shared_memory="on")
        with RiskService(config, cache_size=1) as svc:
            svc.register_workload("tiny", tiny_workload)
            svc.submit({"kind": "run", "program": "tiny"})
            # A different workload evicts the first plan from the size-1 cache.
            svc.submit({"kind": "run_many", "program": "tiny", "variants": 2})
            gc.collect()
            leftover = _shm_entries() - before
            # Only the second plan's workspace may remain.
            assert len(leftover) <= 3  # stack + event_ids + trial_offsets
        assert _shm_entries() - before == set()


class TestShardedRequests:
    """The request-level `shards` field: exact results, distinct cache keys."""

    @pytest.mark.parametrize("kind", ("run", "run_many", "sweep"))
    def test_sharded_request_bit_identical_to_unsharded(self, service, kind):
        base = {"kind": kind, "program": "tiny"}
        if kind in ("run_many", "sweep"):
            base["variants"] = 3
        unsharded = service.submit(dict(base))
        sharded = service.submit(dict(base, shards=4))
        assert len(sharded.results) == len(unsharded.results)
        for lhs, rhs in zip(sharded.results, unsharded.results):
            np.testing.assert_array_equal(lhs.ylt.losses, rhs.ylt.losses)

    def test_shards_participate_in_the_cache_key(self, service):
        service.submit({"kind": "run", "program": "tiny"})
        sharded = service.submit({"kind": "run", "program": "tiny", "shards": 2})
        assert sharded.cache.hit is False  # same program, different shard plan
        warm = service.submit({"kind": "run", "program": "tiny", "shards": 2})
        assert warm.cache.hit is True

    def test_sharded_run_records_shard_count(self, service):
        response = service.submit({"kind": "run", "program": "tiny", "shards": 4})
        assert response.result.details["trial_shards"] == 4

    def test_sharded_multicore_request(self, tiny_workload):
        with RiskService(EngineConfig(backend="multicore", n_workers=2)) as svc:
            svc.register_workload("tiny", tiny_workload)
            sharded = svc.submit({"kind": "run", "program": "tiny", "shards": 3})
        direct = AggregateRiskEngine(EngineConfig()).run(
            tiny_workload.program, tiny_workload.yet
        )
        np.testing.assert_array_equal(sharded.result.ylt.losses, direct.ylt.losses)

    def test_negative_shards_rejected(self, service):
        with pytest.raises(RequestValidationError, match="shards"):
            service.submit({"kind": "run", "program": "tiny", "shards": -1})

    def test_sharded_uncertainty_bands_bit_identical(self, service):
        base = {
            "kind": "uncertainty",
            "program": "tiny",
            "replications": 4,
            "seed": 11,
        }
        unsharded = service.submit(dict(base))
        sharded = service.submit(dict(base, shards=3))
        assert sharded.result.details["trial_shards"] == 3
        for name, band in unsharded.bands.items():
            np.testing.assert_array_equal(sharded.bands[name].values, band.values)
        np.testing.assert_array_equal(
            sharded.result.ylt.losses, unsharded.result.ylt.losses
        )
