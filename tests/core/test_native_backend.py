"""Golden tests for the native C backend against the vectorized reference.

The backend's defining contracts, checked per configuration axis:

* ``dtype="float64"`` — bit-identical to the vectorized backend (the C
  kernel replicates NumPy's pairwise-summation evaluation order), across
  fused/per-layer, shortcut on/off and trial-sharded execution;
* ``dtype="float32"`` — bit-identical to the float64 pipeline run on the
  f32-quantised stack, and within quantisation-level tolerance of the
  full-precision run.

Everything here needs the compiled tier; the NumPy fallback path is covered
in ``test_native_build.py``.
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.native.build import find_compiler
from repro.core.plan import PlanBuilder

pytestmark = pytest.mark.skipif(
    find_compiler() is None, reason="no C compiler: covered by the fallback tests"
)


@pytest.fixture(scope="module")
def plan(tiny_workload):
    return PlanBuilder.from_program(tiny_workload.program, tiny_workload.yet)


def _run(backend: str, plan, **overrides):
    return AggregateRiskEngine(EngineConfig(backend=backend, **overrides)).run_plan(plan)


class TestFloat64BitIdentity:
    @pytest.mark.parametrize("trial_shards", [1, 3])
    @pytest.mark.parametrize("fused_layers", [True, False])
    @pytest.mark.parametrize("use_aggregate_shortcut", [True, False])
    def test_matches_vectorized_bitwise(
        self, plan, fused_layers, use_aggregate_shortcut, trial_shards
    ):
        overrides = dict(
            fused_layers=fused_layers,
            use_aggregate_shortcut=use_aggregate_shortcut,
            trial_shards=trial_shards,
        )
        reference = _run("vectorized", plan, **overrides)
        native = _run("native", plan, **overrides)
        assert native.backend == "native"
        np.testing.assert_array_equal(reference.ylt.losses, native.ylt.losses)
        np.testing.assert_array_equal(
            reference.ylt.max_occurrence_losses, native.ylt.max_occurrence_losses
        )
        # The C kernel only covers the fused shortcut path; the ablation
        # configurations must run the shared NumPy kernels by construction.
        assert native.details["native_kernel"] is (fused_layers and use_aggregate_shortcut)

    def test_record_max_occurrence_off(self, plan):
        native = _run("native", plan, record_max_occurrence=False)
        assert native.details["native_kernel"] is True
        assert native.ylt.max_occurrence_losses is None
        reference = _run("vectorized", plan, record_max_occurrence=False)
        np.testing.assert_array_equal(reference.ylt.losses, native.ylt.losses)

    def test_details_report_kernel_provenance(self, plan):
        native = _run("native", plan)
        details = native.details
        assert details["native_kernel"] is True
        assert details["dtype"] == "float64"
        assert details["native_threads"] >= 1
        assert isinstance(details["native_openmp"], bool)
        assert "native_fallback" not in details

    def test_native_threads_pinned(self, plan):
        pinned = _run("native", plan, native_threads=1)
        assert pinned.details["native_threads"] == 1
        free = _run("native", plan)
        np.testing.assert_array_equal(pinned.ylt.losses, free.ylt.losses)


class TestFloat32:
    @pytest.fixture(scope="class")
    def quantised_reference(self, plan, tiny_workload):
        quantised = plan.stack().astype(np.float32).astype(np.float64)
        oracle_plan = PlanBuilder.from_stack(
            quantised, plan.terms, tiny_workload.yet, row_names=plan.row_names
        )
        return AggregateRiskEngine(EngineConfig(backend="vectorized")).run_plan(oracle_plan)

    @pytest.mark.parametrize("trial_shards", [1, 3])
    def test_bit_identical_to_quantised_pipeline(self, plan, quantised_reference, trial_shards):
        f32 = _run("native", plan, dtype="float32", trial_shards=trial_shards)
        assert f32.details["native_kernel"] is True
        assert f32.details["dtype"] == "float32"
        np.testing.assert_array_equal(quantised_reference.ylt.losses, f32.ylt.losses)
        np.testing.assert_array_equal(
            quantised_reference.ylt.max_occurrence_losses, f32.ylt.max_occurrence_losses
        )

    @pytest.mark.parametrize("trial_shards", [1, 3])
    @pytest.mark.parametrize("fused_layers", [True, False])
    def test_within_quantisation_tolerance_of_float64(self, plan, fused_layers, trial_shards):
        # Stack quantisation is ~6e-8 relative per value; the occurrence /
        # aggregate clips amplify it for trials sitting at a term threshold,
        # hence rtol=1e-3 rather than a few ulp.
        full = _run("native", plan, fused_layers=fused_layers, trial_shards=trial_shards)
        f32 = _run(
            "native", plan, dtype="float32", fused_layers=fused_layers, trial_shards=trial_shards
        )
        np.testing.assert_allclose(
            full.ylt.losses, f32.ylt.losses, rtol=1e-3, atol=1e-6
        )

    def test_per_layer_ablation_stays_float64(self, plan):
        # dtype only affects the fused stacked path; the per-layer reference
        # ablation always computes in float64 and reports so.
        result = _run("native", plan, dtype="float32", fused_layers=False)
        assert result.details["dtype"] == "float64"
        reference = _run("vectorized", plan, fused_layers=False)
        np.testing.assert_array_equal(reference.ylt.losses, result.ylt.losses)
