"""Tests for the secondary-uncertainty extension (repro.uncertainty)."""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.kernels import replication_portfolio_losses
from repro.financial.terms import FinancialTerms, LayerTerms, LayerTermsVectors
from repro.uncertainty.analysis import ReplicationSummary, SecondaryUncertaintyAnalysis, UncertainLayer
from repro.uncertainty.table import LossDistributionFamily, UncertainEventLossTable
from repro.yet.table import YearEventTable


def make_uelt(cv: float = 0.5, family=LossDistributionFamily.GAMMA) -> UncertainEventLossTable:
    return UncertainEventLossTable(
        event_ids=np.array([1, 3, 5]),
        mean_losses=np.array([100.0, 200.0, 0.0]),
        cv_losses=np.array([cv, cv, cv]),
        catalog_size=10,
        family=family,
        terms=FinancialTerms(),
        name="uelt",
    )


class TestUncertainEventLossTable:
    def test_expected_elt_preserves_means(self):
        elt = make_uelt().expected_elt()
        np.testing.assert_allclose(elt.losses, [100.0, 200.0, 0.0])
        assert elt.catalog_size == 10

    def test_sample_deterministic_with_seed(self):
        uelt = make_uelt()
        a = uelt.sample_elt(rng=1).losses
        b = uelt.sample_elt(rng=1).losses
        np.testing.assert_allclose(a, b)

    def test_sample_zero_cv_returns_mean(self):
        uelt = make_uelt(cv=0.0)
        np.testing.assert_allclose(uelt.sample_elt(rng=2).losses, [100.0, 200.0, 0.0])

    def test_sample_zero_mean_stays_zero(self):
        sampled = make_uelt(cv=1.0).sample_elt(rng=3)
        assert sampled.losses[2] == 0.0

    @pytest.mark.parametrize("family", list(LossDistributionFamily))
    def test_sample_mean_converges_to_expected(self, family):
        uelt = make_uelt(cv=0.8, family=family)
        samples = np.array([uelt.sample_elt(rng=seed).losses[0] for seed in range(3000)])
        assert samples.mean() == pytest.approx(100.0, rel=0.05)

    def test_from_elt_roundtrip(self):
        elt = make_uelt().expected_elt()
        wrapped = UncertainEventLossTable.from_elt(elt, cv=0.3)
        np.testing.assert_allclose(wrapped.mean_losses, elt.losses)
        np.testing.assert_allclose(wrapped.cv_losses, 0.3)

    @pytest.mark.parametrize("kwargs", [
        dict(mean_losses=np.array([1.0])),                      # length mismatch
        dict(event_ids=np.array([1, 1, 2])),                    # duplicates
        dict(cv_losses=np.array([-0.1, 0.1, 0.1])),             # negative cv
        dict(catalog_size=0),
    ])
    def test_invalid_inputs(self, kwargs):
        base = dict(
            event_ids=np.array([1, 3, 5]),
            mean_losses=np.array([1.0, 2.0, 3.0]),
            cv_losses=np.array([0.1, 0.1, 0.1]),
            catalog_size=10,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            UncertainEventLossTable(**base)


class TestReplicationSummary:
    def test_from_values(self):
        summary = ReplicationSummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.low <= summary.mean <= summary.high

    def test_relative_spread(self):
        summary = ReplicationSummary.from_values([10.0, 20.0])
        assert summary.relative_spread() > 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplicationSummary.from_values([])


class TestSecondaryUncertaintyAnalysis:
    @pytest.fixture()
    def setup(self):
        uelts = [make_uelt(cv=0.6), UncertainEventLossTable(
            event_ids=np.array([2, 4]),
            mean_losses=np.array([50.0, 80.0]),
            cv_losses=np.array([0.6, 0.6]),
            catalog_size=10,
            name="uelt2",
        )]
        layer = UncertainLayer(uelts, LayerTerms(aggregate_limit=1e6), name="u-layer")
        yet = YearEventTable.from_trials([[1, 2], [3], [4, 5, 1]], catalog_size=10)
        return layer, yet

    def test_metric_summaries_returned(self, setup):
        layer, yet = setup
        analysis = SecondaryUncertaintyAnalysis([layer])
        summaries = analysis.run(yet, n_replications=20, rng=5,
                                 return_periods=(2.0,), tvar_levels=(0.5,))
        assert set(summaries) == {"aal", "pml_2", "tvar_0.5"}
        assert summaries["aal"].std > 0.0

    def test_replicated_mean_close_to_expected(self, setup):
        layer, yet = setup
        analysis = SecondaryUncertaintyAnalysis([layer])
        summaries = analysis.run(yet, n_replications=200, rng=6, return_periods=(2.0,))
        expected = analysis.expected_metrics(yet, return_periods=(2.0,))
        assert summaries["aal"].mean == pytest.approx(expected["aal"], rel=0.1)

    def test_zero_cv_collapses_to_deterministic(self):
        uelt = make_uelt(cv=0.0)
        layer = UncertainLayer([uelt], LayerTerms(), name="det")
        yet = YearEventTable.from_trials([[1, 3], [5]], catalog_size=10)
        analysis = SecondaryUncertaintyAnalysis([layer])
        summaries = analysis.run(yet, n_replications=5, rng=7, return_periods=(2.0,))
        assert summaries["aal"].std == pytest.approx(0.0, abs=1e-9)

    def test_deterministic_given_seed(self, setup):
        layer, yet = setup
        analysis = SecondaryUncertaintyAnalysis([layer])
        a = analysis.run(yet, n_replications=10, rng=9)["aal"].values
        b = analysis.run(yet, n_replications=10, rng=9)["aal"].values
        np.testing.assert_allclose(a, b)

    def test_config_respected(self, setup):
        layer, yet = setup
        analysis = SecondaryUncertaintyAnalysis(
            [layer], config=EngineConfig(backend="chunked", record_max_occurrence=False)
        )
        summaries = analysis.run(yet, n_replications=5, rng=11, return_periods=(2.0,))
        assert "aal" in summaries

    def test_invalid_arguments(self, setup):
        layer, yet = setup
        with pytest.raises(ValueError):
            SecondaryUncertaintyAnalysis([])
        with pytest.raises(ValueError):
            SecondaryUncertaintyAnalysis([layer]).run(yet, n_replications=0)


class TestBatchedAnalysis:
    @pytest.fixture()
    def setup(self):
        uelts = [
            UncertainEventLossTable(
                event_ids=np.array([1, 3, 5]),
                mean_losses=np.array([100.0, 200.0, 40.0]),
                cv_losses=np.array([0.5, 0.5, 0.5]),
                catalog_size=10,
                terms=FinancialTerms(retention=5.0, share=0.9),
                name="uelt",
            ),
            UncertainEventLossTable(
                event_ids=np.array([2, 4]),
                mean_losses=np.array([50.0, 80.0]),
                cv_losses=np.array([0.6, 0.6]),
                catalog_size=10,
                name="uelt2",
            ),
        ]
        layer = UncertainLayer(uelts, LayerTerms(aggregate_limit=1e6), name="u-layer")
        yet = YearEventTable.from_trials([[1, 2], [3], [4, 5, 1], [2]], catalog_size=10)
        return layer, yet

    def test_batched_deterministic_given_seed(self, setup):
        layer, yet = setup
        analysis = SecondaryUncertaintyAnalysis([layer])
        a = analysis.run_batched(yet, 10, rng=9)["aal"].values
        b = analysis.run_batched(yet, 10, rng=9)["aal"].values
        np.testing.assert_array_equal(a, b)

    def test_batched_metric_names(self, setup):
        layer, yet = setup
        analysis = SecondaryUncertaintyAnalysis([layer])
        summaries = analysis.run_batched(yet, 6, rng=5, return_periods=(2.0,),
                                         tvar_levels=(0.5,))
        assert set(summaries) == {"aal", "pml_2", "tvar_0.5"}
        assert all(s.values.size == 6 for s in summaries.values())

    def test_zero_cv_collapses_to_deterministic(self):
        uelt = UncertainEventLossTable(
            np.array([1, 3]), np.array([100.0, 200.0]), np.array([0.0, 0.0]),
            catalog_size=10,
        )
        layer = UncertainLayer([uelt], LayerTerms(), name="det")
        yet = YearEventTable.from_trials([[1, 3], [3]], catalog_size=10)
        analysis = SecondaryUncertaintyAnalysis([layer])
        summaries = analysis.run_batched(yet, 5, rng=7, return_periods=(2.0,))
        assert summaries["aal"].std == pytest.approx(0.0, abs=1e-9)

    def test_quote_carries_bands(self, setup):
        layer, yet = setup
        analysis = SecondaryUncertaintyAnalysis([layer])
        quote = analysis.quote(yet, 8, rng=3, return_periods=(2.0,))
        assert quote.has_uncertainty
        band = quote.band("aal")
        assert band.values.size == 8
        assert "aal_band=" in quote.summary()

    def test_plain_quote_band_access_raises(self, setup):
        layer, yet = setup
        from repro.core.engine import AggregateRiskEngine
        from repro.portfolio.pricing import price_program

        program = SecondaryUncertaintyAnalysis([layer]).expected_program()
        result = AggregateRiskEngine().run(program, yet)
        quote = price_program(program, result.ylt)
        assert not quote.has_uncertainty
        with pytest.raises(KeyError):
            quote.band("aal")

    def test_sample_net_row_scratch_validation(self, setup):
        layer, _ = setup
        with pytest.raises(ValueError, match="scratch shape"):
            layer.sample_net_row(rng=1, scratch=np.zeros((1, 10)))

    def test_sample_net_row_reuses_scratch(self, setup):
        layer, _ = setup
        scratch = np.zeros(layer.catalog_size)
        a = layer.sample_net_row(rng=4, scratch=scratch).copy()
        b = layer.sample_net_row(rng=4, scratch=scratch)
        np.testing.assert_array_equal(a, b)

    def test_sample_net_row_matches_dense_layer(self, setup):
        layer, _ = setup
        direct = layer.sample_net_row(rng=6)
        rebuilt = layer.sample_layer(rng=6).loss_matrix().combined_net_losses()
        np.testing.assert_array_equal(direct, rebuilt)


class TestReplicationKernelHelpers:
    def test_replication_portfolio_losses(self):
        losses = np.arange(12, dtype=np.float64).reshape(6, 2)
        portfolio = replication_portfolio_losses(losses, n_layers=3)
        assert portfolio.shape == (2, 2)
        np.testing.assert_array_equal(portfolio[0], losses[0:3].sum(axis=0))
        np.testing.assert_array_equal(portfolio[1], losses[3:6].sum(axis=0))

    def test_replication_portfolio_losses_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            replication_portfolio_losses(np.zeros(4), 2)
        with pytest.raises(ValueError, match="positive"):
            replication_portfolio_losses(np.zeros((4, 2)), 0)
        with pytest.raises(ValueError, match="divide"):
            replication_portfolio_losses(np.zeros((5, 2)), 2)

    def test_terms_vectors_tile(self):
        vectors = LayerTermsVectors.from_terms([
            LayerTerms(occurrence_retention=1.0, aggregate_limit=10.0),
            LayerTerms(occurrence_retention=2.0),
        ])
        tiled = vectors.tile(3)
        assert tiled.n_layers == 6
        np.testing.assert_array_equal(
            tiled.occurrence_retentions, [1.0, 2.0, 1.0, 2.0, 1.0, 2.0]
        )
        np.testing.assert_array_equal(
            tiled.aggregate_limits, [10.0, np.inf] * 3
        )
        with pytest.raises(ValueError):
            vectors.tile(0)
