"""Tests for the secondary-uncertainty extension (repro.uncertainty)."""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.financial.terms import FinancialTerms, LayerTerms
from repro.uncertainty.analysis import ReplicationSummary, SecondaryUncertaintyAnalysis, UncertainLayer
from repro.uncertainty.table import LossDistributionFamily, UncertainEventLossTable
from repro.yet.table import YearEventTable


def make_uelt(cv: float = 0.5, family=LossDistributionFamily.GAMMA) -> UncertainEventLossTable:
    return UncertainEventLossTable(
        event_ids=np.array([1, 3, 5]),
        mean_losses=np.array([100.0, 200.0, 0.0]),
        cv_losses=np.array([cv, cv, cv]),
        catalog_size=10,
        family=family,
        terms=FinancialTerms(),
        name="uelt",
    )


class TestUncertainEventLossTable:
    def test_expected_elt_preserves_means(self):
        elt = make_uelt().expected_elt()
        np.testing.assert_allclose(elt.losses, [100.0, 200.0, 0.0])
        assert elt.catalog_size == 10

    def test_sample_deterministic_with_seed(self):
        uelt = make_uelt()
        a = uelt.sample_elt(rng=1).losses
        b = uelt.sample_elt(rng=1).losses
        np.testing.assert_allclose(a, b)

    def test_sample_zero_cv_returns_mean(self):
        uelt = make_uelt(cv=0.0)
        np.testing.assert_allclose(uelt.sample_elt(rng=2).losses, [100.0, 200.0, 0.0])

    def test_sample_zero_mean_stays_zero(self):
        sampled = make_uelt(cv=1.0).sample_elt(rng=3)
        assert sampled.losses[2] == 0.0

    @pytest.mark.parametrize("family", list(LossDistributionFamily))
    def test_sample_mean_converges_to_expected(self, family):
        uelt = make_uelt(cv=0.8, family=family)
        samples = np.array([uelt.sample_elt(rng=seed).losses[0] for seed in range(3000)])
        assert samples.mean() == pytest.approx(100.0, rel=0.05)

    def test_from_elt_roundtrip(self):
        elt = make_uelt().expected_elt()
        wrapped = UncertainEventLossTable.from_elt(elt, cv=0.3)
        np.testing.assert_allclose(wrapped.mean_losses, elt.losses)
        np.testing.assert_allclose(wrapped.cv_losses, 0.3)

    @pytest.mark.parametrize("kwargs", [
        dict(mean_losses=np.array([1.0])),                      # length mismatch
        dict(event_ids=np.array([1, 1, 2])),                    # duplicates
        dict(cv_losses=np.array([-0.1, 0.1, 0.1])),             # negative cv
        dict(catalog_size=0),
    ])
    def test_invalid_inputs(self, kwargs):
        base = dict(
            event_ids=np.array([1, 3, 5]),
            mean_losses=np.array([1.0, 2.0, 3.0]),
            cv_losses=np.array([0.1, 0.1, 0.1]),
            catalog_size=10,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            UncertainEventLossTable(**base)


class TestReplicationSummary:
    def test_from_values(self):
        summary = ReplicationSummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.low <= summary.mean <= summary.high

    def test_relative_spread(self):
        summary = ReplicationSummary.from_values([10.0, 20.0])
        assert summary.relative_spread() > 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplicationSummary.from_values([])


class TestSecondaryUncertaintyAnalysis:
    @pytest.fixture()
    def setup(self):
        uelts = [make_uelt(cv=0.6), UncertainEventLossTable(
            event_ids=np.array([2, 4]),
            mean_losses=np.array([50.0, 80.0]),
            cv_losses=np.array([0.6, 0.6]),
            catalog_size=10,
            name="uelt2",
        )]
        layer = UncertainLayer(uelts, LayerTerms(aggregate_limit=1e6), name="u-layer")
        yet = YearEventTable.from_trials([[1, 2], [3], [4, 5, 1]], catalog_size=10)
        return layer, yet

    def test_metric_summaries_returned(self, setup):
        layer, yet = setup
        analysis = SecondaryUncertaintyAnalysis([layer])
        summaries = analysis.run(yet, n_replications=20, rng=5,
                                 return_periods=(2.0,), tvar_levels=(0.5,))
        assert set(summaries) == {"aal", "pml_2", "tvar_0.5"}
        assert summaries["aal"].std > 0.0

    def test_replicated_mean_close_to_expected(self, setup):
        layer, yet = setup
        analysis = SecondaryUncertaintyAnalysis([layer])
        summaries = analysis.run(yet, n_replications=200, rng=6, return_periods=(2.0,))
        expected = analysis.expected_metrics(yet, return_periods=(2.0,))
        assert summaries["aal"].mean == pytest.approx(expected["aal"], rel=0.1)

    def test_zero_cv_collapses_to_deterministic(self):
        uelt = make_uelt(cv=0.0)
        layer = UncertainLayer([uelt], LayerTerms(), name="det")
        yet = YearEventTable.from_trials([[1, 3], [5]], catalog_size=10)
        analysis = SecondaryUncertaintyAnalysis([layer])
        summaries = analysis.run(yet, n_replications=5, rng=7, return_periods=(2.0,))
        assert summaries["aal"].std == pytest.approx(0.0, abs=1e-9)

    def test_deterministic_given_seed(self, setup):
        layer, yet = setup
        analysis = SecondaryUncertaintyAnalysis([layer])
        a = analysis.run(yet, n_replications=10, rng=9)["aal"].values
        b = analysis.run(yet, n_replications=10, rng=9)["aal"].values
        np.testing.assert_allclose(a, b)

    def test_config_respected(self, setup):
        layer, yet = setup
        analysis = SecondaryUncertaintyAnalysis(
            [layer], config=EngineConfig(backend="chunked", record_max_occurrence=False)
        )
        summaries = analysis.run(yet, n_replications=5, rng=11, return_periods=(2.0,))
        assert "aal" in summaries

    def test_invalid_arguments(self, setup):
        layer, yet = setup
        with pytest.raises(ValueError):
            SecondaryUncertaintyAnalysis([])
        with pytest.raises(ValueError):
            SecondaryUncertaintyAnalysis([layer]).run(yet, n_replications=0)
