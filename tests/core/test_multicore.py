"""Tests for the multicore (multi-process) backend."""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.multicore import MulticoreEngine
from repro.parallel.scheduling import SchedulingPolicy
from repro.core.plan import PlanBuilder


def _run(engine, program, yet):
    """Drive a backend through its plan scheduler (the only entry point)."""
    return engine.run_plan(PlanBuilder.from_program(program, yet))


class TestMulticoreEngine:
    def test_single_worker_matches_reference(self, tiny_workload, tiny_reference_result):
        engine = MulticoreEngine(EngineConfig(backend="multicore", n_workers=1))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        np.testing.assert_allclose(
            result.ylt.losses, tiny_reference_result.ylt.losses, rtol=1e-9, atol=1e-6
        )

    def test_two_workers_match_reference(self, tiny_workload, tiny_reference_result):
        engine = MulticoreEngine(EngineConfig(backend="multicore", n_workers=2))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        np.testing.assert_allclose(
            result.ylt.losses, tiny_reference_result.ylt.losses, rtol=1e-9, atol=1e-6
        )

    def test_dynamic_scheduling_matches_reference(self, tiny_workload, tiny_reference_result):
        engine = MulticoreEngine(EngineConfig(
            backend="multicore",
            n_workers=2,
            scheduling=SchedulingPolicy.DYNAMIC,
            oversubscription=4,
        ))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        np.testing.assert_allclose(
            result.ylt.losses, tiny_reference_result.ylt.losses, rtol=1e-9, atol=1e-6
        )

    def test_worker_count_independent_results(self, tiny_workload):
        results = []
        for workers in (1, 2, 3):
            engine = MulticoreEngine(EngineConfig(backend="multicore", n_workers=workers))
            results.append(_run(engine, tiny_workload.program, tiny_workload.yet).ylt.losses)
        np.testing.assert_allclose(results[0], results[1], rtol=1e-12)
        np.testing.assert_allclose(results[0], results[2], rtol=1e-12)

    def test_max_occurrence_recorded(self, tiny_workload, tiny_reference_result):
        engine = MulticoreEngine(EngineConfig(backend="multicore", n_workers=2))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        np.testing.assert_allclose(
            result.ylt.max_occurrence_losses,
            tiny_reference_result.ylt.max_occurrence_losses,
            rtol=1e-9,
            atol=1e-6,
        )

    def test_details_report_schedule(self, tiny_workload):
        engine = MulticoreEngine(EngineConfig(
            backend="multicore", n_workers=2,
            scheduling=SchedulingPolicy.DYNAMIC, oversubscription=3,
        ))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        assert result.details["n_workers"] == 2
        assert result.details["oversubscription"] == 3
        assert result.details["n_blocks"] >= 2

    def test_single_layer_accepted(self, tiny_workload):
        engine = MulticoreEngine(EngineConfig(backend="multicore", n_workers=2))
        result = _run(engine, tiny_workload.program[0], tiny_workload.yet)
        assert result.ylt.n_layers == 1
