"""Tests for the simulated-GPU backend."""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.gpu_sim import GPUSimulatedEngine
from repro.parallel.device import WorkloadShape
from repro.core.plan import PlanBuilder


def _run(engine, program, yet):
    """Drive a backend through its plan scheduler (the only entry point)."""
    return engine.run_plan(PlanBuilder.from_program(program, yet))


class TestGPUSimulatedEngine:
    def test_matches_sequential_reference(self, tiny_workload, tiny_reference_result):
        engine = GPUSimulatedEngine(EngineConfig(backend="gpu", threads_per_block=16))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        np.testing.assert_allclose(
            result.ylt.losses, tiny_reference_result.ylt.losses, rtol=1e-9, atol=1e-6
        )

    def test_basic_kernel_matches_reference(self, tiny_workload, tiny_reference_result):
        engine = GPUSimulatedEngine(EngineConfig(backend="gpu", gpu_optimised=False,
                                                 threads_per_block=16))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        np.testing.assert_allclose(
            result.ylt.losses, tiny_reference_result.ylt.losses, rtol=1e-9, atol=1e-6
        )

    def test_threads_per_block_does_not_change_results(self, tiny_workload):
        results = []
        for threads in (8, 16, 64):
            engine = GPUSimulatedEngine(EngineConfig(backend="gpu", threads_per_block=threads))
            results.append(_run(engine, tiny_workload.program, tiny_workload.yet).ylt.losses)
        np.testing.assert_allclose(results[0], results[1], rtol=1e-12)
        np.testing.assert_allclose(results[0], results[2], rtol=1e-12)

    def test_chunk_size_does_not_change_results(self, tiny_workload):
        results = []
        for chunk in (1, 4, 12):
            engine = GPUSimulatedEngine(EngineConfig(backend="gpu", gpu_chunk_size=chunk,
                                                     threads_per_block=16))
            results.append(_run(engine, tiny_workload.program, tiny_workload.yet).ylt.losses)
        np.testing.assert_allclose(results[0], results[1], rtol=1e-12)
        np.testing.assert_allclose(results[0], results[2], rtol=1e-12)

    def test_modeled_estimates_attached(self, tiny_workload):
        engine = GPUSimulatedEngine(EngineConfig(backend="gpu", threads_per_block=16))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        assert len(result.modeled) == tiny_workload.program.n_layers
        assert result.modeled_seconds == pytest.approx(
            sum(est.seconds for est in result.modeled)
        )
        assert result.modeled_seconds > 0

    def test_details_describe_launch(self, tiny_workload):
        engine = GPUSimulatedEngine(EngineConfig(backend="gpu", threads_per_block=32,
                                                 gpu_chunk_size=8, gpu_optimised=True))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        assert result.details["threads_per_block"] == 32
        assert result.details["chunk_size"] == 8
        assert result.details["optimised"] is True

    def test_estimate_only(self):
        engine = GPUSimulatedEngine(EngineConfig(backend="gpu"))
        shape = WorkloadShape(100_000, 1000.0, 15, 1)
        estimate = engine.estimate_only(shape)
        assert estimate.seconds > 0

    def test_optimised_faster_than_basic_in_model(self, tiny_workload):
        shape = WorkloadShape(1_000_000, 1000.0, 15, 1)
        optimised = GPUSimulatedEngine(
            EngineConfig(backend="gpu", gpu_optimised=True, gpu_chunk_size=4, threads_per_block=64)
        ).estimate_only(shape)
        basic = GPUSimulatedEngine(
            EngineConfig(backend="gpu", gpu_optimised=False, threads_per_block=256)
        ).estimate_only(shape)
        assert basic.seconds > optimised.seconds
