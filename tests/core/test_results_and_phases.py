"""Tests for repro.core.results and repro.core.phases."""

import numpy as np
import pytest

from repro.core.phases import ALL_PHASES, empty_breakdown, new_phase_timer
from repro.core.results import EngineResult
from repro.parallel.device import WorkloadShape
from repro.utils.timing import TimingBreakdown
from repro.ylt.table import YearLossTable


def make_result(wall_seconds: float = 2.0) -> EngineResult:
    ylt = YearLossTable(np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]), ["a", "b"])
    return EngineResult(
        ylt=ylt,
        backend="vectorized",
        wall_seconds=wall_seconds,
        workload_shape=WorkloadShape(n_trials=3, events_per_trial=10.0, n_elts=2, n_layers=2),
        phase_breakdown=TimingBreakdown({"elt_lookup": 1.5, "layer_terms": 0.5}),
    )


class TestEngineResult:
    def test_shape_accessors(self):
        result = make_result()
        assert result.n_trials == 3
        assert result.n_layers == 2

    def test_trials_per_second(self):
        result = make_result(wall_seconds=2.0)
        assert result.trials_per_second == pytest.approx(3 * 2 / 2.0)

    def test_trials_per_second_zero_time(self):
        assert make_result(wall_seconds=0.0).trials_per_second == float("inf")

    def test_summary_mentions_backend_and_counts(self):
        text = make_result().summary()
        assert "backend=vectorized" in text
        assert "trials=3" in text

    def test_summary_includes_modeled_when_present(self):
        result = EngineResult(
            ylt=YearLossTable(np.zeros((1, 2))),
            backend="gpu",
            wall_seconds=1.0,
            workload_shape=WorkloadShape(2, 1.0, 1, 1),
            modeled_seconds=0.5,
        )
        assert "modeled=0.500s" in result.summary()


class TestPhases:
    def test_all_phases_order(self):
        assert ALL_PHASES == ("event_fetch", "elt_lookup", "financial_terms", "layer_terms")

    def test_empty_breakdown_has_all_phases(self):
        breakdown = empty_breakdown()
        assert set(breakdown.seconds) == set(ALL_PHASES)
        assert breakdown.total == 0.0

    def test_new_phase_timer_respects_enabled_flag(self):
        enabled = new_phase_timer(True)
        disabled = new_phase_timer(False)
        with enabled.phase("x"):
            pass
        with disabled.phase("x"):
            pass
        assert enabled.count("x") == 1
        assert disabled.count("x") == 0


class TestPartialResult:
    def test_shape_validation(self):
        from repro.core.results import PartialResult
        from repro.parallel.partitioner import TrialRange

        with pytest.raises(ValueError, match="2-D"):
            PartialResult(TrialRange(0, 3), np.zeros(3))
        with pytest.raises(ValueError, match="cover 2 trials"):
            PartialResult(TrialRange(0, 3), np.zeros((2, 2)))
        with pytest.raises(ValueError, match="max_occurrence shape"):
            PartialResult(TrialRange(0, 3), np.zeros((2, 3)), np.zeros((2, 2)))

    def test_from_result_reads_recorded_trial_range(self):
        from repro.core.results import PartialResult

        result = make_result()
        enriched = result.with_extra_details(plan={"trial_range": [4, 7]})
        partial = PartialResult.from_result(enriched)
        assert (partial.trials.start, partial.trials.stop) == (4, 7)
        np.testing.assert_array_equal(partial.losses, result.ylt.losses)

    def test_from_result_without_range_requires_explicit_trials(self):
        from repro.core.results import PartialResult

        with pytest.raises(ValueError, match="trial range"):
            PartialResult.from_result(make_result())


class TestResultAccumulator:
    def _partial(self, start, stop, value, n_rows=2):
        from repro.core.results import PartialResult
        from repro.parallel.partitioner import TrialRange

        size = stop - start
        return PartialResult(
            TrialRange(start, stop),
            np.full((n_rows, size), float(value)),
            np.full((n_rows, size), float(value) / 2),
        )

    def test_rejects_overlap_and_out_of_domain(self):
        from repro.core.results import ResultAccumulator

        acc = ResultAccumulator(2, 10)
        acc.add(self._partial(0, 4, 1.0))
        with pytest.raises(ValueError, match="overlaps"):
            acc.add(self._partial(3, 6, 2.0))
        with pytest.raises(ValueError, match="outside"):
            acc.add(self._partial(8, 12, 2.0))
        with pytest.raises(ValueError, match="rows"):
            acc.add(self._partial(4, 6, 2.0, n_rows=3))

    def test_overlap_error_names_endpoints_and_provenance(self):
        # A fleet diagnosing a double shard assignment needs the conflicting
        # endpoints AND where each block came from, in one message.
        from repro.core.results import PartialResult, ResultAccumulator
        from repro.parallel.partitioner import TrialRange

        acc = ResultAccumulator(1, 10)
        acc.add(
            PartialResult(
                TrialRange(0, 4), np.zeros((1, 4)), details={"worker": "fleet-a"}
            )
        )
        with pytest.raises(
            ValueError,
            match=r"\[2, 6\) \(worker=fleet-b\) overlaps accumulated range "
            r"\[0, 4\) \(worker=fleet-a\)",
        ):
            acc.add(
                PartialResult(
                    TrialRange(2, 6), np.zeros((1, 4)), details={"worker": "fleet-b"}
                )
            )

    def test_domain_error_names_provenance(self):
        from repro.core.results import PartialResult, ResultAccumulator
        from repro.parallel.partitioner import TrialRange

        acc = ResultAccumulator(1, 10)
        with pytest.raises(ValueError, match=r"\(backend=native\) outside"):
            acc.add(
                PartialResult(
                    TrialRange(8, 12), np.zeros((1, 4)), details={"backend": "native"}
                )
            )

    def test_unattributed_partials_say_so(self):
        from repro.core.results import PartialResult, ResultAccumulator
        from repro.parallel.partitioner import TrialRange

        acc = ResultAccumulator(1, 10)
        acc.add(PartialResult(TrialRange(0, 4), np.zeros((1, 4))))
        with pytest.raises(ValueError, match=r"\(unattributed\) overlaps"):
            acc.add(PartialResult(TrialRange(0, 4), np.zeros((1, 4))))

    def test_incomplete_assembly_names_missing_ranges(self):
        from repro.core.results import ResultAccumulator

        acc = ResultAccumulator(2, 10)
        acc.add(self._partial(2, 5, 1.0))
        assert not acc.is_complete
        gaps = acc.missing_ranges()
        assert [(g.start, g.stop) for g in gaps] == [(0, 2), (5, 10)]
        with pytest.raises(ValueError, match=r"missing trial ranges: \[0, 2\)"):
            acc.year_losses()

    def test_out_of_order_assembly_places_columns(self):
        from repro.core.results import ResultAccumulator

        acc = ResultAccumulator(1, 6, row_names=["layer"])
        acc.add(self._partial(4, 6, 3.0, n_rows=1))
        acc.add(self._partial(0, 2, 1.0, n_rows=1))
        acc.add(self._partial(2, 4, 2.0, n_rows=1))
        np.testing.assert_array_equal(
            acc.year_losses()[0], [1.0, 1.0, 2.0, 2.0, 3.0, 3.0]
        )
        ylt = acc.to_ylt()
        assert ylt.layer_names == ("layer",)
        np.testing.assert_array_equal(
            ylt.max_occurrence_losses[0], [0.5, 0.5, 1.0, 1.0, 1.5, 1.5]
        )

    def test_single_block_fast_path_returns_the_block(self):
        from repro.core.results import ResultAccumulator

        acc = ResultAccumulator(2, 5)
        partial = self._partial(0, 5, 1.0)
        acc.add(partial)
        assert acc.year_losses() is partial.losses

    def test_merge_requires_same_domain(self):
        from repro.core.results import ResultAccumulator

        acc = ResultAccumulator(2, 10)
        with pytest.raises(ValueError, match="same rows and trial domain"):
            acc.merge(ResultAccumulator(2, 8))

    def test_missing_max_occurrence_collapses_to_none(self):
        from repro.core.results import PartialResult, ResultAccumulator
        from repro.parallel.partitioner import TrialRange

        acc = ResultAccumulator(1, 4)
        acc.add(PartialResult(TrialRange(0, 2), np.ones((1, 2)), np.ones((1, 2))))
        acc.add(PartialResult(TrialRange(2, 4), np.ones((1, 2)), None))
        assert acc.max_occurrence_losses() is None

    def test_finalize_builds_engine_result(self):
        from repro.core.results import ResultAccumulator

        acc = ResultAccumulator(2, 6)
        acc.add(self._partial(0, 3, 1.0))
        acc.add(self._partial(3, 6, 2.0))
        result = acc.finalize("vectorized", wall_seconds=1.25)
        assert isinstance(result, EngineResult)
        assert result.backend == "vectorized"
        assert result.wall_seconds == 1.25
        assert result.details["merged_shards"]["n_shards"] == 2
        assert result.n_trials == 6


class TestMetricState:
    def test_merge_matches_whole_computation(self):
        from repro.core.results import MetricState

        rng = np.random.default_rng(7)
        losses = rng.uniform(0.0, 100.0, size=(3, 20))
        whole = MetricState.from_losses(losses)
        merged = MetricState.from_losses(losses[:, :8]).merge(
            MetricState.from_losses(losses[:, 8:])
        )
        assert merged.n_trials == whole.n_trials == 20
        np.testing.assert_allclose(merged.mean(), losses.mean(axis=1), rtol=1e-12)
        np.testing.assert_array_equal(merged.max_loss, losses.max(axis=1))
        np.testing.assert_allclose(
            merged.std(), losses.std(axis=1, ddof=1), rtol=1e-9
        )

    def test_empty_state_guards(self):
        from repro.core.results import MetricState

        state = MetricState.from_losses(np.zeros((2, 0)))
        assert state.n_trials == 0
        with pytest.raises(ValueError, match="no trials"):
            state.mean()
        with pytest.raises(ValueError, match="rows"):
            state.merge(MetricState.from_losses(np.zeros((3, 0))))
