"""Tests for repro.core.results and repro.core.phases."""

import numpy as np
import pytest

from repro.core.phases import ALL_PHASES, empty_breakdown, new_phase_timer
from repro.core.results import EngineResult
from repro.parallel.device import WorkloadShape
from repro.utils.timing import TimingBreakdown
from repro.ylt.table import YearLossTable


def make_result(wall_seconds: float = 2.0) -> EngineResult:
    ylt = YearLossTable(np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]), ["a", "b"])
    return EngineResult(
        ylt=ylt,
        backend="vectorized",
        wall_seconds=wall_seconds,
        workload_shape=WorkloadShape(n_trials=3, events_per_trial=10.0, n_elts=2, n_layers=2),
        phase_breakdown=TimingBreakdown({"elt_lookup": 1.5, "layer_terms": 0.5}),
    )


class TestEngineResult:
    def test_shape_accessors(self):
        result = make_result()
        assert result.n_trials == 3
        assert result.n_layers == 2

    def test_trials_per_second(self):
        result = make_result(wall_seconds=2.0)
        assert result.trials_per_second == pytest.approx(3 * 2 / 2.0)

    def test_trials_per_second_zero_time(self):
        assert make_result(wall_seconds=0.0).trials_per_second == float("inf")

    def test_summary_mentions_backend_and_counts(self):
        text = make_result().summary()
        assert "backend=vectorized" in text
        assert "trials=3" in text

    def test_summary_includes_modeled_when_present(self):
        result = EngineResult(
            ylt=YearLossTable(np.zeros((1, 2))),
            backend="gpu",
            wall_seconds=1.0,
            workload_shape=WorkloadShape(2, 1.0, 1, 1),
            modeled_seconds=0.5,
        )
        assert "modeled=0.500s" in result.summary()


class TestPhases:
    def test_all_phases_order(self):
        assert ALL_PHASES == ("event_fetch", "elt_lookup", "financial_terms", "layer_terms")

    def test_empty_breakdown_has_all_phases(self):
        breakdown = empty_breakdown()
        assert set(breakdown.seconds) == set(ALL_PHASES)
        assert breakdown.total == 0.0

    def test_new_phase_timer_respects_enabled_flag(self):
        enabled = new_phase_timer(True)
        disabled = new_phase_timer(False)
        with enabled.phase("x"):
            pass
        with disabled.phase("x"):
            pass
        assert enabled.count("x") == 1
        assert disabled.count("x") == 0
