"""Tests for the native kernel build layer (compile cache, discovery, probes).

These exercise the toolchain plumbing — compiler discovery honouring
``ARE_NATIVE_CC``, the content-hashed build cache rebuilding exactly when the
C source changes, and the never-raising :func:`native_status` probe backing
``are backends``.  The numerical contract of the compiled kernels themselves
is covered by ``test_native_backend.py`` and the golden conformance suites.
"""

import shutil
import warnings

import numpy as np
import pytest

from repro.core import native_backend
from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.native import build
from repro.core.native.build import (
    BASE_FLAGS,
    NativeBuildError,
    ensure_built,
    find_compiler,
    library_path,
    native_status,
    openmp_flags,
)
from repro.core.plan import PlanBuilder

requires_compiler = pytest.mark.skipif(
    find_compiler() is None, reason="no C compiler on PATH"
)


@pytest.fixture()
def no_compiler(monkeypatch):
    """Point compiler discovery at a name that cannot resolve."""
    monkeypatch.setenv(build.CC_ENV, "are-no-such-compiler")
    assert find_compiler() is None


class TestCompilerDiscovery:
    def test_override_that_does_not_resolve_reports_no_compiler(self, no_compiler):
        # An explicit ARE_NATIVE_CC must not silently fall back to cc/gcc.
        status = native_status()
        assert status["available"] is False
        assert build.CC_ENV in status["reason"]

    @requires_compiler
    def test_discovered_compiler_is_executable(self):
        cc = find_compiler()
        assert shutil.which(cc) == cc

    @requires_compiler
    def test_override_with_real_path_wins(self, monkeypatch):
        cc = find_compiler()
        monkeypatch.setenv(build.CC_ENV, cc)
        assert find_compiler() == cc


class TestBuildCache:
    @requires_compiler
    def test_source_edit_changes_cache_path_and_rebuilds(self, tmp_path, monkeypatch):
        monkeypatch.setenv(build.CACHE_ENV, str(tmp_path))
        source = tmp_path / "_kernels.c"
        shutil.copyfile(build.SOURCE_PATH, source)
        monkeypatch.setattr(build, "SOURCE_PATH", source)

        first = ensure_built()
        assert first.exists()
        assert first.parent == tmp_path

        # A fresh call with unchanged source is a cache hit, not a rebuild.
        stamp = first.stat().st_mtime_ns
        assert ensure_built() == first
        assert first.stat().st_mtime_ns == stamp

        # Touching the C source moves the content hash: the old library can
        # never be served for the new source.
        source.write_text(source.read_text() + "\n/* cache-buster */\n")
        second = ensure_built()
        assert second != first
        assert second.exists()

    @requires_compiler
    def test_flags_participate_in_the_signature(self, tmp_path, monkeypatch):
        monkeypatch.setenv(build.CACHE_ENV, str(tmp_path))
        cc = find_compiler()
        assert library_path(cc, BASE_FLAGS) != library_path(cc, BASE_FLAGS + ("-DX",))

    @requires_compiler
    def test_force_rebuild_replaces_the_cached_library(self, tmp_path, monkeypatch):
        monkeypatch.setenv(build.CACHE_ENV, str(tmp_path))
        first = ensure_built()
        stamp = first.stat().st_mtime_ns
        second = ensure_built(force=True)
        assert second == first
        assert second.stat().st_mtime_ns != stamp

    def test_missing_compiler_raises_build_error(self, no_compiler):
        with pytest.raises(NativeBuildError, match="fall back"):
            ensure_built()


class TestOpenMPProbe:
    @requires_compiler
    def test_probe_is_memoised_and_boolean(self):
        cc = find_compiler()
        flags = openmp_flags(cc)
        assert flags in ((), (build.OPENMP_FLAG,))
        assert openmp_flags(cc) == flags


class TestNativeStatus:
    def test_status_never_raises_without_compiler(self, no_compiler):
        status = native_status()
        assert status["available"] is False
        assert status["compiler"] is None
        assert status["cached_library"] is None

    @requires_compiler
    def test_status_reports_toolchain(self):
        status = native_status()
        assert status["available"] is True
        assert status["compiler"] == find_compiler()
        assert status["compiler_version"]
        assert isinstance(status["openmp"], bool)
        assert "cache_dir" in status


class TestFallbackEngine:
    def test_missing_compiler_falls_back_not_raises(self, no_compiler, monkeypatch, tiny_workload):
        monkeypatch.setattr(native_backend, "_fallback_warned", False)
        plan = PlanBuilder.from_program(tiny_workload.program, tiny_workload.yet)
        reference = AggregateRiskEngine(EngineConfig(backend="vectorized")).run_plan(plan)

        with pytest.warns(RuntimeWarning, match="vectorized NumPy path"):
            result = AggregateRiskEngine(EngineConfig(backend="native")).run_plan(plan)

        assert result.details["native_kernel"] is False
        assert result.details["native_fallback"] is True
        assert build.CC_ENV in result.details["native_fallback_reason"]
        np.testing.assert_array_equal(reference.ylt.losses, result.ylt.losses)
        np.testing.assert_array_equal(
            reference.ylt.max_occurrence_losses, result.ylt.max_occurrence_losses
        )

    def test_fallback_warns_only_once_per_process(self, no_compiler, monkeypatch, tiny_workload):
        monkeypatch.setattr(native_backend, "_fallback_warned", False)
        plan = PlanBuilder.from_program(tiny_workload.program, tiny_workload.yet)
        engine = AggregateRiskEngine(EngineConfig(backend="native"))
        with pytest.warns(RuntimeWarning):
            engine.run_plan(plan)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.run_plan(plan)  # second run must stay silent

    def test_fallback_float32_reproduces_native_bits(self, no_compiler, monkeypatch, tiny_workload):
        # A compiler-less machine running dtype="float32" gathers from the
        # same quantised stack the C tier would, so it reproduces its bits.
        monkeypatch.setattr(native_backend, "_fallback_warned", True)
        plan = PlanBuilder.from_program(tiny_workload.program, tiny_workload.yet)
        fallback = AggregateRiskEngine(
            EngineConfig(backend="native", dtype="float32")
        ).run_plan(plan)
        quantised = plan.stack().astype(np.float32).astype(np.float64)
        oracle = AggregateRiskEngine(EngineConfig(backend="vectorized")).run_plan(
            PlanBuilder.from_stack(
                quantised, plan.terms, tiny_workload.yet, row_names=plan.row_names
            )
        )
        assert fallback.details["native_fallback"] is True
        assert fallback.details["dtype"] == "float32"
        np.testing.assert_array_equal(oracle.ylt.losses, fallback.ylt.losses)
