"""Tests for the AggregateRiskEngine facade."""

import numpy as np
import pytest

from repro.core.chunked import ChunkedEngine
from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine, available_backends
from repro.core.gpu_sim import GPUSimulatedEngine
from repro.core.multicore import MulticoreEngine
from repro.core.native_backend import NativeEngine
from repro.core.sequential import SequentialEngine
from repro.core.vectorized import VectorizedEngine
from repro.ylt.table import YearLossTable


class TestFacade:
    def test_available_backends(self):
        assert set(available_backends()) == {
            "sequential", "vectorized", "chunked", "multicore", "gpu", "native",
        }

    @pytest.mark.parametrize("backend,backend_cls", [
        ("sequential", SequentialEngine),
        ("vectorized", VectorizedEngine),
        ("chunked", ChunkedEngine),
        ("multicore", MulticoreEngine),
        ("gpu", GPUSimulatedEngine),
        ("native", NativeEngine),
    ])
    def test_backend_selection(self, backend, backend_cls):
        engine = AggregateRiskEngine(EngineConfig(backend=backend))
        assert engine.backend_name == backend
        assert isinstance(engine._backend, backend_cls)

    def test_default_backend_vectorized(self):
        assert AggregateRiskEngine().backend_name == "vectorized"

    def test_run_returns_result(self, tiny_workload):
        result = AggregateRiskEngine().run(tiny_workload.program, tiny_workload.yet)
        assert result.ylt.n_trials == tiny_workload.yet.n_trials
        assert "backend=vectorized" in result.summary()

    def test_year_loss_table_shortcut(self, tiny_workload):
        ylt = AggregateRiskEngine().year_loss_table(tiny_workload.program, tiny_workload.yet)
        assert isinstance(ylt, YearLossTable)

    def test_trials_per_second_positive(self, tiny_workload):
        result = AggregateRiskEngine().run(tiny_workload.program, tiny_workload.yet)
        assert result.trials_per_second > 0


class TestCompareBackends:
    def test_agreeing_backends_pass(self, tiny_workload):
        results = AggregateRiskEngine.compare_backends(
            tiny_workload.program,
            tiny_workload.yet,
            backends=("sequential", "vectorized", "chunked", "gpu"),
        )
        assert set(results) == {"sequential", "vectorized", "chunked", "gpu"}

    def test_results_actually_agree(self, tiny_workload):
        results = AggregateRiskEngine.compare_backends(
            tiny_workload.program, tiny_workload.yet, backends=("sequential", "vectorized")
        )
        np.testing.assert_allclose(
            results["sequential"].ylt.losses, results["vectorized"].ylt.losses, rtol=1e-9
        )

    def test_custom_base_config(self, tiny_workload):
        results = AggregateRiskEngine.compare_backends(
            tiny_workload.program,
            tiny_workload.yet,
            backends=("vectorized", "chunked"),
            base_config=EngineConfig(record_max_occurrence=False),
        )
        assert results["vectorized"].ylt.max_occurrence_losses is None

    def test_disagreement_detected(self, tiny_workload, monkeypatch):
        # Force the chunked backend to produce corrupted results and make sure
        # the comparison catches it.
        from repro.core import chunked as chunked_module

        original_perlayer = chunked_module.layer_trial_losses_chunked
        original_batch = chunked_module.layer_trial_losses_batch

        def corrupted_perlayer(*args, **kwargs):
            year, occ = original_perlayer(*args, **kwargs)
            return year * 1.5, occ

        def corrupted_batch(*args, **kwargs):
            year, occ = original_batch(*args, **kwargs)
            return year * 1.5, occ

        monkeypatch.setattr(chunked_module, "layer_trial_losses_chunked", corrupted_perlayer)
        monkeypatch.setattr(chunked_module, "layer_trial_losses_batch", corrupted_batch)
        with pytest.raises(AssertionError, match="disagrees"):
            AggregateRiskEngine.compare_backends(
                tiny_workload.program, tiny_workload.yet, backends=("vectorized", "chunked")
            )


class TestRunMany:
    def test_single_program_matches_run(self, tiny_workload):
        engine = AggregateRiskEngine()
        batched = engine.run_many([tiny_workload.program], tiny_workload.yet)
        solo = engine.run(tiny_workload.program, tiny_workload.yet)
        assert len(batched) == 1
        np.testing.assert_array_equal(batched[0].ylt.losses, solo.ylt.losses)

    def test_accepts_bare_layer(self, tiny_workload):
        layer = tiny_workload.program.layers[0]
        results = AggregateRiskEngine().run_many([layer], tiny_workload.yet)
        assert results[0].ylt.n_layers == 1

    def test_empty_batch_rejected(self, tiny_workload):
        with pytest.raises(ValueError, match="at least one"):
            AggregateRiskEngine().run_many([], tiny_workload.yet)

    def test_batch_details_recorded(self, tiny_workload):
        program = tiny_workload.program
        results = AggregateRiskEngine().run_many([program, program], tiny_workload.yet)
        assert [r.details["batch"]["index"] for r in results] == [0, 1]
        assert all(
            r.details["batch"]["total_layers"] == 2 * program.n_layers for r in results
        )

    def test_run_many_on_sequential_backend(self, tiny_workload, tiny_reference_result):
        engine = AggregateRiskEngine(EngineConfig(backend="sequential"))
        results = engine.run_many([tiny_workload.program], tiny_workload.yet)
        np.testing.assert_allclose(
            results[0].ylt.losses, tiny_reference_result.ylt.losses, rtol=1e-9, atol=1e-6
        )


class TestFusedConfig:
    def test_fused_default_on(self):
        assert EngineConfig().fused_layers is True

    def test_details_report_fused_flag(self, tiny_workload):
        for fused in (True, False):
            result = AggregateRiskEngine(
                EngineConfig(backend="vectorized", fused_layers=fused)
            ).run(tiny_workload.program, tiny_workload.yet)
            assert result.details["fused_layers"] is fused
