"""Tests for the AggregateRiskEngine facade."""

import numpy as np
import pytest

from repro.core.chunked import ChunkedEngine
from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine, available_backends
from repro.core.gpu_sim import GPUSimulatedEngine
from repro.core.multicore import MulticoreEngine
from repro.core.sequential import SequentialEngine
from repro.core.vectorized import VectorizedEngine
from repro.ylt.table import YearLossTable


class TestFacade:
    def test_available_backends(self):
        assert set(available_backends()) == {"sequential", "vectorized", "chunked", "multicore", "gpu"}

    @pytest.mark.parametrize("backend,backend_cls", [
        ("sequential", SequentialEngine),
        ("vectorized", VectorizedEngine),
        ("chunked", ChunkedEngine),
        ("multicore", MulticoreEngine),
        ("gpu", GPUSimulatedEngine),
    ])
    def test_backend_selection(self, backend, backend_cls):
        engine = AggregateRiskEngine(EngineConfig(backend=backend))
        assert engine.backend_name == backend
        assert isinstance(engine._backend, backend_cls)

    def test_default_backend_vectorized(self):
        assert AggregateRiskEngine().backend_name == "vectorized"

    def test_run_returns_result(self, tiny_workload):
        result = AggregateRiskEngine().run(tiny_workload.program, tiny_workload.yet)
        assert result.ylt.n_trials == tiny_workload.yet.n_trials
        assert "backend=vectorized" in result.summary()

    def test_year_loss_table_shortcut(self, tiny_workload):
        ylt = AggregateRiskEngine().year_loss_table(tiny_workload.program, tiny_workload.yet)
        assert isinstance(ylt, YearLossTable)

    def test_trials_per_second_positive(self, tiny_workload):
        result = AggregateRiskEngine().run(tiny_workload.program, tiny_workload.yet)
        assert result.trials_per_second > 0


class TestCompareBackends:
    def test_agreeing_backends_pass(self, tiny_workload):
        results = AggregateRiskEngine.compare_backends(
            tiny_workload.program,
            tiny_workload.yet,
            backends=("sequential", "vectorized", "chunked", "gpu"),
        )
        assert set(results) == {"sequential", "vectorized", "chunked", "gpu"}

    def test_results_actually_agree(self, tiny_workload):
        results = AggregateRiskEngine.compare_backends(
            tiny_workload.program, tiny_workload.yet, backends=("sequential", "vectorized")
        )
        np.testing.assert_allclose(
            results["sequential"].ylt.losses, results["vectorized"].ylt.losses, rtol=1e-9
        )

    def test_custom_base_config(self, tiny_workload):
        results = AggregateRiskEngine.compare_backends(
            tiny_workload.program,
            tiny_workload.yet,
            backends=("vectorized", "chunked"),
            base_config=EngineConfig(record_max_occurrence=False),
        )
        assert results["vectorized"].ylt.max_occurrence_losses is None

    def test_disagreement_detected(self, tiny_workload, monkeypatch):
        # Force the chunked backend to produce corrupted results and make sure
        # the comparison catches it.
        from repro.core import chunked as chunked_module

        original = chunked_module.layer_trial_losses_chunked

        def corrupted(*args, **kwargs):
            year, occ = original(*args, **kwargs)
            return year * 1.5, occ

        monkeypatch.setattr(chunked_module, "layer_trial_losses_chunked", corrupted)
        with pytest.raises(AssertionError, match="disagrees"):
            AggregateRiskEngine.compare_backends(
                tiny_workload.program, tiny_workload.yet, backends=("vectorized", "chunked")
            )
