"""Tests for the sequential reference backend (hand-checked results)."""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.phases import ALL_PHASES
from repro.core.sequential import SequentialEngine, build_lookup
from repro.elt.direct_access import DirectAccessTable
from repro.elt.hashed_table import HashedEventLossTable
from repro.elt.sorted_table import SortedEventLossTable
from repro.elt.table import EventLossTable
from repro.financial.terms import FinancialTerms, LayerTerms
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.yet.table import YearEventTable

from tests.conftest import make_manual_layer
from repro.core.plan import PlanBuilder


def _run(engine, program, yet):
    """Drive a backend through its plan scheduler (the only entry point)."""
    return engine.run_plan(PlanBuilder.from_program(program, yet))


class TestBuildLookup:
    def test_representations(self):
        elt = EventLossTable(np.array([1]), np.array([2.0]), catalog_size=10)
        assert isinstance(build_lookup(elt, "direct"), DirectAccessTable)
        assert isinstance(build_lookup(elt, "sorted"), SortedEventLossTable)
        assert isinstance(build_lookup(elt, "hashed"), HashedEventLossTable)

    def test_unknown_representation(self):
        elt = EventLossTable(np.array([1]), np.array([2.0]), catalog_size=10)
        with pytest.raises(ValueError):
            build_lookup(elt, "btree")


class TestHandComputedResults:
    def test_passthrough_terms_sum_ground_up(self, manual_layer_and_yet):
        layer, yet = manual_layer_and_yet
        result = _run(SequentialEngine(EngineConfig(backend="sequential")), layer, yet)
        # Trial 0: events 1, 2 -> (100) + (200 + 50) = 350
        # Trial 1: event 4 -> 500
        # Trial 2: events 3, 2, 1 -> 300 + 250 + 100 = 650
        np.testing.assert_allclose(result.ylt.losses[0], [350.0, 500.0, 650.0])

    def test_occurrence_terms_hand_example(self):
        layer, yet = make_manual_layer()
        layer = layer.with_terms(LayerTerms(occurrence_retention=100.0, occurrence_limit=200.0))
        result = _run(SequentialEngine(), layer, yet)
        # Trial 0: occurrences 100, 250 -> net 0, 150 -> 150
        # Trial 1: occurrence 500 -> net 200
        # Trial 2: occurrences 300, 250, 100 -> net 200, 150, 0 -> 350
        np.testing.assert_allclose(result.ylt.losses[0], [150.0, 200.0, 350.0])

    def test_aggregate_terms_hand_example(self):
        layer, yet = make_manual_layer()
        layer = layer.with_terms(LayerTerms(aggregate_retention=100.0, aggregate_limit=400.0))
        result = _run(SequentialEngine(), layer, yet)
        # Ground-up trial totals: 350, 500, 650 -> net of AggR=100/AggL=400:
        # 250, 400, 400
        np.testing.assert_allclose(result.ylt.losses[0], [250.0, 400.0, 400.0])

    def test_elt_financial_terms_hand_example(self):
        elt_a = EventLossTable(np.array([1]), np.array([100.0]), catalog_size=10,
                               terms=FinancialTerms(retention=20.0, share=0.5))
        elt_b = EventLossTable(np.array([1]), np.array([60.0]), catalog_size=10,
                               terms=FinancialTerms(limit=50.0))
        layer = Layer([elt_a, elt_b], LayerTerms())
        yet = YearEventTable.from_trials([[1]], catalog_size=10)
        result = _run(SequentialEngine(), layer, yet)
        # ELT A: (100 - 20) * 0.5 = 40; ELT B: min(60, 50) = 50 -> 90.
        np.testing.assert_allclose(result.ylt.losses[0], [90.0])

    def test_max_occurrence_recorded(self, manual_layer_and_yet):
        layer, yet = manual_layer_and_yet
        engine = SequentialEngine(
            EngineConfig(backend="sequential", record_max_occurrence=True)
        )
        result = _run(engine, layer, yet)
        np.testing.assert_allclose(result.ylt.max_occurrence_losses[0], [250.0, 500.0, 300.0])

    def test_empty_trial_zero_loss(self):
        layer, _ = make_manual_layer()
        yet = YearEventTable.from_trials([[], [1]], catalog_size=100)
        result = _run(SequentialEngine(), layer, yet)
        assert result.ylt.losses[0, 0] == 0.0
        assert result.ylt.losses[0, 1] == pytest.approx(100.0)


class TestEngineBehaviour:
    def test_accepts_program_and_layer(self, manual_program):
        program, yet = manual_program
        result = _run(SequentialEngine(), program, yet)
        assert result.ylt.n_layers == 1
        assert result.ylt.layer_names == ("manual-layer",)

    def test_all_representations_agree(self, tiny_workload):
        results = {}
        for representation in ("direct", "sorted", "hashed"):
            engine = SequentialEngine(
                EngineConfig(backend="sequential", elt_representation=representation)
            )
            results[representation] = _run(engine, tiny_workload.program, tiny_workload.yet)
        np.testing.assert_allclose(
            results["direct"].ylt.losses, results["sorted"].ylt.losses, rtol=1e-12
        )
        np.testing.assert_allclose(
            results["direct"].ylt.losses, results["hashed"].ylt.losses, rtol=1e-12
        )

    def test_phase_breakdown_recorded(self, manual_program):
        program, yet = manual_program
        engine = SequentialEngine(EngineConfig(backend="sequential", record_phases=True))
        result = _run(engine, program, yet)
        assert result.phase_breakdown is not None
        assert set(result.phase_breakdown.seconds) == set(ALL_PHASES)

    def test_phase_breakdown_absent_by_default(self, manual_program):
        program, yet = manual_program
        result = _run(SequentialEngine(), program, yet)
        assert result.phase_breakdown is None

    def test_result_metadata(self, manual_program):
        program, yet = manual_program
        result = _run(SequentialEngine(), program, yet)
        assert result.backend == "sequential"
        assert result.n_trials == 3
        assert result.wall_seconds > 0
        assert result.workload_shape.n_trials == 3
