"""Tests for repro.core.projection (full-scale runtime projections)."""

import pytest

from repro.core.projection import CPUCostModel, project_summary
from repro.parallel.device import WorkloadShape

PAPER_SHAPE = WorkloadShape(n_trials=1_000_000, events_per_trial=1000.0, n_elts=15, n_layers=1)


class TestCPUCostModel:
    def test_sequential_time_scales_linearly_in_trials(self):
        model = CPUCostModel()
        full = model.sequential_seconds(PAPER_SHAPE)
        half = model.sequential_seconds(WorkloadShape(500_000, 1000.0, 15, 1))
        assert full / half == pytest.approx(2.0, rel=1e-6)

    def test_sequential_time_scales_with_elts(self):
        model = CPUCostModel()
        few = model.sequential_seconds(WorkloadShape(100_000, 1000.0, 3, 1))
        many = model.sequential_seconds(WorkloadShape(100_000, 1000.0, 15, 1))
        assert many > 4 * few

    def test_multicore_faster_but_saturating(self):
        model = CPUCostModel()
        seq = model.sequential_seconds(PAPER_SHAPE)
        two = model.multicore_seconds(PAPER_SHAPE, 2)
        eight = model.multicore_seconds(PAPER_SHAPE, 8)
        assert seq > two > eight
        assert seq / eight < 4.0  # far from linear speedup

    def test_phase_fractions_sum_to_one(self):
        fractions = CPUCostModel().phase_fractions(PAPER_SHAPE)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_elt_lookup_dominates(self):
        # The paper measures 78% of the runtime in ELT lookups (Fig. 6b).
        fractions = CPUCostModel().phase_fractions(PAPER_SHAPE)
        assert fractions["elt_lookup"] == pytest.approx(0.78, abs=0.12)
        assert fractions["elt_lookup"] == max(fractions.values())

    def test_invalid_calibration(self):
        with pytest.raises(ValueError):
            CPUCostModel(ns_per_elt_lookup=0.0)


class TestProjectSummary:
    def test_keys_present(self):
        summary = project_summary(PAPER_SHAPE)
        assert set(summary) == {"sequential_cpu", "multicore_cpu", "basic_gpu", "optimised_gpu"}

    def test_ordering_matches_paper(self):
        summary = project_summary(PAPER_SHAPE, n_cores=8)
        assert (
            summary["sequential_cpu"]
            > summary["multicore_cpu"]
            > summary["basic_gpu"]
            > summary["optimised_gpu"]
        )

    def test_gpu_speedups_match_paper_factors(self):
        # Paper: basic GPU 3.2x and optimised GPU 5.4x faster than the best
        # multi-core CPU time.
        summary = project_summary(PAPER_SHAPE, n_cores=8)
        assert summary["multicore_cpu"] / summary["basic_gpu"] == pytest.approx(3.2, rel=0.3)
        assert summary["multicore_cpu"] / summary["optimised_gpu"] == pytest.approx(5.4, rel=0.3)

    def test_optimised_gpu_near_20_seconds(self):
        # "the optimised GPU algorithm can perform a 1 million trial aggregate
        # simulation on a typical contract in just over 20 seconds"
        summary = project_summary(PAPER_SHAPE)
        assert summary["optimised_gpu"] == pytest.approx(22.0, rel=0.2)

    def test_50k_trials_subsecond_claim(self):
        # "In many applications 50K trials may be sufficient in which case sub
        # one second response time can be achieved."
        shape = WorkloadShape(50_000, 1000.0, 15, 1)
        summary = project_summary(shape)
        assert summary["optimised_gpu"] < 1.5
