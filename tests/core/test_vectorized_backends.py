"""Tests for the vectorized and chunked backends against the sequential reference."""

import numpy as np
import pytest

from repro.core.chunked import ChunkedEngine
from repro.core.config import EngineConfig
from repro.core.phases import ALL_PHASES
from repro.core.vectorized import VectorizedEngine
from repro.core.plan import PlanBuilder


def _run(engine, program, yet):
    """Drive a backend through its plan scheduler (the only entry point)."""
    return engine.run_plan(PlanBuilder.from_program(program, yet))


class TestVectorizedEngine:
    def test_matches_sequential_reference(self, tiny_workload, tiny_reference_result):
        result = _run(VectorizedEngine(), tiny_workload.program, tiny_workload.yet)
        np.testing.assert_allclose(
            result.ylt.losses, tiny_reference_result.ylt.losses, rtol=1e-9, atol=1e-6
        )

    def test_max_occurrence_matches_reference(self, tiny_workload, tiny_reference_result):
        result = _run(VectorizedEngine(), tiny_workload.program, tiny_workload.yet)
        np.testing.assert_allclose(
            result.ylt.max_occurrence_losses,
            tiny_reference_result.ylt.max_occurrence_losses,
            rtol=1e-9,
            atol=1e-6,
        )

    def test_layer_names_preserved(self, tiny_workload):
        result = _run(VectorizedEngine(), tiny_workload.program, tiny_workload.yet)
        assert result.ylt.layer_names == tiny_workload.program.layer_names

    def test_single_layer_accepted(self, tiny_workload):
        layer = tiny_workload.program[0]
        result = _run(VectorizedEngine(), layer, tiny_workload.yet)
        assert result.ylt.n_layers == 1

    def test_phase_breakdown(self, tiny_workload):
        engine = VectorizedEngine(EngineConfig(backend="vectorized", record_phases=True))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        assert set(result.phase_breakdown.seconds) == set(ALL_PHASES)
        assert result.phase_breakdown.total > 0

    def test_cumulative_pass_equivalent(self, tiny_workload, tiny_reference_result):
        engine = VectorizedEngine(
            EngineConfig(backend="vectorized", use_aggregate_shortcut=False)
        )
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        np.testing.assert_allclose(
            result.ylt.losses, tiny_reference_result.ylt.losses, rtol=1e-9, atol=1e-6
        )

    def test_record_max_occurrence_off(self, tiny_workload):
        engine = VectorizedEngine(EngineConfig(backend="vectorized", record_max_occurrence=False))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        assert result.ylt.max_occurrence_losses is None


class TestChunkedEngine:
    @pytest.mark.parametrize("chunk_events", [16, 128, 10_000])
    def test_matches_sequential_reference(self, tiny_workload, tiny_reference_result, chunk_events):
        engine = ChunkedEngine(EngineConfig(backend="chunked", chunk_events=chunk_events))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        np.testing.assert_allclose(
            result.ylt.losses, tiny_reference_result.ylt.losses, rtol=1e-9, atol=1e-6
        )

    def test_details_report_chunk_size(self, tiny_workload):
        engine = ChunkedEngine(EngineConfig(backend="chunked", chunk_events=64))
        result = _run(engine, tiny_workload.program, tiny_workload.yet)
        assert result.details["chunk_events"] == 64

    def test_backend_name(self, tiny_workload):
        result = _run(ChunkedEngine(), tiny_workload.program, tiny_workload.yet)
        assert result.backend == "chunked"
