"""Tests for repro.core.kernels (the shared vectorised kernels)."""

import numpy as np
import pytest

from repro.core.kernels import (
    combined_event_losses,
    layer_trial_losses,
    layer_trial_losses_chunked,
)
from repro.core.phases import PHASE_ELT_LOOKUP, PHASE_FINANCIAL_TERMS
from repro.elt.combined import LayerLossMatrix
from repro.elt.table import EventLossTable
from repro.financial.terms import FinancialTerms, LayerTerms
from repro.utils.timing import PhaseTimer


@pytest.fixture()
def matrix() -> LayerLossMatrix:
    elt_a = EventLossTable(np.array([1, 2, 3]), np.array([100.0, 200.0, 300.0]), 10,
                           terms=FinancialTerms(share=0.5))
    elt_b = EventLossTable(np.array([2, 4]), np.array([50.0, 500.0]), 10,
                           terms=FinancialTerms(retention=25.0))
    return LayerLossMatrix([elt_a, elt_b])


class TestCombinedEventLosses:
    def test_hand_example(self, matrix):
        # Event 2: ELT A (200 * 0.5 = 100) + ELT B (50 - 25 = 25) = 125.
        losses = combined_event_losses(matrix, np.array([2, 4, 9]))
        np.testing.assert_allclose(losses, [125.0, 475.0, 0.0])

    def test_timer_phases_recorded(self, matrix):
        timer = PhaseTimer()
        combined_event_losses(matrix, np.array([1, 2]), timer)
        assert timer.count(PHASE_ELT_LOOKUP) == 1
        assert timer.count(PHASE_FINANCIAL_TERMS) == 1


class TestLayerTrialLosses:
    def test_matches_manual_aggregation(self, matrix):
        event_ids = np.array([1, 2, 4, 3, 3])
        offsets = np.array([0, 3, 5])
        terms = LayerTerms(occurrence_retention=10.0, occurrence_limit=300.0,
                           aggregate_retention=50.0, aggregate_limit=500.0)
        year, max_occ = layer_trial_losses(matrix, event_ids, offsets, terms)
        # Combined per-event: [50, 125, 475, 150, 150]
        # Occurrence net: [40, 115, 300, 140, 140]
        # Trial 0 total 455 -> agg net min(max(455-50,0),500)=405
        # Trial 1 total 280 -> 230
        np.testing.assert_allclose(year, [405.0, 230.0])
        np.testing.assert_allclose(max_occ, [300.0, 140.0])

    def test_max_occurrence_optional(self, matrix):
        year, max_occ = layer_trial_losses(
            matrix, np.array([1]), np.array([0, 1]), LayerTerms(), record_max_occurrence=False
        )
        assert max_occ is None

    def test_shortcut_and_cumulative_agree(self, matrix):
        rng = np.random.default_rng(0)
        event_ids = rng.integers(0, 10, 200)
        offsets = np.array([0, 50, 50, 120, 200])
        terms = LayerTerms(5.0, 100.0, 50.0, 400.0)
        a, _ = layer_trial_losses(matrix, event_ids, offsets, terms, use_shortcut=True)
        b, _ = layer_trial_losses(matrix, event_ids, offsets, terms, use_shortcut=False)
        np.testing.assert_allclose(a, b, rtol=1e-12)


class TestChunkedKernel:
    @pytest.mark.parametrize("chunk_events", [1, 3, 7, 64, 1000])
    def test_chunking_invariant_to_chunk_size(self, matrix, chunk_events):
        rng = np.random.default_rng(1)
        event_ids = rng.integers(0, 10, 300)
        offsets = np.array([0, 100, 130, 300])
        terms = LayerTerms(10.0, 200.0, 100.0, 900.0)
        reference, ref_occ = layer_trial_losses(matrix, event_ids, offsets, terms)
        chunked, occ = layer_trial_losses_chunked(
            matrix, event_ids, offsets, terms, chunk_events=chunk_events
        )
        np.testing.assert_allclose(chunked, reference, rtol=1e-12)
        np.testing.assert_allclose(occ, ref_occ, rtol=1e-12)

    def test_invalid_chunk_size(self, matrix):
        with pytest.raises(ValueError):
            layer_trial_losses_chunked(matrix, np.array([1]), np.array([0, 1]), LayerTerms(),
                                       chunk_events=0)

    def test_empty_yet(self, matrix):
        year, occ = layer_trial_losses_chunked(
            matrix, np.array([], dtype=np.int64), np.array([0, 0]), LayerTerms(), chunk_events=8
        )
        np.testing.assert_allclose(year, [0.0])
        np.testing.assert_allclose(occ, [0.0])
