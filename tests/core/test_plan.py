"""Tests for the ExecutionPlan IR and its builders."""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.plan import ExecutionPlan, PlanBuilder, PlanSegment
from repro.financial.terms import LayerTerms, LayerTermsVectors
from repro.parallel.partitioner import tile_partition


class TestPlanBuilderFromProgram:
    def test_one_row_per_layer(self, tiny_workload):
        plan = PlanBuilder.from_program(tiny_workload.program, tiny_workload.yet)
        assert plan.n_rows == tiny_workload.program.n_layers
        assert plan.n_unique_rows == plan.n_rows
        assert plan.has_layers
        assert plan.row_map is None
        assert plan.row_names == tiny_workload.program.layer_names
        assert len(plan.segments) == 1

    def test_accepts_bare_layer(self, tiny_workload):
        plan = PlanBuilder.from_program(tiny_workload.program[0], tiny_workload.yet)
        assert plan.n_rows == 1

    def test_stack_matches_layer_net_losses(self, tiny_workload):
        plan = PlanBuilder.from_program(tiny_workload.program, tiny_workload.yet)
        stack = plan.stack()
        assert stack.shape == (plan.n_rows, plan.catalog_size)
        for row, layer in enumerate(tiny_workload.program.layers):
            np.testing.assert_array_equal(
                stack[row], layer.loss_matrix().combined_net_losses()
            )

    def test_stack_cached(self, tiny_workload):
        plan = PlanBuilder.from_program(tiny_workload.program, tiny_workload.yet)
        assert plan.stack() is plan.stack()


class TestPlanBuilderFromPrograms:
    def test_segments_cover_rows_in_order(self, tiny_workload):
        program = tiny_workload.program
        variant = program.subset([0], name="variant")
        plan = PlanBuilder.from_programs([program, variant], tiny_workload.yet)
        assert [s.name for s in plan.segments] == [program.name, "variant"]
        assert plan.segments[0].n_rows == program.n_layers
        assert plan.segments[1].n_rows == 1
        assert plan.segments[1].metadata["batch"]["index"] == 1

    def test_dedupes_shared_elt_rows(self, tiny_workload):
        program = tiny_workload.program
        variants = [
            program,
            # with_terms shares the ELT objects -> rows must be shared.
            type(program)(
                [layer.with_terms(LayerTerms(occurrence_retention=10.0))
                 for layer in program.layers],
                name="tighter",
            ),
        ]
        plan = PlanBuilder.from_programs(variants, tiny_workload.yet)
        assert plan.n_rows == 2 * program.n_layers
        assert plan.n_unique_rows == program.n_layers
        assert plan.row_map is not None
        np.testing.assert_array_equal(
            plan.row_map, np.tile(np.arange(program.n_layers), 2)
        )
        # The deduped stack still holds one row per *unique* layer.
        assert plan.stack().shape[0] == program.n_layers

    def test_dedupe_disabled(self, tiny_workload):
        program = tiny_workload.program
        plan = PlanBuilder.from_programs(
            [program, program], tiny_workload.yet, dedupe=False
        )
        assert plan.row_map is None
        assert plan.n_unique_rows == 2 * program.n_layers

    def test_distinct_elts_not_deduped(self, tiny_workload):
        program = tiny_workload.program
        plan = PlanBuilder.from_programs(
            [program, program.subset([0], name="other")], tiny_workload.yet
        )
        # subset shares layer objects -> its row is deduplicated.
        assert plan.n_unique_rows == program.n_layers

    def test_empty_batch_rejected(self, tiny_workload):
        with pytest.raises(ValueError, match="at least one"):
            PlanBuilder.from_programs([], tiny_workload.yet)


class TestPlanBuilderFromStack:
    def test_synthetic_plan(self, tiny_workload):
        catalog = tiny_workload.program.catalog_size
        stack = np.random.default_rng(0).random((3, catalog))
        plan = PlanBuilder.from_stack(
            stack, [LayerTerms()] * 3, tiny_workload.yet, row_names=["a", "b", "c"]
        )
        assert not plan.has_layers
        assert plan.n_rows == 3
        assert plan.source == "stacked"
        np.testing.assert_array_equal(plan.stack(), stack)

    def test_stack_row_count_must_cover_terms(self, tiny_workload):
        catalog = tiny_workload.program.catalog_size
        with pytest.raises(ValueError, match="rows"):
            PlanBuilder.from_stack(
                np.zeros((2, catalog)), [LayerTerms()] * 3, tiny_workload.yet
            )


class TestExecutionPlanValidation:
    def test_needs_layers_or_stack(self, tiny_workload):
        with pytest.raises(ValueError, match="either source layers"):
            ExecutionPlan(tiny_workload.yet, [LayerTerms()])

    def test_segments_must_tile(self, tiny_workload):
        catalog = tiny_workload.program.catalog_size
        with pytest.raises(ValueError, match="tile"):
            ExecutionPlan(
                tiny_workload.yet,
                [LayerTerms()] * 2,
                stack=np.zeros((2, catalog)),
                segments=[PlanSegment("a", 0, 1)],
            )

    def test_row_names_length_checked(self, tiny_workload):
        catalog = tiny_workload.program.catalog_size
        with pytest.raises(ValueError, match="row names"):
            ExecutionPlan(
                tiny_workload.yet,
                [LayerTerms()] * 2,
                stack=np.zeros((2, catalog)),
                row_names=["only-one"],
            )

    def test_sparse_row_map_rejected_without_stack(self, tiny_workload):
        """A layer-built stack needs a dense 0..k-1 mapping (no holes)."""
        layers = list(tiny_workload.program.layers)
        with pytest.raises(ValueError, match="densely cover"):
            ExecutionPlan(
                tiny_workload.yet,
                [layer.terms for layer in layers],
                layers=layers,
                row_map=np.array([0, 2], dtype=np.int64),
            )

    def test_sparse_row_map_allowed_with_precomputed_stack(self, tiny_workload):
        """A precomputed stack may legitimately carry unreferenced rows."""
        catalog = tiny_workload.program.catalog_size
        stack = np.zeros((3, catalog))
        plan = ExecutionPlan(
            tiny_workload.yet,
            [LayerTerms()] * 2,
            stack=stack,
            row_map=np.array([0, 2], dtype=np.int64),
        )
        assert plan.n_unique_rows == 2

    def test_row_map_shape_checked(self, tiny_workload):
        catalog = tiny_workload.program.catalog_size
        with pytest.raises(ValueError, match="row_map"):
            ExecutionPlan(
                tiny_workload.yet,
                [LayerTerms()] * 2,
                stack=np.zeros((2, catalog)),
                row_map=np.zeros(5, dtype=np.int64),
            )


class TestTiles:
    def test_single_tile_by_default(self, tiny_workload):
        plan = PlanBuilder.from_program(tiny_workload.program, tiny_workload.yet)
        tiles = plan.tiles()
        assert len(tiles) == 1
        assert tiles[0].n_trials == plan.n_trials
        assert tiles[0].n_rows == plan.n_rows

    def test_tile_partition_covers_space(self):
        tiles = tile_partition(10, 6, trial_block=4, row_block=4)
        assert len(tiles) == 3 * 2
        assert sum(t.n_trials * t.n_rows for t in tiles) == 10 * 6

    def test_tiles_row_block_major(self):
        tiles = tile_partition(4, 4, trial_block=2, row_block=2)
        assert [(t.rows.start, t.trials.start) for t in tiles] == [
            (0, 0), (0, 2), (2, 0), (2, 2)
        ]


class TestSplitResult:
    def test_roundtrip_matches_solo_runs(self, tiny_workload):
        engine = AggregateRiskEngine(EngineConfig())
        program = tiny_workload.program
        variant = program.subset([1], name="variant")
        plan = PlanBuilder.from_programs([program, variant], tiny_workload.yet)
        combined = engine.run_plan(plan)
        split = plan.split_result(combined)
        assert len(split) == 2
        solo = engine.run(variant, tiny_workload.yet)
        np.testing.assert_array_equal(split[1].ylt.losses, solo.ylt.losses)
        assert split[1].details["batch"]["program"] == "variant"

    def test_row_count_mismatch_rejected(self, tiny_workload):
        engine = AggregateRiskEngine(EngineConfig())
        program = tiny_workload.program
        plan = PlanBuilder.from_programs([program, program], tiny_workload.yet)
        solo = engine.run(program, tiny_workload.yet)
        with pytest.raises(ValueError, match="plan describes"):
            plan.split_result(solo)


class TestPlanDetails:
    def test_plan_provenance_recorded(self, tiny_workload):
        result = AggregateRiskEngine(EngineConfig()).run(
            tiny_workload.program, tiny_workload.yet
        )
        assert result.details["plan"]["source"] == "program"
        assert result.details["plan"]["n_rows"] == tiny_workload.program.n_layers

    def test_legacy_execution_mode_removed(self):
        with pytest.raises(ValueError, match="execution='legacy' has been removed"):
            EngineConfig(execution="legacy")

    def test_unknown_execution_mode_rejected(self):
        with pytest.raises(ValueError, match="execution"):
            EngineConfig(execution="warp-drive")

    def test_unknown_shared_memory_mode_rejected(self):
        with pytest.raises(ValueError, match="shared_memory"):
            EngineConfig(shared_memory="sometimes")


class TestTermsVectorsRoundtrip:
    def test_plan_terms_match_layers(self, tiny_workload):
        plan = PlanBuilder.from_program(tiny_workload.program, tiny_workload.yet)
        expected = LayerTermsVectors.from_terms(
            [layer.terms for layer in tiny_workload.program.layers]
        )
        np.testing.assert_array_equal(
            plan.terms.occurrence_retentions, expected.occurrence_retentions
        )
        np.testing.assert_array_equal(
            plan.terms.aggregate_limits, expected.aggregate_limits
        )
