"""Tests for repro.core.config."""

import pytest

from repro.core.config import BACKEND_NAMES, ELT_REPRESENTATIONS, EngineConfig
from repro.parallel.scheduling import SchedulingPolicy


class TestEngineConfig:
    def test_defaults_valid(self):
        config = EngineConfig()
        assert config.backend == "vectorized"
        assert config.elt_representation == "direct"

    def test_all_backends_accepted(self):
        for backend in BACKEND_NAMES:
            EngineConfig(backend=backend)

    def test_all_representations_accepted(self):
        for representation in ELT_REPRESENTATIONS:
            EngineConfig(elt_representation=representation)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(backend="quantum")

    def test_unknown_representation_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(elt_representation="btree")

    @pytest.mark.parametrize("kwargs", [
        dict(chunk_events=0),
        dict(n_workers=0),
        dict(oversubscription=0),
        dict(threads_per_block=0),
        dict(gpu_chunk_size=0),
    ])
    def test_invalid_numeric_fields(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_all_platform_start_methods_accepted(self):
        import multiprocessing

        for method in multiprocessing.get_all_start_methods():
            EngineConfig(start_method=method)

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValueError, match="start_method"):
            EngineConfig(start_method="teleport")

    def test_legacy_execution_rejected_with_migration_hint(self):
        with pytest.raises(ValueError, match="has been removed"):
            EngineConfig(execution="legacy")

    def test_with_backend(self):
        config = EngineConfig(backend="vectorized", n_workers=4)
        updated = config.with_backend("multicore")
        assert updated.backend == "multicore"
        assert updated.n_workers == 4
        assert config.backend == "vectorized"  # original untouched

    def test_with_backend_overrides(self):
        updated = EngineConfig().with_backend("gpu", threads_per_block=128)
        assert updated.threads_per_block == 128

    def test_replace(self):
        updated = EngineConfig().replace(scheduling=SchedulingPolicy.DYNAMIC, oversubscription=8)
        assert updated.scheduling is SchedulingPolicy.DYNAMIC
        assert updated.oversubscription == 8

    def test_frozen(self):
        with pytest.raises(AttributeError):
            EngineConfig().backend = "gpu"  # type: ignore[misc]
