"""Tests for repro.ylt.reporting."""

import numpy as np

from repro.ylt.ep_curve import aep_curve
from repro.ylt.metrics import compute_risk_metrics
from repro.ylt.reporting import format_ep_table, format_layer_comparison, format_metrics_report


def sample_metrics():
    rng = np.random.default_rng(5)
    return compute_risk_metrics(rng.gamma(2.0, 1e6, size=1000),
                                return_periods=(10.0, 100.0), tvar_levels=(0.99,))


class TestFormatMetricsReport:
    def test_contains_headline_numbers(self):
        metrics = sample_metrics()
        text = format_metrics_report(metrics, title="Test report")
        assert "Test report" in text
        assert "average annual loss" in text
        assert "100 yr" in text
        assert "99.0%" in text

    def test_trials_count_reported(self):
        text = format_metrics_report(sample_metrics())
        assert "1,000" in text


class TestFormatEPTable:
    def test_rows_for_each_return_period(self):
        curve = aep_curve(np.random.default_rng(6).gamma(2.0, 1e6, size=500))
        text = format_ep_table(curve, return_periods=(10, 50, 100))
        assert text.count("yr") == 3
        assert "AEP curve" in text


class TestFormatLayerComparison:
    def test_all_layers_listed(self):
        metrics = {"layer-a": sample_metrics(), "layer-b": sample_metrics()}
        text = format_layer_comparison(metrics, return_period=100.0)
        assert "layer-a" in text and "layer-b" in text
        assert "PML 100yr" in text

    def test_missing_return_period_shows_na(self):
        metrics = {"layer-a": sample_metrics()}
        text = format_layer_comparison(metrics, return_period=333.0)
        assert "n/a" in text
