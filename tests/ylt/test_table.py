"""Tests for repro.ylt.table (the Year Loss Table)."""

import numpy as np
import pytest

from repro.ylt.table import YearLossTable


def make_ylt() -> YearLossTable:
    losses = np.array([[1.0, 2.0, 3.0], [10.0, 0.0, 5.0]])
    occ = np.array([[1.0, 1.5, 2.0], [8.0, 0.0, 4.0]])
    return YearLossTable(losses, ["cat-xl", "stop-loss"], occ)


class TestConstruction:
    def test_shapes(self):
        ylt = make_ylt()
        assert ylt.n_layers == 2
        assert ylt.n_trials == 3
        assert len(ylt) == 3

    def test_1d_input_promoted(self):
        ylt = YearLossTable(np.array([1.0, 2.0]))
        assert ylt.n_layers == 1
        assert ylt.layer_names == ("layer_0",)

    def test_default_layer_names(self):
        ylt = YearLossTable(np.zeros((3, 2)))
        assert ylt.layer_names == ("layer_0", "layer_1", "layer_2")

    def test_negative_losses_rejected(self):
        with pytest.raises(ValueError):
            YearLossTable(np.array([[-1.0]]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            YearLossTable(np.array([[np.nan]]))

    def test_name_count_mismatch(self):
        with pytest.raises(ValueError):
            YearLossTable(np.zeros((2, 3)), ["only-one"])

    def test_occurrence_shape_mismatch(self):
        with pytest.raises(ValueError):
            YearLossTable(np.zeros((2, 3)), max_occurrence_losses=np.zeros((2, 2)))


class TestAccess:
    def test_layer_by_index_and_name(self):
        ylt = make_ylt()
        np.testing.assert_allclose(ylt.layer(0), [1.0, 2.0, 3.0])
        np.testing.assert_allclose(ylt.layer("stop-loss"), [10.0, 0.0, 5.0])

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_ylt().layer("missing")

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            make_ylt().layer(5)

    def test_layer_max_occurrence(self):
        np.testing.assert_allclose(make_ylt().layer_max_occurrence("cat-xl"), [1.0, 1.5, 2.0])

    def test_max_occurrence_missing_raises(self):
        ylt = YearLossTable(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            ylt.layer_max_occurrence(0)

    def test_iter_layers(self):
        names = [name for name, _ in make_ylt().iter_layers()]
        assert names == ["cat-xl", "stop-loss"]

    def test_as_dict(self):
        assert set(make_ylt().as_dict()) == {"cat-xl", "stop-loss"}


class TestAggregation:
    def test_portfolio_losses(self):
        np.testing.assert_allclose(make_ylt().portfolio_losses(), [11.0, 2.0, 8.0])

    def test_portfolio_max_occurrence(self):
        np.testing.assert_allclose(make_ylt().portfolio_max_occurrence(), [9.0, 1.5, 6.0])

    def test_merged_with(self):
        merged = make_ylt().merged_with(YearLossTable.single_layer(np.array([7.0, 7.0, 7.0]), "extra"))
        assert merged.n_layers == 3
        assert merged.layer_names[-1] == "extra"
        np.testing.assert_allclose(merged.portfolio_losses(), [18.0, 9.0, 15.0])

    def test_merged_requires_same_trials(self):
        with pytest.raises(ValueError):
            make_ylt().merged_with(YearLossTable.single_layer(np.array([1.0])))

    def test_merged_drops_occurrence_if_missing(self):
        merged = make_ylt().merged_with(YearLossTable.single_layer(np.array([1.0, 1.0, 1.0])))
        assert merged.max_occurrence_losses is None

    def test_single_layer_constructor(self):
        ylt = YearLossTable.single_layer(np.array([1.0, 2.0]), "solo", np.array([0.5, 1.0]))
        assert ylt.n_layers == 1
        np.testing.assert_allclose(ylt.layer_max_occurrence("solo"), [0.5, 1.0])
