"""Tests for repro.ylt.io (YLT serialization)."""

import numpy as np
import pytest

from repro.ylt.io import load_ylt, save_ylt
from repro.ylt.table import YearLossTable


def make_ylt(with_occurrence: bool = True) -> YearLossTable:
    losses = np.array([[1.0, 2.5, 0.0], [3.0, 4.0, 5.5]])
    occ = np.array([[1.0, 2.0, 0.0], [2.0, 3.0, 4.0]]) if with_occurrence else None
    return YearLossTable(losses, ["cat-xl", "stop-loss"], occ)


class TestYLTRoundTrip:
    def test_roundtrip_with_occurrence(self, tmp_path):
        original = make_ylt(True)
        loaded = load_ylt(save_ylt(original, tmp_path / "ylt_a"))
        np.testing.assert_allclose(loaded.losses, original.losses)
        assert loaded.layer_names == original.layer_names
        np.testing.assert_allclose(loaded.max_occurrence_losses, original.max_occurrence_losses)

    def test_roundtrip_without_occurrence(self, tmp_path):
        original = make_ylt(False)
        loaded = load_ylt(save_ylt(original, tmp_path / "ylt_b.npz"))
        assert loaded.max_occurrence_losses is None
        np.testing.assert_allclose(loaded.losses, original.losses)

    def test_extension_added(self, tmp_path):
        path = save_ylt(make_ylt(), tmp_path / "bare_name")
        assert path.suffix == ".npz"

    def test_load_without_extension(self, tmp_path):
        save_ylt(make_ylt(), tmp_path / "named")
        assert load_ylt(tmp_path / "named").n_layers == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_ylt(tmp_path / "absent.npz")

    def test_metrics_survive_roundtrip(self, tmp_path):
        from repro.ylt.metrics import compute_risk_metrics

        original = make_ylt()
        loaded = load_ylt(save_ylt(original, tmp_path / "ylt_c"))
        before = compute_risk_metrics(original.portfolio_losses(), return_periods=(2.0,))
        after = compute_risk_metrics(loaded.portfolio_losses(), return_periods=(2.0,))
        assert before.aal == pytest.approx(after.aal)
        assert before.pml[2.0] == pytest.approx(after.pml[2.0])

    def test_nested_directory_created(self, tmp_path):
        path = save_ylt(make_ylt(), tmp_path / "deep" / "dir" / "ylt")
        assert path.exists()
