"""Tests for repro.ylt.metrics (PML, TVaR, AAL)."""

import numpy as np
import pytest

from repro.ylt.metrics import (
    aal,
    compute_risk_metrics,
    layer_metrics,
    pml,
    portfolio_ep_curve,
    tvar,
    value_at_risk,
)
from repro.ylt.table import YearLossTable


class TestScalarMetrics:
    def test_aal_is_mean(self):
        assert aal(np.array([0.0, 10.0, 20.0])) == pytest.approx(10.0)

    def test_aal_empty_rejected(self):
        with pytest.raises(ValueError):
            aal(np.array([]))

    def test_value_at_risk_quantile(self):
        losses = np.arange(101.0)
        assert value_at_risk(losses, 0.95) == pytest.approx(95.0)

    def test_pml_return_period_quantile(self):
        losses = np.arange(1.0, 1001.0)
        # 250-year PML = 1 - 1/250 quantile.
        assert pml(losses, 250.0) == pytest.approx(np.quantile(losses, 1 - 1 / 250))

    def test_pml_monotone_in_return_period(self):
        rng = np.random.default_rng(2)
        losses = rng.gamma(2.0, 1000.0, size=5000)
        assert pml(losses, 250.0) >= pml(losses, 100.0) >= pml(losses, 10.0)

    def test_pml_requires_at_least_one_year(self):
        with pytest.raises(ValueError):
            pml(np.array([1.0]), 0.5)

    def test_tvar_exceeds_var(self):
        rng = np.random.default_rng(3)
        losses = rng.gamma(2.0, 1000.0, size=5000)
        assert tvar(losses, 0.99) >= value_at_risk(losses, 0.99)

    def test_tvar_known_distribution(self):
        # Uniform losses 1..100: TVaR(0.9) = mean of top 10% ~ 95.5.
        losses = np.arange(1.0, 101.0)
        assert tvar(losses, 0.90) == pytest.approx(95.0, abs=1.0)

    def test_tvar_level_validated(self):
        with pytest.raises(ValueError):
            tvar(np.array([1.0, 2.0]), 1.5)


class TestComputeRiskMetrics:
    def test_contains_requested_levels(self):
        rng = np.random.default_rng(4)
        losses = rng.gamma(2.0, 1000.0, size=2000)
        metrics = compute_risk_metrics(losses, return_periods=(10.0, 100.0), tvar_levels=(0.95,))
        assert set(metrics.pml) == {10.0, 100.0}
        assert set(metrics.tvar) == {0.95}
        assert metrics.n_trials == 2000

    def test_max_loss_and_std(self):
        losses = np.array([1.0, 2.0, 3.0, 10.0])
        metrics = compute_risk_metrics(losses)
        assert metrics.max_loss == 10.0
        assert metrics.std == pytest.approx(np.std(losses, ddof=1))

    def test_accessors(self):
        losses = np.arange(1.0, 101.0)
        metrics = compute_risk_metrics(losses, return_periods=(50.0,), tvar_levels=(0.9,))
        assert metrics.pml_at(50.0) == metrics.pml[50.0]
        assert metrics.tvar_at(0.9) == metrics.tvar[0.9]

    def test_single_trial_std_zero(self):
        metrics = compute_risk_metrics(np.array([5.0]))
        assert metrics.std == 0.0


class TestYLTHelpers:
    def test_layer_metrics_per_layer(self):
        ylt = YearLossTable(np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]), ["a", "b"])
        metrics = layer_metrics(ylt, return_periods=(2.0,), tvar_levels=(0.5,))
        assert set(metrics) == {"a", "b"}
        assert metrics["b"].aal == pytest.approx(5.0)

    def test_portfolio_ep_curve(self):
        ylt = YearLossTable(np.array([[1.0, 2.0], [3.0, 4.0]]))
        curve = portfolio_ep_curve(ylt)
        assert curve.kind == "AEP"
        assert curve.n_points == 2


class TestMetricsFromBlocks:
    def test_identical_to_monolithic_vector(self):
        from repro.ylt.metrics import compute_risk_metrics_from_blocks

        rng = np.random.default_rng(11)
        losses = rng.uniform(0.0, 1e6, size=200)
        whole = compute_risk_metrics(losses)
        blocked = compute_risk_metrics_from_blocks(
            [losses[:70], losses[70:71], losses[71:]]
        )
        assert blocked == whole

    def test_single_block_shortcut(self):
        from repro.ylt.metrics import compute_risk_metrics_from_blocks

        losses = np.array([1.0, 5.0, 3.0])
        assert compute_risk_metrics_from_blocks([losses]) == compute_risk_metrics(losses)

    def test_no_blocks_rejected(self):
        from repro.ylt.metrics import compute_risk_metrics_from_blocks

        with pytest.raises(ValueError, match="at least one block"):
            compute_risk_metrics_from_blocks([])
