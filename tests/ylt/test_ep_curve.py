"""Tests for repro.ylt.ep_curve."""

import numpy as np
import pytest

from repro.ylt.ep_curve import EPCurve, aep_curve, oep_curve


class TestEPCurveConstruction:
    def test_valid_curve(self):
        curve = EPCurve(np.array([1.0, 2.0, 3.0]), np.array([0.9, 0.5, 0.1]))
        assert curve.n_points == 3

    def test_losses_must_be_sorted(self):
        with pytest.raises(ValueError):
            EPCurve(np.array([3.0, 1.0]), np.array([0.5, 0.4]))

    def test_probabilities_must_decrease(self):
        with pytest.raises(ValueError):
            EPCurve(np.array([1.0, 2.0]), np.array([0.1, 0.5]))

    def test_probabilities_in_unit_interval(self):
        with pytest.raises(ValueError):
            EPCurve(np.array([1.0]), np.array([1.5]))


class TestEmpiricalCurves:
    def test_aep_probabilities_monotone(self):
        rng = np.random.default_rng(1)
        curve = aep_curve(rng.gamma(2.0, 100.0, size=500))
        assert (np.diff(curve.exceedance_probabilities) <= 1e-12).all()
        assert (np.diff(curve.losses) >= 0).all()

    def test_known_quantile(self):
        # 1000 years of losses 1..1000: the 100-year PML (exceedance
        # probability 0.01) sits at ~990.
        losses = np.arange(1.0, 1001.0)
        curve = aep_curve(losses)
        assert curve.loss_at_return_period(100.0) == pytest.approx(990.0, rel=0.01)

    def test_exceedance_probability_interpolation(self):
        losses = np.arange(1.0, 101.0)
        curve = aep_curve(losses)
        assert curve.exceedance_probability(50.0) == pytest.approx(0.5, abs=0.02)

    def test_return_period_inverse_of_probability(self):
        losses = np.arange(1.0, 101.0)
        curve = aep_curve(losses)
        loss = curve.loss_at_return_period(20.0)
        assert curve.return_period(loss) == pytest.approx(20.0, rel=0.1)

    def test_return_period_inf_when_never_exceeded(self):
        curve = EPCurve(np.array([10.0, 20.0]), np.array([0.5, 0.0]))
        assert curve.return_period(25.0) == np.inf

    def test_max_points_reduces_size(self):
        losses = np.arange(1.0, 1001.0)
        curve = aep_curve(losses, max_points=50)
        assert curve.n_points <= 50

    def test_oep_curve_kind(self):
        assert oep_curve(np.array([1.0, 2.0, 3.0])).kind == "OEP"

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            aep_curve(np.array([]))

    def test_negative_losses_rejected(self):
        with pytest.raises(ValueError):
            aep_curve(np.array([-1.0, 2.0]))

    def test_return_period_clamped_to_endpoints(self):
        losses = np.arange(1.0, 11.0)
        curve = aep_curve(losses)
        assert curve.loss_at_return_period(1.0) == pytest.approx(curve.losses[0])
        assert curve.loss_at_return_period(1e9) == pytest.approx(curve.losses[-1])

    def test_invalid_return_period(self):
        curve = aep_curve(np.arange(1.0, 11.0))
        with pytest.raises(ValueError):
            curve.loss_at_return_period(0.0)


class TestCurvesFromBlocks:
    def test_aep_from_blocks_identical(self):
        from repro.ylt.ep_curve import aep_curve, aep_curve_from_blocks

        rng = np.random.default_rng(13)
        losses = rng.uniform(0.0, 1e6, size=150)
        whole = aep_curve(losses)
        blocked = aep_curve_from_blocks([losses[:40], losses[40:]])
        np.testing.assert_array_equal(blocked.losses, whole.losses)
        np.testing.assert_array_equal(
            blocked.exceedance_probabilities, whole.exceedance_probabilities
        )

    def test_oep_from_blocks_identical(self):
        from repro.ylt.ep_curve import oep_curve, oep_curve_from_blocks

        rng = np.random.default_rng(17)
        occ = rng.uniform(0.0, 1e5, size=90)
        whole = oep_curve(occ, max_points=32)
        blocked = oep_curve_from_blocks([occ[:10], occ[10:55], occ[55:]], max_points=32)
        np.testing.assert_array_equal(blocked.losses, whole.losses)
        assert blocked.kind == "OEP"

    def test_empty_blocks_rejected(self):
        from repro.ylt.ep_curve import aep_curve_from_blocks

        with pytest.raises(ValueError, match="at least one block"):
            aep_curve_from_blocks([])
