"""Tests for repro.elt.table (the canonical EventLossTable)."""

import numpy as np
import pytest

from repro.elt.table import EventLossTable
from repro.financial.terms import FinancialTerms


def make_elt(**overrides) -> EventLossTable:
    kwargs = dict(
        event_ids=np.array([5, 1, 9]),
        losses=np.array([10.0, 20.0, 30.0]),
        catalog_size=20,
        name="test",
    )
    kwargs.update(overrides)
    return EventLossTable(**kwargs)


class TestEventLossTableConstruction:
    def test_valid_table(self):
        elt = make_elt()
        assert elt.size == 3
        assert elt.catalog_size == 20
        assert elt.density == pytest.approx(0.15)

    def test_default_terms_passthrough(self):
        assert make_elt().terms.is_passthrough

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_elt(losses=np.array([1.0]))

    def test_event_ids_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_elt(event_ids=np.array([5, 1, 25]))

    def test_duplicate_event_ids_rejected(self):
        with pytest.raises(ValueError):
            make_elt(event_ids=np.array([5, 5, 9]))

    def test_negative_losses_rejected(self):
        with pytest.raises(ValueError):
            make_elt(losses=np.array([1.0, -2.0, 3.0]))

    def test_non_finite_losses_rejected(self):
        with pytest.raises(ValueError):
            make_elt(losses=np.array([1.0, np.inf, 3.0]))

    def test_zero_catalog_rejected(self):
        with pytest.raises(ValueError):
            make_elt(catalog_size=0)

    def test_empty_elt_allowed(self):
        elt = EventLossTable(np.array([], dtype=np.int64), np.array([]), catalog_size=10)
        assert elt.size == 0
        assert elt.density == 0.0


class TestEventLossTableViews:
    def test_iteration(self):
        pairs = list(make_elt())
        assert (5, 10.0) in pairs and len(pairs) == 3

    def test_as_dict(self):
        assert make_elt().as_dict() == {5: 10.0, 1: 20.0, 9: 30.0}

    def test_sorted_copy(self):
        sorted_elt = make_elt().sorted_copy()
        np.testing.assert_array_equal(sorted_elt.event_ids, [1, 5, 9])
        np.testing.assert_allclose(sorted_elt.losses, [20.0, 10.0, 30.0])

    def test_dense_losses(self):
        dense = make_elt().dense_losses()
        assert dense.shape == (20,)
        assert dense[5] == 10.0
        assert dense[0] == 0.0
        assert dense.sum() == pytest.approx(60.0)

    def test_from_dict_drops_zero_losses(self):
        elt = EventLossTable.from_dict({3: 5.0, 7: 0.0, 2: 1.0}, catalog_size=10)
        assert elt.size == 2
        assert 7 not in elt.as_dict()

    def test_from_dict_empty(self):
        elt = EventLossTable.from_dict({}, catalog_size=10)
        assert elt.size == 0

    def test_terms_preserved_in_sorted_copy(self):
        terms = FinancialTerms(retention=5.0)
        elt = make_elt(terms=terms).sorted_copy()
        assert elt.terms.retention == 5.0
