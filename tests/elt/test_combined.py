"""Tests for repro.elt.combined (the layer loss matrix)."""

import numpy as np
import pytest

from repro.elt.combined import LayerLossMatrix
from repro.elt.table import EventLossTable
from repro.financial.terms import FinancialTerms


def make_elts():
    elt_a = EventLossTable(np.array([1, 3]), np.array([10.0, 30.0]), catalog_size=10,
                           terms=FinancialTerms(share=0.5), name="a")
    elt_b = EventLossTable(np.array([3, 4]), np.array([5.0, 40.0]), catalog_size=10,
                           terms=FinancialTerms(retention=2.0), name="b")
    return [elt_a, elt_b]


class TestLayerLossMatrix:
    def test_shape_and_records(self):
        matrix = LayerLossMatrix(make_elts())
        assert matrix.losses.shape == (2, 10)
        assert matrix.n_elts == 2
        assert matrix.n_records == 4

    def test_dense_placement(self):
        matrix = LayerLossMatrix(make_elts())
        assert matrix.losses[0, 1] == 10.0
        assert matrix.losses[0, 3] == 30.0
        assert matrix.losses[1, 3] == 5.0
        assert matrix.losses[0, 0] == 0.0

    def test_terms_vectors(self):
        matrix = LayerLossMatrix(make_elts())
        np.testing.assert_allclose(matrix.shares, [0.5, 1.0])
        np.testing.assert_allclose(matrix.retentions, [0.0, 2.0])

    def test_gather(self):
        matrix = LayerLossMatrix(make_elts())
        gathered = matrix.gather(np.array([3, 1, 7]))
        np.testing.assert_allclose(gathered, [[30.0, 10.0, 0.0], [5.0, 0.0, 0.0]])

    def test_gather_out_of_range(self):
        with pytest.raises(IndexError):
            LayerLossMatrix(make_elts()).gather(np.array([10]))

    def test_ground_up_event_losses(self):
        matrix = LayerLossMatrix(make_elts())
        np.testing.assert_allclose(
            matrix.ground_up_event_losses(np.array([3, 4])), [35.0, 40.0]
        )

    def test_row_view_readonly(self):
        matrix = LayerLossMatrix(make_elts())
        with pytest.raises(ValueError):
            matrix.row(0)[0] = 1.0

    def test_memory_bytes(self):
        matrix = LayerLossMatrix(make_elts())
        assert matrix.memory_bytes >= 2 * 10 * 8

    def test_requires_common_catalog_size(self):
        other = EventLossTable(np.array([0]), np.array([1.0]), catalog_size=5)
        with pytest.raises(ValueError):
            LayerLossMatrix(make_elts() + [other])

    def test_requires_at_least_one_elt(self):
        with pytest.raises(ValueError):
            LayerLossMatrix([])

    def test_names_preserved(self):
        assert LayerLossMatrix(make_elts()).names == ("a", "b")
