"""Tests for the three ELT lookup structures (Section III-B of the paper)."""

import numpy as np
import pytest

from repro.elt.direct_access import DirectAccessTable
from repro.elt.hashed_table import HashedEventLossTable
from repro.elt.sorted_table import SortedEventLossTable
from repro.elt.table import EventLossTable

ALL_STRUCTURES = [DirectAccessTable, SortedEventLossTable, HashedEventLossTable]


@pytest.fixture(scope="module")
def sample_elt() -> EventLossTable:
    rng = np.random.default_rng(42)
    catalog_size = 5000
    event_ids = rng.choice(catalog_size, size=400, replace=False)
    losses = rng.gamma(2.0, 1e5, size=400)
    return EventLossTable(event_ids, losses, catalog_size, name="sample")


@pytest.mark.parametrize("structure_cls", ALL_STRUCTURES)
class TestLookupStructureContract:
    def test_catalog_size_preserved(self, structure_cls, sample_elt):
        assert structure_cls(sample_elt).catalog_size == sample_elt.catalog_size

    def test_lookup_known_events(self, structure_cls, sample_elt):
        lookup = structure_cls(sample_elt)
        for event_id, loss in list(sample_elt)[:25]:
            assert lookup.lookup(event_id) == pytest.approx(loss)

    def test_lookup_absent_events_returns_zero(self, structure_cls, sample_elt):
        lookup = structure_cls(sample_elt)
        present = set(int(e) for e in sample_elt.event_ids)
        absent = [i for i in range(sample_elt.catalog_size) if i not in present][:25]
        assert all(lookup.lookup(event_id) == 0.0 for event_id in absent)

    def test_lookup_out_of_range_raises(self, structure_cls, sample_elt):
        lookup = structure_cls(sample_elt)
        with pytest.raises(IndexError):
            lookup.lookup(sample_elt.catalog_size)
        with pytest.raises(IndexError):
            lookup.lookup(-1)

    def test_lookup_many_matches_scalar(self, structure_cls, sample_elt):
        lookup = structure_cls(sample_elt)
        rng = np.random.default_rng(7)
        queries = rng.integers(0, sample_elt.catalog_size, size=500)
        batch = lookup.lookup_many(queries)
        scalar = np.array([lookup.lookup(int(q)) for q in queries])
        np.testing.assert_allclose(batch, scalar)

    def test_lookup_many_empty(self, structure_cls, sample_elt):
        lookup = structure_cls(sample_elt)
        assert lookup.lookup_many(np.array([], dtype=np.int64)).size == 0

    def test_memory_bytes_positive(self, structure_cls, sample_elt):
        assert structure_cls(sample_elt).memory_bytes > 0


class TestStructureSpecificProperties:
    def test_direct_access_memory_proportional_to_catalog(self, sample_elt):
        table = DirectAccessTable(sample_elt)
        assert table.memory_bytes == sample_elt.catalog_size * 8
        assert table.density == pytest.approx(400 / 5000)

    def test_compact_structures_use_less_memory(self, sample_elt):
        direct = DirectAccessTable(sample_elt)
        assert SortedEventLossTable(sample_elt).memory_bytes < direct.memory_bytes
        assert HashedEventLossTable(sample_elt).memory_bytes < direct.memory_bytes

    def test_direct_access_dense_readonly(self, sample_elt):
        table = DirectAccessTable(sample_elt)
        with pytest.raises(ValueError):
            table.dense[0] = 1.0

    def test_hashed_table_slot_count_power_of_two(self, sample_elt):
        table = HashedEventLossTable(sample_elt)
        assert table.n_slots & (table.n_slots - 1) == 0
        assert table.n_slots >= 2 * table.n_records

    def test_hashed_table_load_factor_validation(self, sample_elt):
        with pytest.raises(ValueError):
            HashedEventLossTable(sample_elt, load_factor=1.5)

    def test_empty_elt_supported_by_all(self):
        empty = EventLossTable(np.array([], dtype=np.int64), np.array([]), catalog_size=100)
        for structure_cls in ALL_STRUCTURES:
            lookup = structure_cls(empty)
            assert lookup.lookup(5) == 0.0
            np.testing.assert_allclose(lookup.lookup_many(np.array([1, 2, 3])), 0.0)
