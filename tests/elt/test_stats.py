"""Tests for repro.elt.stats."""

import numpy as np
import pytest

from repro.elt.stats import elt_statistics
from repro.elt.table import EventLossTable


class TestELTStatistics:
    def test_basic_statistics(self):
        elt = EventLossTable(np.array([1, 2, 3, 4]), np.array([10.0, 20.0, 30.0, 40.0]),
                             catalog_size=100)
        stats = elt_statistics(elt)
        assert stats.n_records == 4
        assert stats.density == pytest.approx(0.04)
        assert stats.total_loss == pytest.approx(100.0)
        assert stats.mean_loss == pytest.approx(25.0)
        assert stats.max_loss == 40.0
        assert stats.min_loss == 10.0

    def test_percentiles_ordered(self):
        rng = np.random.default_rng(1)
        ids = rng.choice(1000, 200, replace=False)
        elt = EventLossTable(ids, rng.gamma(2.0, 100.0, 200), catalog_size=1000)
        stats = elt_statistics(elt)
        p50, p90, p99 = stats.loss_percentiles
        assert p50 <= p90 <= p99 <= stats.max_loss

    def test_empty_elt(self):
        stats = elt_statistics(EventLossTable(np.array([], dtype=np.int64), np.array([]), 10))
        assert stats.n_records == 0
        assert stats.total_loss == 0.0
        assert stats.loss_percentiles == (0.0, 0.0, 0.0)

    def test_format_summary_contains_fields(self):
        elt = EventLossTable(np.array([1]), np.array([5.0]), catalog_size=10)
        text = elt_statistics(elt).format_summary()
        assert "records=1" in text
        assert "total=" in text
