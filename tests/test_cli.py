"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.preset == "bench"
        assert args.backend == "vectorized"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "quantum"])

    def test_batch_defaults_to_off(self):
        args = build_parser().parse_args(["run"])
        assert args.batch == 0

    def test_uncertainty_defaults(self):
        args = build_parser().parse_args(["uncertainty"])
        assert args.replications == 64
        assert args.method == "batched"
        assert args.block == 0
        assert args.cv == pytest.approx(0.6)

    def test_uncertainty_rejects_non_positive_replications(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["uncertainty", "--replications", "0"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.variants == 8
        assert args.block_rows == 0
        assert args.no_dedupe is False

    def test_sweep_rejects_zero_variants(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--variants", "0"])


class TestCommands:
    def test_run_tiny(self, capsys):
        assert main(["run", "--preset", "tiny", "--backend", "vectorized"]) == 0
        out = capsys.readouterr().out
        assert "backend=vectorized" in out

    def test_run_with_phases(self, capsys):
        assert main(["run", "--preset", "tiny", "--phases"]) == 0
        out = capsys.readouterr().out
        assert "elt_lookup" in out

    def test_run_batch_mode(self, capsys):
        assert main(["run", "--preset", "tiny", "--batch", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 variants" in out
        assert out.count("premium=") == 3
        assert "retx1.50" in out

    def test_run_batch_mode_with_phases(self, capsys):
        assert main(["run", "--preset", "tiny", "--batch", "2", "--phases"]) == 0
        out = capsys.readouterr().out
        assert "elt_lookup" in out

    def test_run_batch_mode_on_chunked_backend(self, capsys):
        assert main(["run", "--preset", "tiny", "--batch", "2", "--backend", "chunked"]) == 0
        out = capsys.readouterr().out
        assert "one chunked invocation" in out

    def test_sweep_streams_blocks(self, capsys):
        assert main(["sweep", "--preset", "tiny", "--variants", "4",
                     "--block-rows", "4"]) == 0
        out = capsys.readouterr().out
        assert "block 0" in out and "block 1" in out
        assert out.count("premium=") == 4
        assert "4 quotes" in out

    def test_sweep_single_block_dedupes_rows(self, capsys):
        assert main(["sweep", "--preset", "tiny", "--variants", "3"]) == 0
        out = capsys.readouterr().out
        # 3 variants x 2 layers share the tiny preset's 2 unique ELT rows.
        assert "6 rows (2 unique" in out

    def test_sweep_no_dedupe(self, capsys):
        assert main(["sweep", "--preset", "tiny", "--variants", "2",
                     "--no-dedupe"]) == 0
        out = capsys.readouterr().out
        assert "4 rows (4 unique" in out

    def test_sweep_matches_batch_quotes(self, capsys):
        assert main(["run", "--preset", "tiny", "--batch", "3"]) == 0
        batch_out = capsys.readouterr().out
        assert main(["sweep", "--preset", "tiny", "--variants", "3"]) == 0
        sweep_out = capsys.readouterr().out
        batch_quotes = [l for l in batch_out.splitlines() if "premium=" in l]
        sweep_quotes = [l for l in sweep_out.splitlines() if "premium=" in l]
        assert [q.strip() for q in batch_quotes] == [q.strip() for q in sweep_quotes]

    def test_metrics_report(self, capsys):
        assert main(["metrics", "--preset", "tiny", "--return-periods", "10,50"]) == 0
        out = capsys.readouterr().out
        assert "PML by return period" in out
        assert "50 yr" in out

    def test_uncertainty_banded_metrics(self, capsys):
        assert main([
            "uncertainty", "--preset", "tiny", "--replications", "6",
            "--seed", "11", "--return-periods", "5,20",
        ]) == 0
        out = capsys.readouterr().out
        assert "6 replications" in out
        assert "via batched on vectorized" in out
        for metric in ("aal", "pml_5", "pml_20", "tvar_0.99"):
            assert metric in out
        assert "aal_band=" in out

    def test_uncertainty_replay_matches_batched(self, capsys):
        args = ["uncertainty", "--preset", "tiny", "--replications", "4", "--seed", "3"]
        assert main(args + ["--method", "batched"]) == 0
        batched = capsys.readouterr().out
        assert main(args + ["--method", "replay"]) == 0
        replay = capsys.readouterr().out
        # Identical draws: every metric row agrees (only the header differs).
        batched_rows = [l for l in batched.splitlines() if l.startswith(("aal", "pml", "tvar"))]
        replay_rows = [l for l in replay.splitlines() if l.startswith(("aal", "pml", "tvar"))]
        assert batched_rows == replay_rows

    def test_uncertainty_streamed_blocks(self, capsys):
        assert main([
            "uncertainty", "--preset", "tiny", "--replications", "5",
            "--seed", "2", "--block", "2", "--backend", "chunked",
        ]) == 0
        out = capsys.readouterr().out
        assert "block=2" in out
        assert "on chunked" in out

    def test_uncertainty_batched_rejects_unstacked_backend(self, capsys):
        assert main([
            "uncertainty", "--preset", "tiny", "--replications", "2",
            "--backend", "gpu",
        ]) == 2
        err = capsys.readouterr().err
        assert "no stacked execution path" in err
        # ... while the replay oracle runs on any backend.
        assert main([
            "uncertainty", "--preset", "tiny", "--replications", "2",
            "--backend", "sequential", "--method", "replay", "--seed", "1",
        ]) == 0

    def test_uncertainty_lognormal_family(self, capsys):
        assert main([
            "uncertainty", "--preset", "tiny", "--replications", "3",
            "--seed", "1", "--family", "lognormal", "--cv", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "lognormal" in out

    def test_generate_writes_yet(self, tmp_path, capsys):
        out_path = tmp_path / "tiny_yet"
        assert main(["generate", "--preset", "tiny", "--out", str(out_path)]) == 0
        assert (tmp_path / "tiny_yet.npz").exists()

    def test_project_outputs_all_implementations(self, capsys):
        assert main(["project", "--trials", "100000"]) == 0
        out = capsys.readouterr().out
        for name in ("sequential_cpu", "multicore_cpu", "basic_gpu", "optimised_gpu"):
            assert name in out

    def test_run_multicore_backend(self, capsys):
        assert main(["run", "--preset", "tiny", "--backend", "multicore", "--workers", "2"]) == 0

    def test_run_gpu_backend(self, capsys):
        assert main(["run", "--preset", "tiny", "--backend", "gpu",
                     "--threads-per-block", "16", "--chunk-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "modeled=" in out

    def test_seed_override(self, capsys):
        assert main(["run", "--preset", "tiny", "--seed", "123"]) == 0


class TestRequestCommand:
    def test_inline_json_request(self, capsys):
        assert main(["request", "--json", '{"kind": "run", "program": "tiny"}']) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "run"
        assert payload["backend"] == "vectorized"
        assert payload["cache"]["hit"] is False
        assert payload["results"][0]["n_layers"] == 2

    def test_request_from_file(self, tmp_path, capsys):
        document = tmp_path / "request.json"
        document.write_text('{"kind": "run_many", "program": "tiny", "variants": 2}')
        assert main(["request", "--file", str(document), "--pretty"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["quotes"]) == 2

    def test_request_from_stdin(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO('{"kind": "run", "program": "tiny"}')
        )
        assert main(["request"]) == 0
        assert json.loads(capsys.readouterr().out)["kind"] == "run"

    def test_invalid_request_rejected(self, capsys):
        assert main(["request", "--json", '{"kind": "teleport"}']) == 2
        assert "unknown kind" in capsys.readouterr().err

    def test_json_and_file_mutually_exclusive(self, tmp_path, capsys):
        document = tmp_path / "request.json"
        document.write_text("{}")
        assert main(["request", "--json", "{}", "--file", str(document)]) == 2
        assert "either --json or --file" in capsys.readouterr().err


class TestServeCommand:
    def test_warm_ndjson_loop(self, monkeypatch, capsys):
        lines = "\n".join(
            [
                '{"kind": "run", "program": "tiny"}',
                "",  # blank lines are skipped
                '{"kind": "run", "program": "tiny"}',
                '{"kind": "nope"}',
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n"))
        assert main(["serve"]) == 0
        captured = capsys.readouterr()
        answers = [json.loads(line) for line in captured.out.splitlines()]
        assert answers[0]["cache"]["hit"] is False
        assert answers[1]["cache"]["hit"] is True  # warm plan + stack reuse
        assert "error" in answers[2]
        assert "served 2 requests" in captured.err


class TestShardedRun:
    def test_shards_flag_parsed(self):
        args = build_parser().parse_args(["run", "--shards", "4"])
        assert args.shards == 4

    def test_negative_shards_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--shards", "-1"])

    def test_sharded_run_reports_shard_count(self, capsys):
        assert main(["run", "--preset", "tiny", "--shards", "4"]) == 0
        assert "shards=4" in capsys.readouterr().out

    def test_sharded_metrics_match_monolithic(self, capsys):
        """The printed risk numbers (AAL/PML/TVaR) must be shard-invariant.

        The metrics report is a pure function of the year losses, so
        comparing it end to end catches any sharded-vs-monolithic result
        drift through the whole CLI -> service -> engine path.
        """

        def report_lines(out: str) -> list[str]:
            # Everything from the blank separator on is the metrics report;
            # the lines above it carry wall times.
            lines = out.splitlines()
            return lines[lines.index("") :]

        assert main(["metrics", "--preset", "tiny", "--shards", "4"]) == 0
        sharded = report_lines(capsys.readouterr().out)
        assert main(["metrics", "--preset", "tiny"]) == 0
        monolithic = report_lines(capsys.readouterr().out)
        assert any("PML" in line or "AAL" in line for line in sharded)
        assert sharded == monolithic

    def test_sharded_sweep(self, capsys):
        assert main(["sweep", "--preset", "tiny", "--variants", "3",
                     "--shards", "2"]) == 0
        assert "3 quotes" in capsys.readouterr().out


class TestServeHardening:
    def test_malformed_json_line_answers_structured_error(self, monkeypatch, capsys):
        lines = "\n".join(
            [
                "{not json at all",
                '{"kind": "run", "program": "tiny"}',
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n"))
        assert main(["serve"]) == 0
        captured = capsys.readouterr()
        answers = [json.loads(line) for line in captured.out.splitlines()]
        # The malformed line gets a structured error envelope...
        assert answers[0]["error"]["type"] == "RequestValidationError"
        assert "not valid JSON" in answers[0]["error"]["message"]
        # ...and the warm loop keeps serving the next request.
        assert answers[1]["kind"] == "run"
        assert "served 1 requests" in captured.err

    def test_schema_error_names_the_field(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO('{"kind": "run", "program": "tiny", "shards": -2}\n')
        )
        assert main(["serve"]) == 0
        answer = json.loads(capsys.readouterr().out.splitlines()[0])
        assert answer["error"]["field"] == "shards"

    def test_engine_rejection_does_not_kill_the_loop(self, monkeypatch, capsys):
        # A valid request the backend rejects (stacked path on sequential)
        # must answer an error line and keep serving.
        lines = "\n".join(
            [
                '{"kind": "uncertainty", "program": "tiny", "replications": 2, "seed": 1}',
                '{"kind": "run", "program": "tiny"}',
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n"))
        assert main(["serve", "--backend", "sequential"]) == 0
        captured = capsys.readouterr()
        answers = [json.loads(line) for line in captured.out.splitlines()]
        assert "error" in answers[0]
        assert answers[1]["kind"] == "run"


class _InterruptedStdin:
    """A stdin whose iteration raises after yielding the given lines."""

    def __init__(self, lines, exc):
        self._lines = iter(lines)
        self._exc = exc

    def __iter__(self):
        return self

    def __next__(self):
        try:
            return next(self._lines)
        except StopIteration:
            raise self._exc


class TestServeShutdown:
    def test_ctrl_c_exits_130_with_stats_line(self, monkeypatch, capsys):
        """SIGINT mid-loop: no traceback, the stats line still reaches stderr."""
        monkeypatch.setattr(
            "sys.stdin",
            _InterruptedStdin(['{"kind": "run", "program": "tiny"}\n'], KeyboardInterrupt()),
        )
        assert main(["serve"]) == 130
        captured = capsys.readouterr()
        assert json.loads(captured.out.splitlines()[0])["kind"] == "run"
        assert "served 1 requests" in captured.err

    def test_broken_pipe_exits_clean_with_stats_line(self, monkeypatch, capsys):
        """The reader going away is a normal end of serving, not a crash."""
        monkeypatch.setattr(
            "sys.stdin",
            _InterruptedStdin(['{"kind": "run", "program": "tiny"}\n'], BrokenPipeError()),
        )
        assert main(["serve"]) == 0
        assert "served 1 requests" in capsys.readouterr().err

    def test_interrupt_before_any_request(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", _InterruptedStdin([], KeyboardInterrupt()))
        assert main(["serve"]) == 130
        assert "served 0 requests" in capsys.readouterr().err


class TestRequestExitCodes:
    def test_undecodable_json_exits_2(self, capsys):
        assert main(["request", "--json", "{not json at all"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_undecodable_file_exits_2(self, tmp_path, capsys):
        document = tmp_path / "busted.json"
        document.write_text("][")
        assert main(["request", "--file", str(document)]) == 2
        assert "error:" in capsys.readouterr().err


class TestListenFlags:
    def test_listen_flags_parsed(self):
        args = build_parser().parse_args(
            ["serve", "--listen", "127.0.0.1:0", "--max-inflight", "4", "--queue-depth", "8"]
        )
        assert args.listen == ("127.0.0.1", 0)
        assert args.max_inflight == 4
        assert args.queue_depth == 8

    def test_listen_defaults_to_stdin_loop(self):
        assert build_parser().parse_args(["serve"]).listen is None

    def test_bad_listen_address_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--listen", "9800"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--listen", "host:notaport"])

    def test_listen_serves_over_tcp_and_drains_on_sigint(self, tmp_path):
        """End to end through the real CLI: subprocess, TCP round trip, SIGINT."""
        import os
        import signal
        import socket
        import subprocess
        import sys as _sys

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro.cli", "serve", "--listen", "127.0.0.1:0"],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stderr.readline()
            assert "listening on" in banner
            port = int(banner.split("listening on ")[1].split(" ")[0].split(":")[1])
            with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
                stream = sock.makefile("rwb")
                stream.write(
                    (json.dumps({"kind": "run", "program": "tiny", "id": 1}) + "\n").encode()
                )
                stream.flush()
                answer = json.loads(stream.readline())
                assert answer["id"] == 1 and answer["kind"] == "run"
            proc.send_signal(signal.SIGINT)
            stderr_tail = proc.stderr.read()
            assert proc.wait(timeout=30) == 0
            assert "served 1" in stderr_tail
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestFleetRunFlag:
    def test_fleet_flag_parsed(self):
        args = build_parser().parse_args(["run", "--fleet", "a:1,b:2"])
        assert args.fleet == "a:1,b:2"
        assert build_parser().parse_args(["run"]).fleet is None

    def test_fleet_run_matches_local_run(self, capsys):
        """`are run --fleet` prices on live workers, bit-identical metrics."""
        from repro.core.config import EngineConfig
        from repro.distributed import FleetWorker

        config = EngineConfig(backend="vectorized")
        with FleetWorker(config=config) as w1, FleetWorker(config=config) as w2:
            assert main(
                ["run", "--preset", "tiny", "--shards", "4",
                 "--fleet", f"{w1.address},{w2.address}"]
            ) == 0
        fleet_out = capsys.readouterr().out
        assert "fleet    : 2 workers x 4 shards" in fleet_out
        assert main(["run", "--preset", "tiny", "--shards", "4"]) == 0
        local_out = capsys.readouterr().out
        # Same workload line; the result line differs only in wall time.
        assert fleet_out.splitlines()[0] == local_out.splitlines()[0]

    def test_fleet_rejected_with_batch(self, capsys):
        assert main(
            ["run", "--preset", "tiny", "--batch", "2", "--fleet", "a:1"]
        ) == 2
        assert "not distributed" in capsys.readouterr().err

    def test_bad_fleet_address_is_a_clean_error(self, capsys):
        assert main(["run", "--preset", "tiny", "--fleet", "nocolon"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestWorkerCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["worker"])
        assert args.listen == ("127.0.0.1", 0)
        assert args.backend == "vectorized"
        assert args.cache_size == 32
        assert args.name is None

    def test_bad_listen_address_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "--listen", "9800"])

    def test_worker_serves_a_fleet_and_drains_on_sigint(self):
        """End to end through the real CLI: subprocess worker, fleet run, SIGINT."""
        import os
        import signal
        import subprocess
        import sys as _sys

        import numpy as np

        from repro.core.config import EngineConfig
        from repro.core.engine import AggregateRiskEngine
        from repro.workloads.generator import WorkloadGenerator
        from repro.workloads.presets import tiny_spec

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro.cli", "worker", "--listen", "127.0.0.1:0",
             "--name", "cli-worker"],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stderr.readline()
            assert "worker cli-worker listening on" in banner
            address = banner.split("listening on ")[1].split(" ")[0]
            workload = WorkloadGenerator(tiny_spec()).generate()
            engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
            mono = engine.run(workload.program, workload.yet)
            fleet = engine.run_distributed(
                workload.program, workload.yet, workers=[address], n_shards=2
            )
            assert np.array_equal(mono.ylt.losses, fleet.ylt.losses)
            proc.send_signal(signal.SIGINT)
            stderr_tail = proc.stderr.read()
            assert proc.wait(timeout=30) == 130
            # the shutdown stats line has the exact `are serve` shape
            assert "served 2 requests | plan-cache:" in stderr_tail
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestBackendsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["backends"])
        assert args.as_json is False
        assert build_parser().parse_args(["backends", "--json"]).as_json is True

    def test_lists_all_backends(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in (
            "sequential", "vectorized", "chunked", "multicore", "gpu", "native",
            "distributed",
        ):
            assert name in out

    def test_json_payload_shape(self, capsys, monkeypatch):
        monkeypatch.delenv("ARE_WORKERS", raising=False)
        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        probes = payload["backends"]
        assert set(probes) == {
            "sequential", "vectorized", "chunked", "multicore", "gpu", "native",
            "distributed",
        }
        engine_rows = {k: v for k, v in probes.items() if k != "distributed"}
        assert all(entry["available"] is True for entry in engine_rows.values())
        assert isinstance(probes["multicore"]["cpu_count"], int)
        assert isinstance(probes["native"]["compiled_tier"], bool)
        # no workers configured: the fleet row reports unavailable + why
        assert probes["distributed"]["available"] is False
        assert "no workers configured" in probes["distributed"]["fallback_reason"]

    def test_distributed_probe_reaches_a_live_worker(self, capsys):
        from repro.core.config import EngineConfig
        from repro.distributed import FleetWorker

        with FleetWorker(config=EngineConfig(), name="probe-me") as worker:
            assert main(["backends", "--json", "--probe-workers", worker.address]) == 0
        row = json.loads(capsys.readouterr().out)["backends"]["distributed"]
        assert row["available"] is True
        assert row["workers"][worker.address] == {
            "reachable": True,
            "worker": "probe-me",
        }

    def test_distributed_probe_reads_are_workers_env(self, monkeypatch, capsys):
        monkeypatch.setenv("ARE_WORKERS", "127.0.0.1:1")
        assert main(["backends", "--json"]) == 0
        row = json.loads(capsys.readouterr().out)["backends"]["distributed"]
        assert row["available"] is False
        assert row["workers"]["127.0.0.1:1"]["reachable"] is False

    def test_native_probe_reports_fallback_reason(self, monkeypatch, capsys):
        monkeypatch.setenv("ARE_NATIVE_CC", "are-no-such-compiler")
        assert main(["backends", "--json"]) == 0
        native = json.loads(capsys.readouterr().out)["backends"]["native"]
        assert native["available"] is True  # the NumPy fallback always works
        assert native["compiled_tier"] is False
        assert "ARE_NATIVE_CC" in native["fallback_reason"]


class TestNativeRunFlags:
    def test_dtype_and_threads_parsed(self):
        args = build_parser().parse_args(
            ["run", "--backend", "native", "--dtype", "float32", "--native-threads", "2"]
        )
        assert args.dtype == "float32"
        assert args.native_threads == 2

    def test_unknown_dtype_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dtype", "float16"])

    def test_negative_threads_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--native-threads", "-1"])

    def test_run_native_backend(self, capsys):
        assert main(["run", "--preset", "tiny", "--backend", "native"]) == 0
        out = capsys.readouterr().out
        assert "backend=native" in out

    def test_run_native_float32(self, capsys):
        assert main(
            ["run", "--preset", "tiny", "--backend", "native", "--dtype", "float32"]
        ) == 0
        assert "backend=native" in capsys.readouterr().out
