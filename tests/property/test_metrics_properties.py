"""Property-based tests of the risk metrics and EP curves (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.ylt.ep_curve import aep_curve
from repro.ylt.metrics import aal, compute_risk_metrics, pml, tvar, value_at_risk

year_losses = npst.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=500),
    elements=st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
)


class TestMetricProperties:
    @given(year_losses)
    @settings(max_examples=200, deadline=None)
    def test_aal_between_min_and_max(self, losses):
        value = aal(losses)
        tolerance = 1e-9 + 1e-9 * abs(float(losses.max()))
        assert losses.min() - tolerance <= value <= losses.max() + tolerance

    @given(year_losses, st.floats(min_value=1.0, max_value=1000.0))
    @settings(max_examples=200, deadline=None)
    def test_pml_within_observed_range(self, losses, return_period):
        value = pml(losses, return_period)
        assert losses.min() - 1e-9 <= value <= losses.max() + 1e-9

    @given(year_losses)
    @settings(max_examples=150, deadline=None)
    def test_pml_monotone_in_return_period(self, losses):
        periods = [2.0, 10.0, 50.0, 250.0]
        values = [pml(losses, rp) for rp in periods]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    @given(year_losses, st.floats(min_value=0.5, max_value=0.999))
    @settings(max_examples=200, deadline=None)
    def test_tvar_at_least_var(self, losses, level):
        tolerance = 1e-9 + 1e-9 * abs(float(losses.max()))
        assert tvar(losses, level) >= value_at_risk(losses, level) - tolerance

    @given(year_losses)
    @settings(max_examples=150, deadline=None)
    def test_tvar_monotone_in_level(self, losses):
        levels = [0.5, 0.9, 0.99]
        values = [tvar(losses, level) for level in levels]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    @given(year_losses)
    @settings(max_examples=100, deadline=None)
    def test_compute_risk_metrics_consistent(self, losses):
        metrics = compute_risk_metrics(losses, return_periods=(10.0, 100.0), tvar_levels=(0.95,))
        tolerance = 1e-9 + 1e-9 * abs(float(losses.max()))
        assert metrics.max_loss == losses.max()
        assert metrics.aal <= metrics.max_loss + tolerance
        assert metrics.tvar[0.95] <= metrics.max_loss + tolerance


class TestEPCurveProperties:
    @given(year_losses)
    @settings(max_examples=150, deadline=None)
    def test_curve_probabilities_valid(self, losses):
        curve = aep_curve(losses)
        probs = curve.exceedance_probabilities
        assert (probs >= 0.0).all() and (probs <= 1.0).all()
        assert (np.diff(probs) <= 1e-12).all()

    @given(year_losses, st.floats(min_value=1.0, max_value=500.0))
    @settings(max_examples=150, deadline=None)
    def test_loss_at_return_period_within_range(self, losses, return_period):
        curve = aep_curve(losses)
        value = curve.loss_at_return_period(return_period)
        assert losses.min() - 1e-9 <= value <= losses.max() + 1e-9

    @given(year_losses)
    @settings(max_examples=100, deadline=None)
    def test_curve_pml_close_to_quantile_pml(self, losses):
        curve = aep_curve(losses)
        # The curve-based PML and the quantile-based PML are both consistent
        # estimators; on finite samples they may differ by one order statistic.
        curve_pml = curve.loss_at_return_period(10.0)
        quantile_pml = pml(losses, 10.0)
        sorted_losses = np.sort(losses)
        idx = np.searchsorted(sorted_losses, quantile_pml)
        neighbourhood = sorted_losses[max(0, idx - 2): idx + 3]
        assert curve_pml >= neighbourhood.min() - 1e-6
        assert curve_pml <= sorted_losses.max() + 1e-6
