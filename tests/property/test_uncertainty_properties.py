"""Property-based tests of the secondary-uncertainty machinery (hypothesis).

Random uncertain ELTs are sampled and summarised and the results must satisfy
the distributional contracts regardless of the draw:

* sampled losses respect the distribution bounds (non-negative, finite),
  keep the float64 dtype, pin zero-CV records to their means and zero-mean
  records to zero — for both distribution families;
* the mean of many replications of a record converges to its expected
  (``expected_elt``) loss;
* :meth:`ReplicationSummary.from_values` is invariant under permutation of
  the replication axis and always satisfies ``low <= mean <= high``;
* :meth:`UncertainLayer.sample_net_row` is bit-identical to building the
  sampled layer and combining its dense loss matrix — the identity the
  batched replication engine rests on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.financial.terms import FinancialTerms, LayerTerms
from repro.uncertainty.analysis import ReplicationSummary, UncertainLayer
from repro.uncertainty.table import (
    MIN_SAMPLED_CV,
    LossDistributionFamily,
    UncertainEventLossTable,
)
from repro.utils.rng import spawn_rngs

CATALOG_SIZE = 25

families = st.sampled_from(list(LossDistributionFamily))


@st.composite
def uncertain_elt(draw, min_records: int = 1):
    n_records = draw(st.integers(min_value=min_records, max_value=8))
    event_ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=CATALOG_SIZE - 1),
            min_size=n_records, max_size=n_records, unique=True,
        )
    )
    mean_losses = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=n_records, max_size=n_records,
        )
    )
    cv_losses = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            min_size=n_records, max_size=n_records,
        )
    )
    terms = FinancialTerms(
        retention=draw(st.floats(min_value=0.0, max_value=100.0)),
        share=draw(st.floats(min_value=0.1, max_value=1.0)),
        fx_rate=draw(st.floats(min_value=0.5, max_value=2.0)),
    )
    return UncertainEventLossTable(
        np.array(event_ids, dtype=np.int64),
        np.array(mean_losses, dtype=np.float64),
        np.array(cv_losses, dtype=np.float64),
        catalog_size=CATALOG_SIZE,
        family=draw(families),
        terms=terms,
    )


class TestSampledLossBounds:
    @given(elt=uncertain_elt(), seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_samples_respect_bounds_and_dtype(self, elt, seed):
        sampled = elt.sample_losses(rng=seed)
        assert sampled.dtype == np.float64
        assert sampled.shape == elt.mean_losses.shape
        assert np.all(sampled >= 0.0)
        assert np.all(np.isfinite(sampled))
        # Degenerate records are pinned, not sampled (a CV below
        # MIN_SAMPLED_CV counts as deterministic — the cv -> 0 limit).
        pinned = (elt.cv_losses < MIN_SAMPLED_CV) | (elt.mean_losses == 0.0)
        np.testing.assert_array_equal(sampled[pinned], elt.mean_losses[pinned])
        # Zero mean stays exactly zero regardless of the CV.
        assert np.all(sampled[elt.mean_losses == 0.0] == 0.0)

    @given(elt=uncertain_elt(), seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_sample_elt_wraps_sample_losses(self, elt, seed):
        table = elt.sample_elt(rng=seed)
        np.testing.assert_array_equal(table.losses, elt.sample_losses(rng=seed))
        np.testing.assert_array_equal(table.event_ids, elt.event_ids)
        assert table.terms is elt.terms


class TestReplicationConvergence:
    @given(
        mean=st.floats(min_value=10.0, max_value=1e4),
        cv=st.floats(min_value=0.05, max_value=1.0),
        family=families,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=12, deadline=None)
    def test_replication_mean_converges_to_expected_loss(self, mean, cv, family, seed):
        elt = UncertainEventLossTable(
            np.array([3]), np.array([mean]), np.array([cv]),
            catalog_size=CATALOG_SIZE, family=family,
        )
        expected = elt.expected_elt().losses[0]
        draws = np.array([
            elt.sample_losses(rng)[0] for rng in spawn_rngs(seed, 4000)
        ])
        tolerance = 5.0 * cv * mean / np.sqrt(draws.size)
        assert abs(draws.mean() - expected) <= tolerance


class TestReplicationSummaryProperties:
    values_lists = st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=1, max_size=40,
    )

    @given(values=values_lists, seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_permutation_invariance(self, values, seed):
        array = np.asarray(values, dtype=np.float64)
        permuted = np.random.default_rng(seed).permutation(array)
        a = ReplicationSummary.from_values(array)
        b = ReplicationSummary.from_values(permuted)
        # Percentiles sort internally, so the band is exactly invariant; the
        # moments are invariant up to summation-order rounding.
        assert a.low == b.low
        assert a.high == b.high
        np.testing.assert_allclose(b.mean, a.mean, rtol=1e-12, atol=1e-300)
        np.testing.assert_allclose(b.std, a.std, rtol=1e-9, atol=1e-300)

    @given(values=values_lists)
    @settings(max_examples=80, deadline=None)
    def test_band_and_mean_bounds(self, values):
        """Universal ordering facts: min <= low <= high <= max bracket the band.

        (``low <= mean <= high`` is *not* universal — a pathological list can
        push the mean outside the 5th/95th percentiles — so that ordering is
        asserted on real replication output in ``test_engine_summaries_ordered``.)
        """
        array = np.asarray(values, dtype=np.float64)
        summary = ReplicationSummary.from_values(array)
        # One-ulp slack: the mean (pairwise summation) and the percentile
        # interpolation may land a rounding step outside [min, max].
        lo = np.nextafter(array.min(), -np.inf)
        hi = np.nextafter(array.max(), np.inf)
        assert lo <= summary.low <= summary.high <= hi
        assert lo <= summary.mean <= hi
        assert summary.std >= 0.0

    def test_engine_summaries_ordered(self):
        """On sampled replication metrics the band brackets the mean."""
        elt = UncertainEventLossTable(
            np.array([1, 4, 7]), np.array([100.0, 250.0, 80.0]),
            np.array([0.5, 0.5, 0.5]), catalog_size=CATALOG_SIZE,
        )
        draws = [elt.sample_losses(rng).sum() for rng in spawn_rngs(11, 40)]
        summary = ReplicationSummary.from_values(draws)
        assert summary.low <= summary.mean <= summary.high


class TestSampleNetRowIdentity:
    @given(
        n_elts=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_net_row_matches_dense_layer_build(self, n_elts, seed, data):
        elts = [data.draw(uncertain_elt()) for _ in range(n_elts)]
        layer = UncertainLayer(elts, LayerTerms(), name="prop")
        direct = layer.sample_net_row(rng=seed)
        rebuilt = layer.sample_layer(rng=seed).loss_matrix().combined_net_losses()
        np.testing.assert_array_equal(direct, rebuilt)
