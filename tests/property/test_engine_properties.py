"""Property-based tests of the engine itself (hypothesis).

Random small workloads (random ELTs, random trials, random terms) are run
through the sequential reference and the vectorized backend; the two must
agree, and the outputs must satisfy the contractual bounds regardless of the
inputs drawn.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.elt.table import EventLossTable
from repro.financial.terms import FinancialTerms, LayerTerms
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.yet.table import YearEventTable

CATALOG_SIZE = 40


@st.composite
def random_elt(draw, name: str):
    n_records = draw(st.integers(min_value=0, max_value=12))
    event_ids = draw(st.lists(st.integers(min_value=0, max_value=CATALOG_SIZE - 1),
                              min_size=n_records, max_size=n_records, unique=True))
    losses = draw(st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                           min_size=n_records, max_size=n_records))
    terms = FinancialTerms(
        retention=draw(st.floats(min_value=0.0, max_value=100.0)),
        limit=draw(st.one_of(st.just(float("inf")), st.floats(min_value=10.0, max_value=1e4))),
        share=draw(st.floats(min_value=0.1, max_value=1.0)),
    )
    return EventLossTable(np.array(event_ids, dtype=np.int64), np.array(losses),
                          CATALOG_SIZE, terms, name)


@st.composite
def random_layer(draw, index: int):
    n_elts = draw(st.integers(min_value=1, max_value=4))
    elts = [draw(random_elt(f"elt-{index}-{i}")) for i in range(n_elts)]
    terms = LayerTerms(
        occurrence_retention=draw(st.floats(min_value=0.0, max_value=500.0)),
        occurrence_limit=draw(st.one_of(st.just(float("inf")),
                                        st.floats(min_value=10.0, max_value=1e4))),
        aggregate_retention=draw(st.floats(min_value=0.0, max_value=1000.0)),
        aggregate_limit=draw(st.one_of(st.just(float("inf")),
                                       st.floats(min_value=10.0, max_value=1e5))),
    )
    return Layer(elts, terms, name=f"layer-{index}")


@st.composite
def random_workload(draw):
    n_layers = draw(st.integers(min_value=1, max_value=2))
    program = ReinsuranceProgram([draw(random_layer(i)) for i in range(n_layers)])
    n_trials = draw(st.integers(min_value=1, max_value=12))
    trials = [
        draw(st.lists(st.integers(min_value=0, max_value=CATALOG_SIZE - 1),
                      min_size=0, max_size=15))
        for _ in range(n_trials)
    ]
    yet = YearEventTable.from_trials(trials, CATALOG_SIZE)
    return program, yet


class TestEngineProperties:
    @given(random_workload())
    @settings(max_examples=60, deadline=None)
    def test_vectorized_matches_sequential(self, workload):
        program, yet = workload
        sequential = AggregateRiskEngine(EngineConfig(backend="sequential")).run(program, yet)
        vectorized = AggregateRiskEngine(EngineConfig(backend="vectorized")).run(program, yet)
        np.testing.assert_allclose(
            vectorized.ylt.losses, sequential.ylt.losses, rtol=1e-9, atol=1e-6
        )

    @given(random_workload())
    @settings(max_examples=40, deadline=None)
    def test_chunked_matches_sequential(self, workload):
        program, yet = workload
        sequential = AggregateRiskEngine(EngineConfig(backend="sequential")).run(program, yet)
        chunked = AggregateRiskEngine(EngineConfig(backend="chunked", chunk_events=7)).run(
            program, yet
        )
        np.testing.assert_allclose(
            chunked.ylt.losses, sequential.ylt.losses, rtol=1e-9, atol=1e-6
        )

    @given(random_workload())
    @settings(max_examples=60, deadline=None)
    def test_year_losses_within_contractual_bounds(self, workload):
        program, yet = workload
        result = AggregateRiskEngine(EngineConfig(backend="vectorized")).run(program, yet)
        for index, layer in enumerate(program):
            losses = result.ylt.losses[index]
            assert (losses >= 0.0).all()
            assert (losses <= layer.terms.aggregate_limit + 1e-6).all()
            max_occ = result.ylt.max_occurrence_losses[index]
            assert (max_occ <= layer.terms.occurrence_limit + 1e-6).all()

    @given(random_workload())
    @settings(max_examples=30, deadline=None)
    def test_empty_trials_produce_zero_loss(self, workload):
        program, yet = workload
        result = AggregateRiskEngine(EngineConfig(backend="vectorized")).run(program, yet)
        lengths = yet.events_per_trial
        empty = lengths == 0
        if empty.any():
            assert np.allclose(result.ylt.losses[:, empty], 0.0)
