"""Property-based tests of exact shard merging (hypothesis).

For random small programs, random ragged YETs and random shard counts, the
merged result of a trial-sharded execution must equal the monolithic
``run_plan`` **bit for bit** on every backend — internal sharding
(``EngineConfig.trial_shards``), external sharding (``plan.shard(n)``
accumulated in shuffled order), and accumulator-to-accumulator merging
alike.  No tolerances anywhere: the sharded refactor's contract is exact.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.plan import PlanBuilder
from repro.core.results import MetricState, ResultAccumulator
from repro.elt.table import EventLossTable
from repro.financial.terms import FinancialTerms, LayerTerms
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.yet.table import YearEventTable

CATALOG_SIZE = 30


@st.composite
def random_elt(draw, name: str):
    n_records = draw(st.integers(min_value=1, max_value=8))
    event_ids = draw(st.lists(st.integers(min_value=0, max_value=CATALOG_SIZE - 1),
                              min_size=n_records, max_size=n_records, unique=True))
    losses = draw(st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                           min_size=n_records, max_size=n_records))
    terms = FinancialTerms(
        retention=draw(st.floats(min_value=0.0, max_value=50.0)),
        share=draw(st.floats(min_value=0.1, max_value=1.0)),
    )
    return EventLossTable(np.array(event_ids, dtype=np.int64), np.array(losses),
                          CATALOG_SIZE, terms, name)


@st.composite
def random_layer(draw, index: int):
    n_elts = draw(st.integers(min_value=1, max_value=2))
    elts = [draw(random_elt(f"elt-{index}-{i}")) for i in range(n_elts)]
    terms = LayerTerms(
        occurrence_retention=draw(st.floats(min_value=0.0, max_value=300.0)),
        aggregate_retention=draw(st.floats(min_value=0.0, max_value=600.0)),
        aggregate_limit=draw(st.one_of(st.just(float("inf")),
                                       st.floats(min_value=10.0, max_value=1e5))),
    )
    return Layer(elts, terms, name=f"layer-{index}")


@st.composite
def sharded_case(draw):
    """(program, yet, n_shards) with a ragged YET including empty trials."""
    n_layers = draw(st.integers(min_value=1, max_value=2))
    program = ReinsuranceProgram([draw(random_layer(i)) for i in range(n_layers)])
    n_trials = draw(st.integers(min_value=1, max_value=16))
    trials = [
        draw(st.lists(st.integers(min_value=0, max_value=CATALOG_SIZE - 1),
                      min_size=0, max_size=10))
        for _ in range(n_trials)
    ]
    yet = YearEventTable.from_trials(trials, CATALOG_SIZE)
    n_shards = draw(st.integers(min_value=1, max_value=7))
    return program, yet, n_shards


def _assert_bit_identical(sharded, monolithic):
    assert np.array_equal(sharded.losses, monolithic.losses)
    assert np.array_equal(
        sharded.max_occurrence_losses, monolithic.max_occurrence_losses
    )


class TestShardedMergeExactness:
    @given(sharded_case(), st.sampled_from(BACKEND_NAMES))
    @settings(max_examples=40, deadline=None)
    def test_internal_sharding_bit_identical_on_every_backend(self, case, backend):
        """config.trial_shards == monolithic, bit for bit, all five backends."""
        program, yet, n_shards = case
        base = EngineConfig(backend=backend)
        monolithic = AggregateRiskEngine(base).run(program, yet)
        sharded = AggregateRiskEngine(base.replace(trial_shards=n_shards)).run(
            program, yet
        )
        _assert_bit_identical(sharded.ylt, monolithic.ylt)

    @given(sharded_case(), st.sampled_from(("vectorized", "chunked")))
    @settings(max_examples=40, deadline=None)
    def test_per_layer_ablation_shards_bit_identical(self, case, backend):
        """fused_layers=False shards exactly too (the per-layer loop)."""
        program, yet, n_shards = case
        base = EngineConfig(backend=backend, fused_layers=False)
        monolithic = AggregateRiskEngine(base).run(program, yet)
        sharded = AggregateRiskEngine(base.replace(trial_shards=n_shards)).run(
            program, yet
        )
        _assert_bit_identical(sharded.ylt, monolithic.ylt)

    @given(sharded_case(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_external_shard_merge_in_any_order(self, case, rng):
        """plan.shard(n) accumulated in shuffled order == monolithic."""
        program, yet, n_shards = case
        engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
        plan = PlanBuilder.from_program(program, yet)
        monolithic = engine.run_plan(plan)

        shard_plans = plan.shard(n_shards)
        assert sum(p.trials.size for p in shard_plans) == yet.n_trials
        rng.shuffle(shard_plans)
        accumulator = ResultAccumulator.for_plan(plan)
        for shard_plan in shard_plans:
            accumulator.add_result(engine.run_plan(shard_plan))
        assert accumulator.is_complete
        _assert_bit_identical(accumulator.to_ylt(), monolithic.ylt)

    @given(sharded_case(), st.integers(min_value=0, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_split_accumulator_merge_equals_local_accumulation(self, case, split_at):
        """merge() of two partially filled accumulators == one accumulator."""
        program, yet, n_shards = case
        engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
        plan = PlanBuilder.from_program(program, yet)
        monolithic = engine.run_plan(plan)

        results = [
            (shard_plan.trials, engine.run_plan(shard_plan))
            for shard_plan in plan.shard(n_shards)
        ]
        cut = min(split_at, len(results))
        left = ResultAccumulator.for_plan(plan)
        right = ResultAccumulator.for_plan(plan)
        for trials, result in results[:cut]:
            left.add_result(result, trials)
        for trials, result in results[cut:]:
            right.add_result(result, trials)
        left.merge(right)
        _assert_bit_identical(left.to_ylt(), monolithic.ylt)

    @given(sharded_case())
    @settings(max_examples=30, deadline=None)
    def test_metric_state_matches_direct_computation(self, case):
        """The mergeable state equals statistics of the monolithic table."""
        program, yet, n_shards = case
        engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
        plan = PlanBuilder.from_program(program, yet)
        monolithic = engine.run_plan(plan)

        accumulator = ResultAccumulator.for_plan(plan)
        for shard_plan in plan.shard(n_shards):
            accumulator.add_result(engine.run_plan(shard_plan))
        state = accumulator.metric_state()
        assert state.n_trials == yet.n_trials
        np.testing.assert_allclose(
            state.mean(), monolithic.ylt.losses.mean(axis=1), rtol=1e-12
        )
        np.testing.assert_array_equal(
            state.max_loss, monolithic.ylt.losses.max(axis=1)
        )
        if yet.n_trials > 1:
            np.testing.assert_allclose(
                state.std(), monolithic.ylt.losses.std(axis=1, ddof=1),
                rtol=1e-9, atol=1e-9,
            )

    @given(sharded_case())
    @settings(max_examples=20, deadline=None)
    def test_metric_state_merge_is_associative_enough(self, case):
        """Pairwise-merged per-shard states equal the accumulated state."""
        program, yet, n_shards = case
        engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
        plan = PlanBuilder.from_program(program, yet)
        states = [
            MetricState.from_losses(engine.run_plan(shard_plan).ylt.losses)
            for shard_plan in plan.shard(n_shards)
        ]
        merged = states[0]
        for state in states[1:]:
            merged = merged.merge(state)
        assert merged.n_trials == yet.n_trials
        monolithic = engine.run_plan(plan)
        np.testing.assert_array_equal(
            merged.max_loss, monolithic.ylt.losses.max(axis=1)
        )
