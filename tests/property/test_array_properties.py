"""Property-based tests of the segment-reduction helpers (hypothesis).

The CSR-style segment reductions are the numerical core of the vectorized
backends; they are checked against straightforward Python-loop oracles on
arbitrary ragged structures, including empty segments and empty inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.utils.arrays import (
    cumulative_within_segments,
    segment_ids_from_offsets,
    segment_lengths,
    segment_max,
    segment_sum,
)

values_arrays = npst.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=0, max_value=300),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
)


@st.composite
def values_and_offsets(draw):
    values = draw(values_arrays)
    n = values.shape[0]
    n_cuts = draw(st.integers(min_value=0, max_value=8))
    cuts = sorted(draw(st.lists(st.integers(min_value=0, max_value=n),
                                min_size=n_cuts, max_size=n_cuts)))
    offsets = np.array([0, *cuts, n], dtype=np.int64)
    return values, offsets


class TestSegmentSum:
    @given(values_and_offsets())
    @settings(max_examples=200, deadline=None)
    def test_matches_python_oracle(self, case):
        values, offsets = case
        result = segment_sum(values, offsets)
        expected = [values[a:b].sum() for a, b in zip(offsets[:-1], offsets[1:])]
        np.testing.assert_allclose(result, expected, rtol=1e-9, atol=1e-6)

    @given(values_and_offsets())
    @settings(max_examples=100, deadline=None)
    def test_total_preserved(self, case):
        values, offsets = case
        np.testing.assert_allclose(segment_sum(values, offsets).sum(), values.sum(),
                                   rtol=1e-9, atol=1e-6)


class TestSegmentMax:
    @given(values_and_offsets())
    @settings(max_examples=200, deadline=None)
    def test_matches_python_oracle(self, case):
        values, offsets = case
        result = segment_max(values, offsets, initial=-np.inf)
        expected = [values[a:b].max() if b > a else -np.inf
                    for a, b in zip(offsets[:-1], offsets[1:])]
        np.testing.assert_allclose(result, expected)


class TestCumulativeWithinSegments:
    @given(values_and_offsets())
    @settings(max_examples=200, deadline=None)
    def test_matches_python_oracle(self, case):
        values, offsets = case
        result = cumulative_within_segments(values, offsets)
        expected = np.concatenate(
            [np.cumsum(values[a:b]) for a, b in zip(offsets[:-1], offsets[1:])]
        ) if values.size else np.zeros(0)
        np.testing.assert_allclose(result, expected, rtol=1e-9, atol=1e-6)

    @given(values_and_offsets())
    @settings(max_examples=100, deadline=None)
    def test_last_element_per_segment_equals_segment_sum(self, case):
        values, offsets = case
        cumulative = cumulative_within_segments(values, offsets)
        sums = segment_sum(values, offsets)
        for seg, (a, b) in enumerate(zip(offsets[:-1], offsets[1:])):
            if b > a:
                np.testing.assert_allclose(cumulative[b - 1], sums[seg], rtol=1e-9, atol=1e-6)


class TestSegmentStructure:
    @given(values_and_offsets())
    @settings(max_examples=100, deadline=None)
    def test_lengths_and_ids_consistent(self, case):
        values, offsets = case
        lengths = segment_lengths(offsets)
        ids = segment_ids_from_offsets(offsets)
        assert lengths.sum() == values.shape[0]
        assert ids.shape[0] == values.shape[0]
        if ids.size:
            counts = np.bincount(ids, minlength=lengths.size)
            np.testing.assert_array_equal(counts, lengths)
