"""Property-based tests of the financial-term kernels (hypothesis).

The invariants checked here are the contractual facts an actuary would state
about XL terms: monotonicity, boundedness by the limits, and the telescoping
equivalence of the paper's cumulative aggregate-term pass.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.financial.policies import (
    aggregate_terms_shortcut,
    apply_aggregate_terms_cumulative,
    apply_financial_terms,
    apply_occurrence_terms,
)
from repro.financial.terms import FinancialTerms, LayerTerms

losses_arrays = npst.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=0, max_value=200),
    elements=st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
)

financial_terms = st.builds(
    FinancialTerms,
    retention=st.floats(min_value=0.0, max_value=1e6),
    limit=st.one_of(st.just(float("inf")), st.floats(min_value=1.0, max_value=1e8)),
    share=st.floats(min_value=0.0, max_value=1.0),
    fx_rate=st.floats(min_value=0.01, max_value=100.0),
)

layer_terms = st.builds(
    LayerTerms,
    occurrence_retention=st.floats(min_value=0.0, max_value=1e6),
    occurrence_limit=st.one_of(st.just(float("inf")), st.floats(min_value=1.0, max_value=1e8)),
    aggregate_retention=st.floats(min_value=0.0, max_value=1e7),
    aggregate_limit=st.one_of(st.just(float("inf")), st.floats(min_value=1.0, max_value=1e9)),
)


def offsets_for(values: np.ndarray, data) -> np.ndarray:
    """Draw a valid CSR offsets array for the given flattened values."""
    n = values.shape[0]
    n_cuts = data.draw(st.integers(min_value=0, max_value=5), label="n_cuts")
    cuts = sorted(data.draw(
        st.lists(st.integers(min_value=0, max_value=n), min_size=n_cuts, max_size=n_cuts),
        label="cuts",
    ))
    return np.array([0, *cuts, n], dtype=np.int64)


class TestFinancialTermsProperties:
    @given(losses=losses_arrays, terms=financial_terms)
    @settings(max_examples=150, deadline=None)
    def test_output_bounded_and_non_negative(self, losses, terms):
        net = apply_financial_terms(losses, terms)
        assert (net >= 0.0).all()
        # share * limit is the cap; 0 * inf is indeterminate, but a zero share
        # means the net loss is identically zero.
        cap = 0.0 if terms.share == 0.0 else terms.share * terms.limit
        assert (net <= cap + 1e-9).all()

    @given(losses=losses_arrays, terms=financial_terms)
    @settings(max_examples=150, deadline=None)
    def test_vectorised_matches_scalar(self, losses, terms):
        net = apply_financial_terms(losses, terms)
        expected = np.array([terms.apply(float(x)) for x in losses])
        np.testing.assert_allclose(net, expected, rtol=1e-12, atol=1e-9)

    @given(losses=losses_arrays, terms=financial_terms)
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_loss(self, losses, terms):
        net = apply_financial_terms(np.sort(losses), terms)
        assert (np.diff(net) >= -1e-9).all()


class TestLayerTermsProperties:
    @given(losses=losses_arrays, terms=layer_terms)
    @settings(max_examples=150, deadline=None)
    def test_occurrence_output_bounded(self, losses, terms):
        occurrence = apply_occurrence_terms(losses, terms)
        assert (occurrence >= 0.0).all()
        assert (occurrence <= terms.occurrence_limit + 1e-9).all()
        assert (occurrence <= losses + 1e-9).all()

    @given(data=st.data(), losses=losses_arrays, terms=layer_terms)
    @settings(max_examples=150, deadline=None)
    def test_shortcut_equals_cumulative_pass(self, data, losses, terms):
        offsets = offsets_for(losses, data)
        shortcut = aggregate_terms_shortcut(losses, offsets, terms)
        cumulative = apply_aggregate_terms_cumulative(losses, offsets, terms)
        # atol must absorb cancellation when the aggregate retention is
        # consumed by losses ~1e9 larger than the surviving recovery.
        np.testing.assert_allclose(shortcut, cumulative, rtol=1e-7, atol=1e-4)

    @given(data=st.data(), losses=losses_arrays, terms=layer_terms)
    @settings(max_examples=100, deadline=None)
    def test_year_loss_bounded_by_aggregate_limit(self, data, losses, terms):
        offsets = offsets_for(losses, data)
        year = aggregate_terms_shortcut(losses, offsets, terms)
        assert (year >= 0.0).all()
        assert (year <= terms.aggregate_limit + 1e-9).all()

    @given(losses=losses_arrays, terms=layer_terms)
    @settings(max_examples=100, deadline=None)
    def test_tighter_retention_never_increases_loss(self, losses, terms):
        looser = apply_occurrence_terms(losses, terms)
        tighter_terms = LayerTerms(
            occurrence_retention=terms.occurrence_retention * 2 + 1.0,
            occurrence_limit=terms.occurrence_limit,
            aggregate_retention=terms.aggregate_retention,
            aggregate_limit=terms.aggregate_limit,
        )
        tighter = apply_occurrence_terms(losses, tighter_terms)
        assert (tighter <= looser + 1e-9).all()
