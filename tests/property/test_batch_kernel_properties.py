"""Property-based tests of the fused multi-layer batch kernel (hypothesis).

Random stacks of layers (random ELTs, random terms, random ragged trials) are
pushed through :func:`repro.core.kernels.layer_trial_losses_batch` and the
kernel must satisfy its algebraic contracts regardless of the draw:

* permuting the layers permutes the output rows and changes nothing else;
* a batch of one layer equals :func:`repro.core.kernels.layer_trial_losses`;
* layers whose ELTs hold no records contribute exactly zero;
* the chunked fused gather is independent of the chunk size.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import layer_trial_losses, layer_trial_losses_batch
from repro.elt.table import EventLossTable
from repro.financial.terms import FinancialTerms, LayerTerms
from repro.portfolio.layer import Layer

CATALOG_SIZE = 30


@st.composite
def random_layer(draw, tag: str, allow_empty: bool = True):
    n_elts = draw(st.integers(min_value=1, max_value=3))
    elts = []
    for e in range(n_elts):
        n_records = draw(
            st.integers(min_value=0 if allow_empty else 1, max_value=10)
        )
        event_ids = draw(
            st.lists(
                st.integers(min_value=0, max_value=CATALOG_SIZE - 1),
                min_size=n_records, max_size=n_records, unique=True,
            )
        )
        losses = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                min_size=n_records, max_size=n_records,
            )
        )
        terms = FinancialTerms(
            retention=draw(st.floats(min_value=0.0, max_value=50.0)),
            limit=draw(
                st.one_of(st.just(float("inf")), st.floats(min_value=10.0, max_value=1e4))
            ),
            share=draw(st.floats(min_value=0.1, max_value=1.0)),
        )
        elts.append(
            EventLossTable(
                np.array(event_ids, dtype=np.int64),
                np.array(losses, dtype=np.float64),
                CATALOG_SIZE,
                terms,
                f"{tag}-elt{e}",
            )
        )
    layer_terms = LayerTerms(
        occurrence_retention=draw(st.floats(min_value=0.0, max_value=100.0)),
        occurrence_limit=draw(
            st.one_of(st.just(float("inf")), st.floats(min_value=10.0, max_value=1e4))
        ),
        aggregate_retention=draw(st.floats(min_value=0.0, max_value=500.0)),
        aggregate_limit=draw(
            st.one_of(st.just(float("inf")), st.floats(min_value=50.0, max_value=1e5))
        ),
    )
    return Layer(elts, layer_terms, name=tag)


@st.composite
def random_yet_arrays(draw):
    n_trials = draw(st.integers(min_value=1, max_value=8))
    lengths = draw(
        st.lists(st.integers(min_value=0, max_value=12),
                 min_size=n_trials, max_size=n_trials)
    )
    offsets = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
    total = int(offsets[-1])
    event_ids = np.array(
        draw(st.lists(st.integers(min_value=0, max_value=CATALOG_SIZE - 1),
                      min_size=total, max_size=total)),
        dtype=np.int64,
    )
    return event_ids, offsets


@st.composite
def layers_and_yet(draw, min_layers: int = 1, max_layers: int = 4):
    n_layers = draw(st.integers(min_value=min_layers, max_value=max_layers))
    layers = [draw(random_layer(f"layer{i}")) for i in range(n_layers)]
    event_ids, offsets = draw(random_yet_arrays())
    return layers, event_ids, offsets


def _batch(layers, event_ids, offsets, **kwargs):
    return layer_trial_losses_batch(
        [layer.loss_matrix() for layer in layers],
        event_ids,
        offsets,
        [layer.terms for layer in layers],
        **kwargs,
    )


@given(layers_and_yet(min_layers=2))
@settings(max_examples=60, deadline=None)
def test_permutation_of_layers_invariance(drawn):
    """Batched pricing commutes with any permutation of the layer axis."""
    layers, event_ids, offsets = drawn
    year, max_occ = _batch(layers, event_ids, offsets)
    perm = np.arange(len(layers))[::-1]
    year_p, max_occ_p = _batch([layers[i] for i in perm], event_ids, offsets)
    np.testing.assert_array_equal(year_p, year[perm])
    np.testing.assert_array_equal(max_occ_p, max_occ[perm])


@given(random_layer("solo"), random_yet_arrays())
@settings(max_examples=60, deadline=None)
def test_single_layer_batch_equals_layer_trial_losses(layer, yet_arrays):
    """A batch of one layer degenerates to the per-layer kernel exactly."""
    event_ids, offsets = yet_arrays
    year_b, max_b = _batch([layer], event_ids, offsets)
    year_s, max_s = layer_trial_losses(
        layer.loss_matrix(), event_ids, offsets, layer.terms
    )
    assert year_b.shape == (1, offsets.size - 1)
    np.testing.assert_array_equal(year_b[0], year_s)
    np.testing.assert_array_equal(max_b[0], max_s)


@given(layers_and_yet())
@settings(max_examples=40, deadline=None)
def test_empty_elt_layer_contributes_zero(drawn):
    """A layer whose ELTs hold no records yields identically zero rows."""
    layers, event_ids, offsets = drawn
    empty_elt = EventLossTable(
        np.array([], dtype=np.int64),
        np.array([], dtype=np.float64),
        CATALOG_SIZE,
        FinancialTerms(),
        "empty",
    )
    empty_layer = Layer([empty_elt], LayerTerms(), name="empty-layer")
    year, max_occ = _batch(layers + [empty_layer], event_ids, offsets)
    assert np.all(year[-1] == 0.0)
    assert np.all(max_occ[-1] == 0.0)
    # ...and its presence does not perturb the other layers.
    year_without, _ = _batch(layers, event_ids, offsets)
    np.testing.assert_array_equal(year[:-1], year_without)


@given(layers_and_yet(), st.integers(min_value=1, max_value=64))
@settings(max_examples=40, deadline=None)
def test_chunked_fused_gather_is_chunk_size_invariant(drawn, chunk_events):
    """Fused results do not depend on the gather chunk size.

    Streamed chunking accumulates each trial's total from per-chunk partial
    sums, so year losses may differ from the whole-stream gather in the last
    bits (within 1e-9 relative); the per-trial maxima merge exactly.
    """
    layers, event_ids, offsets = drawn
    whole_year, whole_max = _batch(layers, event_ids, offsets)
    chunk_year, chunk_max = _batch(
        layers, event_ids, offsets, chunk_events=chunk_events
    )
    np.testing.assert_allclose(chunk_year, whole_year, rtol=1e-9, atol=1e-6)
    np.testing.assert_array_equal(chunk_max, whole_max)


@given(layers_and_yet())
@settings(max_examples=40, deadline=None)
def test_shortcut_and_cumulative_agree_batched(drawn):
    """Telescoped and full-cumulative aggregate passes agree layer-wise."""
    layers, event_ids, offsets = drawn
    shortcut, _ = _batch(layers, event_ids, offsets, use_shortcut=True)
    cumulative, _ = _batch(layers, event_ids, offsets, use_shortcut=False)
    np.testing.assert_allclose(shortcut, cumulative, rtol=1e-9, atol=1e-6)
