"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import PhaseTimer, Timer, TimingBreakdown


class TestTimer:
    def test_context_manager_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset_clears_elapsed(self):
        timer = Timer().start()
        timer.stop()
        timer.reset()
        assert timer.elapsed == 0.0

    def test_accumulates_across_start_stop_cycles(self):
        timer = Timer()
        timer.start()
        time.sleep(0.005)
        first = timer.stop()
        timer.start()
        time.sleep(0.005)
        second = timer.stop()
        assert second > first

    def test_elapsed_while_running(self):
        timer = Timer().start()
        time.sleep(0.005)
        assert timer.elapsed > 0.0
        timer.stop()


class TestTimingBreakdown:
    def test_total_and_fraction(self):
        breakdown = TimingBreakdown({"a": 3.0, "b": 1.0})
        assert breakdown.total == pytest.approx(4.0)
        assert breakdown.fraction("a") == pytest.approx(0.75)
        assert breakdown.fraction("missing") == 0.0

    def test_percentages_sum_to_100(self):
        breakdown = TimingBreakdown({"a": 2.0, "b": 6.0})
        assert sum(breakdown.percentages().values()) == pytest.approx(100.0)

    def test_empty_breakdown_fraction_zero(self):
        assert TimingBreakdown({}).fraction("a") == 0.0

    def test_merged_with(self):
        merged = TimingBreakdown({"a": 1.0}).merged_with(TimingBreakdown({"a": 2.0, "b": 3.0}))
        assert merged.seconds["a"] == pytest.approx(3.0)
        assert merged.seconds["b"] == pytest.approx(3.0)

    def test_format_table_contains_phases(self):
        text = TimingBreakdown({"lookup": 1.0}).format_table()
        assert "lookup" in text
        assert "total" in text


class TestPhaseTimer:
    def test_phase_accumulates(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("work"):
                time.sleep(0.002)
        assert timer.seconds("work") >= 0.004
        assert timer.count("work") == 3

    def test_disabled_timer_records_nothing(self):
        timer = PhaseTimer(enabled=False)
        with timer.phase("work"):
            pass
        assert timer.breakdown().seconds == {}

    def test_manual_add(self):
        timer = PhaseTimer()
        timer.add("lookup", 1.5, count=2)
        assert timer.seconds("lookup") == pytest.approx(1.5)
        assert timer.count("lookup") == 2

    def test_manual_add_negative_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().add("x", -1.0)

    def test_merge(self):
        a, b = PhaseTimer(), PhaseTimer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.seconds("x") == pytest.approx(3.0)
        assert a.seconds("y") == pytest.approx(3.0)

    def test_reset(self):
        timer = PhaseTimer()
        timer.add("x", 1.0)
        timer.reset()
        assert timer.breakdown().seconds == {}
        assert timer.count("x") == 0

    def test_exception_inside_phase_still_recorded(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("failing"):
                raise RuntimeError("boom")
        assert timer.count("failing") == 1
