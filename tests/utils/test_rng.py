"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceFactory, derive_rng, spawn_rngs


class TestDeriveRng:
    def test_int_seed_is_deterministic(self):
        a = derive_rng(42).random(5)
        b = derive_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(1).random(5)
        b = derive_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert derive_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(11)
        a = derive_rng(seq).random(3)
        b = derive_rng(np.random.SeedSequence(11)).random(3)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            derive_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            derive_rng("seed")  # type: ignore[arg-type]


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(7, 4)
        assert len(rngs) == 4
        draws = [rng.random() for rng in rngs]
        assert len(set(draws)) == 4

    def test_deterministic_across_calls(self):
        a = [r.random() for r in spawn_rngs(5, 3)]
        b = [r.random() for r in spawn_rngs(5, 3)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(5, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(5, -1)


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        f1, f2 = SeedSequenceFactory(9), SeedSequenceFactory(9)
        assert f1.rng("yet").random() == f2.rng("yet").random()

    def test_different_names_differ(self):
        factory = SeedSequenceFactory(9)
        assert factory.rng("yet").random() != factory.rng("elt").random()

    def test_name_order_irrelevant(self):
        f1, f2 = SeedSequenceFactory(9), SeedSequenceFactory(9)
        _ = f1.rng("first")
        value_after_other_use = f1.rng("target").random()
        value_direct = f2.rng("target").random()
        assert value_after_other_use == value_direct

    def test_rngs_mapping(self):
        factory = SeedSequenceFactory(3)
        streams = factory.rngs(["a", "b"])
        assert set(streams) == {"a", "b"}

    def test_spawn_for_workers_independent_and_deterministic(self):
        f1, f2 = SeedSequenceFactory(4), SeedSequenceFactory(4)
        a = [r.random() for r in f1.spawn_for_workers("mc", 3)]
        b = [r.random() for r in f2.spawn_for_workers("mc", 3)]
        assert a == b
        assert len(set(a)) == 3

    def test_generator_seed_supported(self):
        factory = SeedSequenceFactory(np.random.default_rng(5))
        assert isinstance(factory.rng("x"), np.random.Generator)

    def test_bad_seed_type_rejected(self):
        with pytest.raises(TypeError):
            SeedSequenceFactory(3.5)  # type: ignore[arg-type]
