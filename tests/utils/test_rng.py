"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceFactory, derive_rng, spawn_rngs


class TestDeriveRng:
    def test_int_seed_is_deterministic(self):
        a = derive_rng(42).random(5)
        b = derive_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(1).random(5)
        b = derive_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert derive_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(11)
        a = derive_rng(seq).random(3)
        b = derive_rng(np.random.SeedSequence(11)).random(3)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            derive_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            derive_rng("seed")  # type: ignore[arg-type]


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(7, 4)
        assert len(rngs) == 4
        draws = [rng.random() for rng in rngs]
        assert len(set(draws)) == 4

    def test_deterministic_across_calls(self):
        a = [r.random() for r in spawn_rngs(5, 3)]
        b = [r.random() for r in spawn_rngs(5, 3)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(5, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(5, -1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(5, 1, start=-1)


class TestSpawnRngsDeterminism:
    """Regression: child streams are prefix-stable, so the streamed
    replication path draws identically for any block size / worker count."""

    def test_child_streams_independent_of_count(self):
        full = [rng.random(4) for rng in spawn_rngs(123, 8)]
        short = [rng.random(4) for rng in spawn_rngs(123, 3)]
        for a, b in zip(short, full):
            np.testing.assert_array_equal(a, b)

    def test_start_slices_the_same_streams(self):
        full = [rng.random(4) for rng in spawn_rngs(123, 8)]
        for start in (0, 2, 5, 7):
            tail = [rng.random(4) for rng in spawn_rngs(123, 8 - start, start=start)]
            for offset, draws in enumerate(tail):
                np.testing.assert_array_equal(draws, full[start + offset])

    def test_blocked_spawning_reproduces_all_at_once(self):
        """Drawing replications block by block equals one up-front spawn."""
        all_at_once = [rng.random() for rng in spawn_rngs(9, 12)]
        for block in (1, 3, 5, 12):
            blocked = []
            for start in range(0, 12, block):
                count = min(block, 12 - start)
                blocked.extend(r.random() for r in spawn_rngs(9, count, start=start))
            assert blocked == all_at_once

    def test_matches_numpy_seedsequence_spawn(self):
        """Children agree with numpy's own SeedSequence.spawn layout."""
        ours = [rng.random() for rng in spawn_rngs(31, 5)]
        reference = [
            np.random.default_rng(child).random()
            for child in np.random.SeedSequence(31).spawn(5)
        ]
        assert ours == reference

    def test_seed_sequence_input_not_mutated(self):
        seq = np.random.SeedSequence(17)
        first = [rng.random() for rng in spawn_rngs(seq, 4)]
        second = [rng.random() for rng in spawn_rngs(seq, 4)]
        assert first == second
        assert seq.n_children_spawned == 0


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        f1, f2 = SeedSequenceFactory(9), SeedSequenceFactory(9)
        assert f1.rng("yet").random() == f2.rng("yet").random()

    def test_different_names_differ(self):
        factory = SeedSequenceFactory(9)
        assert factory.rng("yet").random() != factory.rng("elt").random()

    def test_name_order_irrelevant(self):
        f1, f2 = SeedSequenceFactory(9), SeedSequenceFactory(9)
        _ = f1.rng("first")
        value_after_other_use = f1.rng("target").random()
        value_direct = f2.rng("target").random()
        assert value_after_other_use == value_direct

    def test_rngs_mapping(self):
        factory = SeedSequenceFactory(3)
        streams = factory.rngs(["a", "b"])
        assert set(streams) == {"a", "b"}

    def test_spawn_for_workers_independent_and_deterministic(self):
        f1, f2 = SeedSequenceFactory(4), SeedSequenceFactory(4)
        a = [r.random() for r in f1.spawn_for_workers("mc", 3)]
        b = [r.random() for r in f2.spawn_for_workers("mc", 3)]
        assert a == b
        assert len(set(a)) == 3

    def test_generator_seed_supported(self):
        factory = SeedSequenceFactory(np.random.default_rng(5))
        assert isinstance(factory.rng("x"), np.random.Generator)

    def test_bad_seed_type_rejected(self):
        with pytest.raises(TypeError):
            SeedSequenceFactory(3.5)  # type: ignore[arg-type]
