"""Tests for repro.utils.arrays (segment reductions used by the engine)."""

import numpy as np
import pytest

from repro.utils.arrays import (
    as_float_array,
    as_int_array,
    cumulative_within_segments,
    segment_ids_from_offsets,
    segment_lengths,
    segment_max,
    segment_max_2d,
    segment_sum,
    segment_sum_2d,
    validate_offsets,
)


class TestConversions:
    def test_as_float_array_copies_lists(self):
        arr = as_float_array([1, 2, 3])
        assert arr.dtype == np.float64
        np.testing.assert_array_equal(arr, [1.0, 2.0, 3.0])

    def test_as_float_array_rejects_2d(self):
        with pytest.raises(ValueError):
            as_float_array(np.zeros((2, 2)))

    def test_as_int_array_accepts_integral_floats(self):
        arr = as_int_array(np.array([1.0, 2.0]))
        assert arr.dtype == np.int64

    def test_as_int_array_rejects_fractional(self):
        with pytest.raises(ValueError):
            as_int_array(np.array([1.5]))


class TestValidateOffsets:
    def test_valid_offsets_pass(self):
        offsets = validate_offsets(np.array([0, 2, 5]), total=5)
        np.testing.assert_array_equal(offsets, [0, 2, 5])

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            validate_offsets(np.array([1, 5]), total=5)

    def test_must_end_at_total(self):
        with pytest.raises(ValueError):
            validate_offsets(np.array([0, 4]), total=5)

    def test_must_be_non_decreasing(self):
        with pytest.raises(ValueError):
            validate_offsets(np.array([0, 3, 2, 5]), total=5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            validate_offsets(np.array([], dtype=np.int64), total=0)


class TestSegmentReductions:
    def test_segment_lengths(self):
        np.testing.assert_array_equal(segment_lengths(np.array([0, 2, 2, 5])), [2, 0, 3])

    def test_segment_ids(self):
        np.testing.assert_array_equal(
            segment_ids_from_offsets(np.array([0, 2, 5])), [0, 0, 1, 1, 1]
        )

    def test_segment_sum_basic(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        result = segment_sum(values, np.array([0, 2, 5]))
        np.testing.assert_allclose(result, [3.0, 12.0])

    def test_segment_sum_empty_segments(self):
        values = np.array([1.0, 2.0])
        result = segment_sum(values, np.array([0, 0, 2, 2]))
        np.testing.assert_allclose(result, [0.0, 3.0, 0.0])

    def test_segment_sum_all_empty(self):
        result = segment_sum(np.zeros(0), np.array([0, 0, 0]))
        np.testing.assert_allclose(result, [0.0, 0.0])

    def test_segment_max_basic(self):
        values = np.array([1.0, 5.0, 2.0, 4.0])
        result = segment_max(values, np.array([0, 2, 4]))
        np.testing.assert_allclose(result, [5.0, 4.0])

    def test_segment_max_empty_segment_uses_initial(self):
        values = np.array([1.0])
        result = segment_max(values, np.array([0, 0, 1]), initial=0.0)
        np.testing.assert_allclose(result, [0.0, 1.0])

    def test_segment_max_matches_python_loop(self):
        rng = np.random.default_rng(0)
        values = rng.random(50)
        offsets = np.array([0, 7, 7, 20, 33, 50])
        expected = [
            values[a:b].max() if b > a else 0.0
            for a, b in zip(offsets[:-1], offsets[1:])
        ]
        np.testing.assert_allclose(segment_max(values, offsets), expected)

    def test_cumulative_within_segments(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        result = cumulative_within_segments(values, np.array([0, 2, 4]))
        np.testing.assert_allclose(result, [1.0, 3.0, 3.0, 7.0])

    def test_cumulative_within_segments_restarts(self):
        values = np.ones(6)
        result = cumulative_within_segments(values, np.array([0, 3, 6]))
        np.testing.assert_allclose(result, [1, 2, 3, 1, 2, 3])

    def test_cumulative_empty_input(self):
        result = cumulative_within_segments(np.zeros(0), np.array([0, 0]))
        assert result.size == 0

    def test_segment_sum_matches_numpy_split(self):
        rng = np.random.default_rng(1)
        values = rng.random(100)
        cuts = np.sort(rng.integers(0, 100, size=9))
        offsets = np.concatenate(([0], cuts, [100]))
        expected = [chunk.sum() for chunk in np.split(values, offsets[1:-1])]
        np.testing.assert_allclose(segment_sum(values, offsets), expected)


class TestSegmentReductions2D:
    def test_segment_sum_2d_matches_rowwise_1d(self):
        rng = np.random.default_rng(5)
        matrix = rng.random((4, 60))
        offsets = np.array([0, 10, 10, 25, 60])
        result = segment_sum_2d(matrix, offsets)
        assert result.shape == (4, 4)
        for row in range(4):
            np.testing.assert_array_equal(result[row], segment_sum(matrix[row], offsets))

    def test_segment_max_2d_matches_rowwise_1d(self):
        rng = np.random.default_rng(6)
        matrix = rng.random((3, 40))
        offsets = np.array([0, 0, 13, 13, 40])
        result = segment_max_2d(matrix, offsets)
        assert result.shape == (3, 4)
        for row in range(3):
            np.testing.assert_array_equal(result[row], segment_max(matrix[row], offsets))

    def test_empty_segments_and_empty_matrix(self):
        empty = np.zeros((2, 0))
        offsets = np.array([0, 0, 0])
        np.testing.assert_array_equal(segment_sum_2d(empty, offsets), np.zeros((2, 2)))
        np.testing.assert_array_equal(
            segment_max_2d(empty, offsets, initial=-1.0), np.full((2, 2), -1.0)
        )

    def test_rejects_non_2d_input(self):
        with pytest.raises(ValueError):
            segment_sum_2d(np.zeros(5), np.array([0, 5]))
        with pytest.raises(ValueError):
            segment_max_2d(np.zeros((2, 2, 2)), np.array([0, 2]))


class TestSegmentMaxTrialLocality:
    """Boundary/empty-segment regressions for the max variants.

    PR 5 restricted the *sum* variants' ``reduceat`` to non-empty segments
    (raw ``reduceat`` mishandles empty ones: it returns the *next* element
    instead of the identity, leaking a neighbouring trial's value across the
    boundary).  The max variants use the same restriction; these tests pin
    the behaviours shard-merge bit-identity depends on, mirroring the sum
    variants' coverage.
    """

    def test_empty_segment_does_not_steal_next_segments_value(self):
        # Raw np.maximum.reduceat over offsets [0, 2, 2, 5] would report the
        # empty middle segment as values[2] — the *next* trial's first event.
        values = np.array([1.0, 2.0, 99.0, 3.0, 4.0])
        offsets = np.array([0, 2, 2, 5])
        np.testing.assert_array_equal(
            segment_max(values, offsets), np.array([2.0, 0.0, 99.0])
        )

    def test_leading_and_trailing_empty_segments(self):
        # A trailing empty segment's start index equals len(values) — raw
        # reduceat would raise; the restriction must skip it cleanly.
        values = np.array([5.0, 1.0])
        offsets = np.array([0, 0, 2, 2, 2])
        np.testing.assert_array_equal(
            segment_max(values, offsets, initial=-1.0),
            np.array([-1.0, 5.0, -1.0, -1.0]),
        )

    def test_initial_clamps_segments_below_it(self):
        # numpy applies maximum(maxima, initial) to non-empty segments too:
        # a trial whose occurrence losses are all below `initial` reports
        # `initial` (for the OEP curve: no occurrence loss is negative).
        values = np.array([-3.0, -1.0, 2.0])
        offsets = np.array([0, 2, 3])
        np.testing.assert_array_equal(
            segment_max(values, offsets), np.array([0.0, 2.0])
        )

    @pytest.mark.parametrize("cut", [0, 1, 3, 5, 6])
    def test_shard_merge_bit_identical_1d(self, cut):
        # Trial locality: splitting the flattened values at any trial
        # boundary and reducing the halves independently reproduces the
        # monolithic reduction bit for bit.
        rng = np.random.default_rng(11)
        lengths = np.array([3, 0, 7, 1, 0, 129])
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        values = rng.normal(size=offsets[-1]) * 100
        whole = segment_max(values, offsets)

        left = offsets[: cut + 1]
        right = offsets[cut:] - offsets[cut]
        merged = np.concatenate(
            [
                segment_max(values[: offsets[cut]], left),
                segment_max(values[offsets[cut] :], right),
            ]
        )
        np.testing.assert_array_equal(whole, merged)

    @pytest.mark.parametrize("cut", [0, 2, 4])
    def test_shard_merge_bit_identical_2d(self, cut):
        rng = np.random.default_rng(12)
        lengths = np.array([0, 8, 127, 2])
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        matrix = rng.normal(size=(3, offsets[-1])) * 100
        whole = segment_max_2d(matrix, offsets)

        left = offsets[: cut + 1]
        right = offsets[cut:] - offsets[cut]
        merged = np.concatenate(
            [
                segment_max_2d(matrix[:, : offsets[cut]], left),
                segment_max_2d(matrix[:, offsets[cut] :], right),
            ],
            axis=1,
        )
        np.testing.assert_array_equal(whole, merged)
