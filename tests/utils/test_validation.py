"""Tests for repro.utils.validation."""

import math

import pytest

from repro.utils.validation import (
    ensure_finite,
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_probability,
)


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive(3) == 3.0

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError):
            ensure_positive(value)

    def test_inf_rejected_by_default(self):
        with pytest.raises(ValueError):
            ensure_positive(math.inf)

    def test_inf_accepted_when_allowed(self):
        assert ensure_positive(math.inf, allow_inf=True) == math.inf

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ensure_positive(math.nan)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            ensure_positive(True)

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            ensure_positive("3")

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="retention"):
            ensure_positive(-1, "retention")


class TestEnsureNonNegative:
    def test_accepts_zero(self):
        assert ensure_non_negative(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_non_negative(-0.5)

    def test_inf_handling(self):
        assert ensure_non_negative(math.inf, allow_inf=True) == math.inf
        with pytest.raises(ValueError):
            ensure_non_negative(math.inf)


class TestEnsureProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert ensure_probability(value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, math.inf])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            ensure_probability(value)


class TestEnsureInRange:
    def test_inclusive_bounds(self):
        assert ensure_in_range(1.0, 1.0, 2.0) == 1.0
        assert ensure_in_range(2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            ensure_in_range(1.0, 1.0, 2.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            ensure_in_range(3.0, 1.0, 2.0)


class TestEnsureFinite:
    def test_accepts_finite(self):
        assert ensure_finite(-2.5) == -2.5

    @pytest.mark.parametrize("value", [math.inf, -math.inf, math.nan])
    def test_rejects_non_finite(self, value):
        with pytest.raises(ValueError):
            ensure_finite(value)
