"""Tests for repro.parallel.shared_memory."""

import numpy as np
import pytest

from repro.parallel.shared_memory import SharedArray, SharedWorkspace


class TestSharedArray:
    def test_roundtrip_through_descriptor(self):
        source = np.arange(100, dtype=np.float64).reshape(10, 10)
        owner = SharedArray.from_array(source)
        try:
            np.testing.assert_array_equal(owner.array, source)
            attached = SharedArray.attach(owner.descriptor)
            try:
                np.testing.assert_array_equal(attached.array, source)
                assert attached.array.dtype == source.dtype
            finally:
                attached.close()
        finally:
            owner.close()

    def test_writes_visible_through_attachment(self):
        owner = SharedArray.from_array(np.zeros(4))
        try:
            attached = SharedArray.attach(owner.descriptor)
            try:
                owner.array[2] = 42.0
                assert attached.array[2] == 42.0
            finally:
                attached.close()
        finally:
            owner.close()

    def test_close_idempotent(self):
        owner = SharedArray.from_array(np.ones(3))
        owner.close()
        owner.close()

    def test_context_manager(self):
        with SharedArray.from_array(np.ones(5)) as shared:
            assert shared.nbytes == 40

    def test_integer_dtype_preserved(self):
        source = np.arange(10, dtype=np.int32)
        with SharedArray.from_array(source) as owner:
            attached = SharedArray.attach(owner.descriptor)
            try:
                assert attached.array.dtype == np.int32
            finally:
                attached.close()


class TestSharedWorkspace:
    def test_add_and_get(self):
        with SharedWorkspace() as workspace:
            workspace.add("events", np.arange(10))
            np.testing.assert_array_equal(workspace.get("events"), np.arange(10))

    def test_duplicate_name_rejected(self):
        with SharedWorkspace() as workspace:
            workspace.add("a", np.zeros(2))
            with pytest.raises(KeyError):
                workspace.add("a", np.zeros(2))

    def test_total_bytes(self):
        with SharedWorkspace() as workspace:
            workspace.add("a", np.zeros(10, dtype=np.float64))
            workspace.add("b", np.zeros(5, dtype=np.float64))
            assert workspace.total_bytes == 120

    def test_attach_all_descriptors(self):
        with SharedWorkspace() as workspace:
            workspace.add("x", np.arange(4, dtype=np.float64))
            workspace.add("y", np.arange(3, dtype=np.int64))
            attachments = SharedWorkspace.attach_all(workspace.descriptors())
            try:
                np.testing.assert_array_equal(attachments["x"].array, np.arange(4))
                np.testing.assert_array_equal(attachments["y"].array, np.arange(3))
            finally:
                for shared in attachments.values():
                    shared.close()
