"""Tests for repro.parallel.shared_memory.

Besides the in-process round-trips, this module covers the two contracts the
multicore plan scheduler depends on:

* descriptors reconstruct zero-copy views **across a spawn boundary** (a
  worker process that shares nothing with the parent);
* segments can never leak: the owner unlinks on every exit path — normal
  close, worker death mid-block, even an interpreter exit that skipped
  ``close()`` (the atexit guard).
"""

import multiprocessing as mp
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.parallel.shared_memory import SharedArray, SharedWorkspace

SHM_DIR = Path("/dev/shm")


def _shm_entries() -> set:
    """Names of the POSIX shared-memory segments currently alive."""
    if not SHM_DIR.exists():  # pragma: no cover - non-Linux fallback
        return set()
    return {p.name for p in SHM_DIR.iterdir() if p.name.startswith("psm_")}


def _spawn_roundtrip_child(descriptor, queue):
    """Spawn-target: attach by descriptor, verify, write a sentinel back."""
    attached = SharedArray.attach(descriptor)
    try:
        queue.put(float(attached.array[3]))
        attached.array[0] = 123.5  # visible to the parent: same physical pages
    finally:
        attached.close()


def _sigkill_attach_child(descriptor, ready):
    """Spawn-target: attach, signal readiness, then wait to be SIGKILLed."""
    attached = SharedArray.attach(descriptor)
    ready.put(True)
    while True:  # pragma: no cover - killed from outside
        time.sleep(0.05)
        assert attached.array is not None


class TestSharedArray:
    def test_roundtrip_through_descriptor(self):
        source = np.arange(100, dtype=np.float64).reshape(10, 10)
        owner = SharedArray.from_array(source)
        try:
            np.testing.assert_array_equal(owner.array, source)
            attached = SharedArray.attach(owner.descriptor)
            try:
                np.testing.assert_array_equal(attached.array, source)
                assert attached.array.dtype == source.dtype
            finally:
                attached.close()
        finally:
            owner.close()

    def test_writes_visible_through_attachment(self):
        owner = SharedArray.from_array(np.zeros(4))
        try:
            attached = SharedArray.attach(owner.descriptor)
            try:
                owner.array[2] = 42.0
                assert attached.array[2] == 42.0
            finally:
                attached.close()
        finally:
            owner.close()

    def test_close_idempotent(self):
        owner = SharedArray.from_array(np.ones(3))
        owner.close()
        owner.close()

    def test_context_manager(self):
        with SharedArray.from_array(np.ones(5)) as shared:
            assert shared.nbytes == 40

    def test_integer_dtype_preserved(self):
        source = np.arange(10, dtype=np.int32)
        with SharedArray.from_array(source) as owner:
            attached = SharedArray.attach(owner.descriptor)
            try:
                assert attached.array.dtype == np.int32
            finally:
                attached.close()


class TestSharedWorkspace:
    def test_add_and_get(self):
        with SharedWorkspace() as workspace:
            workspace.add("events", np.arange(10))
            np.testing.assert_array_equal(workspace.get("events"), np.arange(10))

    def test_duplicate_name_rejected(self):
        with SharedWorkspace() as workspace:
            workspace.add("a", np.zeros(2))
            with pytest.raises(KeyError):
                workspace.add("a", np.zeros(2))

    def test_total_bytes(self):
        with SharedWorkspace() as workspace:
            workspace.add("a", np.zeros(10, dtype=np.float64))
            workspace.add("b", np.zeros(5, dtype=np.float64))
            assert workspace.total_bytes == 120

    def test_attach_all_descriptors(self):
        with SharedWorkspace() as workspace:
            workspace.add("x", np.arange(4, dtype=np.float64))
            workspace.add("y", np.arange(3, dtype=np.int64))
            attachments = SharedWorkspace.attach_all(workspace.descriptors())
            try:
                np.testing.assert_array_equal(attachments["x"].array, np.arange(4))
                np.testing.assert_array_equal(attachments["y"].array, np.arange(3))
            finally:
                for shared in attachments.values():
                    shared.close()


class TestCrossProcess:
    """Descriptor -> attach round-trips across a real process boundary."""

    def test_descriptor_attach_roundtrip_across_spawn(self):
        """A spawned worker (shares nothing) reconstructs the view by name."""
        ctx = mp.get_context("spawn")
        source = np.arange(16, dtype=np.float64)
        with SharedArray.from_array(source) as owner:
            queue = ctx.Queue()
            child = ctx.Process(
                target=_spawn_roundtrip_child, args=(owner.descriptor, queue)
            )
            child.start()
            try:
                assert queue.get(timeout=60) == 3.0
            finally:
                child.join(timeout=60)
            assert child.exitcode == 0
            # The child's write landed in the same physical pages.
            assert owner.array[0] == 123.5

    def test_worker_killed_mid_attachment_leaves_no_segment(self):
        """SIGKILLing an attached worker must not pin (or leak) the segment."""
        before = _shm_entries()
        ctx = mp.get_context("spawn")
        owner = SharedArray.from_array(np.zeros(1024))
        ready = ctx.Queue()
        child = ctx.Process(target=_sigkill_attach_child, args=(owner.descriptor, ready))
        child.start()
        try:
            assert ready.get(timeout=60)
            os.kill(child.pid, signal.SIGKILL)
            child.join(timeout=60)
        finally:
            owner.close()
        assert child.exitcode == -signal.SIGKILL
        assert _shm_entries() - before == set()


class TestLifecycleGuarantees:
    """No exit path may leak a /dev/shm segment."""

    def test_close_unlinks_segment(self):
        before = _shm_entries()
        shared = SharedArray.from_array(np.zeros(256))
        name = shared.descriptor.shm_name.lstrip("/")
        assert name in _shm_entries()
        shared.close()
        assert _shm_entries() - before == set()

    def test_workspace_close_unlinks_all(self):
        before = _shm_entries()
        workspace = SharedWorkspace()
        workspace.add("a", np.zeros(128))
        workspace.add("b", np.zeros(128))
        workspace.close()
        assert _shm_entries() - before == set()

    def test_atexit_guard_unlinks_unclosed_owner(self):
        """An interpreter exit that skipped close() still unlinks the segment.

        The child deliberately leaks: it creates an owner, keeps a module
        global alive so GC cannot save the day, prints the segment name and
        exits.  The atexit guard must have unlinked it.
        """
        code = (
            "import numpy as np\n"
            "from repro.parallel.shared_memory import SharedArray\n"
            "leaked = SharedArray.from_array(np.zeros(512))\n"
            "print(leaked.descriptor.shm_name.lstrip('/'))\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        name = proc.stdout.strip()
        assert name.startswith("psm_")
        assert name not in _shm_entries()
        # The guard (not the stderr-spamming resource tracker) did the work.
        assert "leaked shared_memory" not in proc.stderr

    def test_worker_dying_mid_block_leaks_no_segment(self, tiny_workload, monkeypatch):
        """A worker raising mid-block: run fails, but every segment is gone."""
        from repro.core import multicore as multicore_module
        from repro.core.config import EngineConfig
        from repro.core.multicore import MulticoreEngine
        from repro.core.plan import PlanBuilder

        monkeypatch.setattr(multicore_module, "_analyse_block", _exploding_block)
        before = _shm_entries()
        engine = MulticoreEngine(
            EngineConfig(
                backend="multicore",
                n_workers=2,
                start_method="fork",
                shared_memory="on",
            )
        )
        plan = PlanBuilder.from_program(tiny_workload.program, tiny_workload.yet)
        with pytest.raises(RuntimeError, match="worker died mid-block"):
            engine.run_plan(plan)
        assert _shm_entries() - before == set()


def _exploding_block(context, block):
    """Module-level (hence picklable) block function simulating a dying worker."""
    raise RuntimeError("worker died mid-block")
