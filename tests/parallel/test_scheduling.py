"""Tests for repro.parallel.scheduling."""

import pytest

from repro.parallel.scheduling import (
    Schedule,
    SchedulingPolicy,
    make_schedule,
    memory_bound_speedup_model,
)


class TestMakeSchedule:
    def test_static_one_block_per_worker(self):
        schedule = make_schedule(1000, 4, SchedulingPolicy.STATIC)
        assert schedule.n_blocks == 4
        assert schedule.oversubscription == 1
        assert schedule.total_trials() == 1000

    def test_dynamic_oversubscription(self):
        schedule = make_schedule(1000, 4, SchedulingPolicy.DYNAMIC, oversubscription=8)
        assert schedule.n_blocks >= 4 * 8 - 4  # ceil division may merge the tail
        assert schedule.total_trials() == 1000
        assert schedule.oversubscription == 8

    def test_dynamic_blocks_smaller_than_static(self):
        static = make_schedule(1000, 4, SchedulingPolicy.STATIC)
        dynamic = make_schedule(1000, 4, SchedulingPolicy.DYNAMIC, oversubscription=16)
        assert dynamic.max_block_size < static.max_block_size

    def test_static_ignores_oversubscription(self):
        schedule = make_schedule(100, 2, SchedulingPolicy.STATIC, oversubscription=32)
        assert schedule.oversubscription == 1

    def test_zero_trials(self):
        schedule = make_schedule(0, 2, SchedulingPolicy.STATIC)
        assert schedule.total_trials() == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_schedule(-1, 2)
        with pytest.raises(ValueError):
            make_schedule(10, 0)
        with pytest.raises(ValueError):
            make_schedule(10, 2, oversubscription=0)

    def test_schedule_is_frozen_dataclass(self):
        schedule = make_schedule(10, 2)
        assert isinstance(schedule, Schedule)
        with pytest.raises(AttributeError):
            schedule.n_workers = 5  # type: ignore[misc]


class TestMemoryBoundSpeedupModel:
    def test_single_core_speedup_is_one(self):
        assert memory_bound_speedup_model(1) == pytest.approx(1.0)

    def test_speedup_monotone_but_saturating(self):
        speedups = [memory_bound_speedup_model(n) for n in (1, 2, 4, 8, 16)]
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))
        # Far below linear scaling at 8+ cores (the paper reports 2.6x at 8).
        assert speedups[3] < 4.0

    def test_matches_paper_ballpark(self):
        # Paper: 1.5x (2 cores), 2.2x (4), 2.6x (8).  The simple roofline model
        # reproduces the saturating shape within ~35 %.
        assert memory_bound_speedup_model(2) == pytest.approx(1.5, rel=0.4)
        assert memory_bound_speedup_model(4) == pytest.approx(2.2, rel=0.35)
        assert memory_bound_speedup_model(8) == pytest.approx(2.6, rel=0.25)

    def test_pure_compute_scales_linearly(self):
        assert memory_bound_speedup_model(8, memory_bound_fraction=0.0) == pytest.approx(8.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            memory_bound_speedup_model(0)
        with pytest.raises(ValueError):
            memory_bound_speedup_model(2, memory_bound_fraction=1.5)
