"""Tests for the multi-GPU runtime projection (Section IV discussion)."""

import pytest

from repro.parallel.device import (
    KernelConfig,
    KernelCostModel,
    WorkloadShape,
    multi_gpu_estimate,
)

PORTFOLIO_SHAPE = WorkloadShape(n_trials=1_000_000, events_per_trial=1000.0, n_elts=15,
                                n_layers=100)
SINGLE_LAYER_SHAPE = WorkloadShape(n_trials=1_000_000, events_per_trial=1000.0, n_elts=15,
                                   n_layers=1)
CONFIG = KernelConfig(threads_per_block=64, chunk_size=4, optimised=True)


class TestMultiGPUEstimate:
    def test_single_gpu_matches_plain_estimate_plus_overhead(self):
        model = KernelCostModel()
        single = model.estimate(SINGLE_LAYER_SHAPE, CONFIG).seconds
        assert multi_gpu_estimate(model, SINGLE_LAYER_SHAPE, CONFIG, 1) == pytest.approx(
            single + 0.05, rel=1e-6
        )

    def test_more_gpus_reduce_runtime(self):
        model = KernelCostModel()
        times = [multi_gpu_estimate(model, PORTFOLIO_SHAPE, CONFIG, n) for n in (1, 2, 4, 8)]
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_near_linear_scaling_for_large_portfolios(self):
        model = KernelCostModel()
        one = multi_gpu_estimate(model, PORTFOLIO_SHAPE, CONFIG, 1)
        eight = multi_gpu_estimate(model, PORTFOLIO_SHAPE, CONFIG, 8)
        assert one / eight == pytest.approx(8.0, rel=0.1)

    def test_sync_overhead_limits_tiny_workloads(self):
        model = KernelCostModel()
        tiny = WorkloadShape(n_trials=1000, events_per_trial=100.0, n_elts=3, n_layers=1)
        one = multi_gpu_estimate(model, tiny, CONFIG, 1)
        sixteen = multi_gpu_estimate(model, tiny, CONFIG, 16)
        assert sixteen > one  # overhead dominates: no benefit from 16 devices

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            multi_gpu_estimate(KernelCostModel(), SINGLE_LAYER_SHAPE, CONFIG, 0)

    def test_full_portfolio_needs_multiple_gpus_for_daily_turnaround(self):
        # The paper's discussion: a full portfolio on a 1M-trial basis needs a
        # multi-GPU platform.  A 100-layer portfolio models at ~40 minutes on
        # one device and under ~10 minutes on eight.
        model = KernelCostModel()
        one = multi_gpu_estimate(model, PORTFOLIO_SHAPE, CONFIG, 1)
        eight = multi_gpu_estimate(model, PORTFOLIO_SHAPE, CONFIG, 8)
        assert one > 600.0
        assert eight < one / 4
