"""Tests for repro.parallel.device (the simulated GPU cost model).

These tests check that the device model reproduces the qualitative behaviours
the paper's GPU experiments demonstrate (occupancy, chunking, shared-memory
capacity), plus the headline quantitative calibration targets.
"""

import pytest

from repro.parallel.device import GPUSpec, KernelConfig, KernelCostModel, SimulatedGPU, WorkloadShape

PAPER_SHAPE = WorkloadShape(n_trials=1_000_000, events_per_trial=1000.0, n_elts=15, n_layers=1)


@pytest.fixture(scope="module")
def gpu() -> SimulatedGPU:
    return SimulatedGPU()


class TestGPUSpec:
    def test_default_spec_is_c2075_like(self):
        spec = GPUSpec()
        assert spec.n_sms == 14
        assert spec.shared_mem_per_sm_bytes == 48 * 1024

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(n_sms=0)
        with pytest.raises(ValueError):
            GPUSpec(clock_hz=0.0)

    def test_workload_shape_totals(self):
        assert PAPER_SHAPE.total_events == pytest.approx(1e9)
        assert PAPER_SHAPE.total_lookups == pytest.approx(15e9)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            WorkloadShape(n_trials=0, events_per_trial=10, n_elts=1)

    def test_invalid_kernel_config(self):
        with pytest.raises(ValueError):
            KernelConfig(threads_per_block=0)


class TestResidency:
    def test_occupancy_increases_with_threads_up_to_limit(self, gpu):
        model = gpu.cost_model
        occ_128 = model.occupancy(KernelConfig(threads_per_block=128, chunk_size=1, optimised=False))
        occ_256 = model.occupancy(KernelConfig(threads_per_block=256, chunk_size=1, optimised=False))
        assert occ_128 < occ_256
        assert occ_256 == pytest.approx(1.0)

    def test_blocks_per_sm_limited_by_slots(self, gpu):
        model = gpu.cost_model
        assert model.blocks_per_sm(KernelConfig(32, 1, False)) == 8

    def test_spill_zero_within_capacity(self, gpu):
        model = gpu.cost_model
        assert model.spill_fraction(KernelConfig(64, 12, True)) == pytest.approx(0.0)

    def test_spill_positive_beyond_capacity(self, gpu):
        model = gpu.cost_model
        assert model.spill_fraction(KernelConfig(64, 16, True)) > 0.0

    def test_basic_kernel_always_global(self, gpu):
        assert gpu.cost_model.spill_fraction(KernelConfig(256, 1, False)) == 1.0

    def test_max_threads_for_chunk_matches_paper(self, gpu):
        # "With a chunk size of 4 the maximum number of threads that can be
        # supported is 192."
        assert gpu.max_threads_for_chunk(4) == 192

    def test_threads_per_block_limit_enforced(self, gpu):
        with pytest.raises(ValueError):
            gpu.estimate(PAPER_SHAPE, KernelConfig(threads_per_block=2048, chunk_size=1))


class TestFigure4Shape:
    """Basic kernel vs threads per block: >=128 needed, best ~256, flat beyond."""

    def test_128_worse_than_256(self, gpu):
        t128 = gpu.estimate(PAPER_SHAPE, KernelConfig(128, 1, False)).seconds
        t256 = gpu.estimate(PAPER_SHAPE, KernelConfig(256, 1, False)).seconds
        assert t128 > t256

    def test_flat_beyond_256(self, gpu):
        t256 = gpu.estimate(PAPER_SHAPE, KernelConfig(256, 1, False)).seconds
        t512 = gpu.estimate(PAPER_SHAPE, KernelConfig(512, 1, False)).seconds
        assert t512 == pytest.approx(t256, rel=0.1)

    def test_below_128_much_worse(self, gpu):
        t64 = gpu.estimate(PAPER_SHAPE, KernelConfig(64, 1, False)).seconds
        t256 = gpu.estimate(PAPER_SHAPE, KernelConfig(256, 1, False)).seconds
        assert t64 > 1.3 * t256


class TestFigure5Shape:
    """Optimised kernel: chunk 4 ~1.7x better than chunk 1, flat to 12, degrades beyond."""

    def test_chunk4_improvement_over_basic(self, gpu):
        # The paper's 38.47 s -> 22.72 s (1.7x) improvement is measured from
        # the basic (global-memory) kernel to the chunked kernel at chunk 4.
        basic = gpu.estimate(PAPER_SHAPE, KernelConfig(256, 1, False)).seconds
        t1 = gpu.estimate(PAPER_SHAPE, KernelConfig(64, 1, True)).seconds
        t4 = gpu.estimate(PAPER_SHAPE, KernelConfig(64, 4, True)).seconds
        assert basic / t4 == pytest.approx(1.7, rel=0.25)
        assert t1 >= t4

    def test_flat_between_4_and_12(self, gpu):
        t4 = gpu.estimate(PAPER_SHAPE, KernelConfig(64, 4, True)).seconds
        t12 = gpu.estimate(PAPER_SHAPE, KernelConfig(64, 12, True)).seconds
        assert t12 == pytest.approx(t4, rel=0.1)

    def test_degrades_beyond_12(self, gpu):
        t12 = gpu.estimate(PAPER_SHAPE, KernelConfig(64, 12, True)).seconds
        t24 = gpu.estimate(PAPER_SHAPE, KernelConfig(64, 24, True)).seconds
        assert t24 > 1.2 * t12

    def test_threads_sweep_small_improvement(self, gpu):
        times = [gpu.estimate(PAPER_SHAPE, KernelConfig(t, 4, True)).seconds
                 for t in (32, 64, 96, 128, 160, 192)]
        assert all(b <= a * 1.05 for a, b in zip(times, times[1:]))  # non-increasing-ish
        assert times[0] / times[-1] < 1.5  # but not a dramatic improvement


class TestFigure6aCalibration:
    """Headline numbers: basic ~38 s, optimised ~23 s, ratio ~1.7x."""

    def test_basic_kernel_time(self, gpu):
        basic = gpu.estimate(PAPER_SHAPE, KernelConfig(256, 1, False)).seconds
        assert basic == pytest.approx(38.47, rel=0.15)

    def test_optimised_kernel_time(self, gpu):
        optimised = gpu.estimate(PAPER_SHAPE, KernelConfig(64, 4, True)).seconds
        assert optimised == pytest.approx(22.72, rel=0.15)

    def test_ratio(self, gpu):
        basic = gpu.estimate(PAPER_SHAPE, KernelConfig(256, 1, False)).seconds
        optimised = gpu.estimate(PAPER_SHAPE, KernelConfig(64, 4, True)).seconds
        assert basic / optimised == pytest.approx(1.7, rel=0.15)


class TestScalingBehaviour:
    def test_time_linear_in_trials(self, gpu):
        config = KernelConfig(64, 4, True)
        half_shape = WorkloadShape(500_000, 1000.0, 15, 1)
        full = gpu.estimate(PAPER_SHAPE, config).seconds
        half = gpu.estimate(half_shape, config).seconds
        assert full / half == pytest.approx(2.0, rel=0.05)

    def test_time_increases_with_elts(self, gpu):
        config = KernelConfig(64, 4, True)
        few = gpu.estimate(WorkloadShape(100_000, 1000.0, 3, 1), config).seconds
        many = gpu.estimate(WorkloadShape(100_000, 1000.0, 15, 1), config).seconds
        assert many > 3 * few

    def test_estimate_breakdown_sums_sensibly(self, gpu):
        est = gpu.estimate(PAPER_SHAPE, KernelConfig(64, 4, True))
        assert est.breakdown["elt_lookup"] > 0
        assert est.seconds > 0
        assert "occupancy" in est.summary()
