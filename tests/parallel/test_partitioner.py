"""Tests for repro.parallel.partitioner."""

import numpy as np
import pytest

from repro.parallel.partitioner import (
    TrialRange,
    block_partition,
    chunk_partition,
    cyclic_partition,
    shard_partition,
)


class TestTrialRange:
    def test_size_and_iteration(self):
        r = TrialRange(3, 7)
        assert r.size == len(r) == 4
        assert list(r) == [3, 4, 5, 6]

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            TrialRange(5, 3)
        with pytest.raises(ValueError):
            TrialRange(-1, 3)


class TestBlockPartition:
    def test_covers_all_trials_exactly_once(self):
        blocks = block_partition(103, 8)
        covered = [i for block in blocks for i in block]
        assert covered == list(range(103))

    def test_block_count(self):
        assert len(block_partition(100, 7)) == 7

    def test_sizes_balanced(self):
        sizes = [block.size for block in block_partition(103, 8)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_blocks_than_trials_never_emits_empty_ranges(self):
        blocks = block_partition(3, 5)
        assert len(blocks) == 3
        assert all(block.size == 1 for block in blocks)
        assert [i for block in blocks for i in block] == [0, 1, 2]

    def test_zero_trials_yields_no_blocks(self):
        assert block_partition(0, 4) == []

    def test_single_trial_many_blocks(self):
        assert block_partition(1, 8) == [TrialRange(0, 1)]

    def test_blocks_equal_trials_boundary(self):
        blocks = block_partition(7, 7)
        assert len(blocks) == 7
        assert all(block.size == 1 for block in blocks)

    def test_never_emits_empty_ranges_across_boundaries(self):
        for n_trials in range(0, 9):
            for n_blocks in range(1, 12):
                blocks = block_partition(n_trials, n_blocks)
                assert all(block.size > 0 for block in blocks), (n_trials, n_blocks)
                assert sum(block.size for block in blocks) == n_trials

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            block_partition(-1, 2)
        with pytest.raises(ValueError):
            block_partition(10, 0)


class TestChunkPartition:
    def test_chunk_sizes(self):
        chunks = chunk_partition(10, 3)
        assert [c.size for c in chunks] == [3, 3, 3, 1]

    def test_covers_all_trials(self):
        chunks = chunk_partition(25, 4)
        covered = [i for chunk in chunks for i in chunk]
        assert covered == list(range(25))

    def test_zero_trials_yields_no_chunks(self):
        assert chunk_partition(0, 5) == []

    def test_never_emits_empty_ranges_across_boundaries(self):
        for n_trials in range(0, 9):
            for chunk_size in range(1, 12):
                chunks = chunk_partition(n_trials, chunk_size)
                assert all(chunk.size > 0 for chunk in chunks), (n_trials, chunk_size)
                assert sum(chunk.size for chunk in chunks) == n_trials

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_partition(10, 0)


class TestShardPartition:
    def test_covers_in_order_without_empties(self):
        shards = shard_partition(103, 8)
        assert len(shards) == 8
        assert [i for shard in shards for i in shard] == list(range(103))
        assert all(shard.size > 0 for shard in shards)

    def test_caps_at_trial_count(self):
        assert len(shard_partition(3, 100)) == 3

    def test_zero_trials(self):
        assert shard_partition(0, 4) == []


class TestCyclicPartition:
    def test_round_robin_assignment(self):
        parts = cyclic_partition(10, 3)
        np.testing.assert_array_equal(parts[0], [0, 3, 6, 9])
        np.testing.assert_array_equal(parts[1], [1, 4, 7])
        np.testing.assert_array_equal(parts[2], [2, 5, 8])

    def test_covers_all_trials(self):
        parts = cyclic_partition(17, 4)
        assert sorted(np.concatenate(parts).tolist()) == list(range(17))

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            cyclic_partition(10, 0)
