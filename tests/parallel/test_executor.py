"""Tests for repro.parallel.executor."""

import numpy as np
import pytest

from repro.parallel.executor import ParallelConfig, TrialBlockExecutor, available_cores
from repro.parallel.partitioner import TrialRange
from repro.parallel.scheduling import SchedulingPolicy


def _sum_block(context, block: TrialRange) -> float:
    """Top-level (picklable) block function: sum of context values in the block."""
    values = context["values"]
    return float(values[block.start : block.stop].sum())


def _square_item(context, item: int) -> int:
    return item * item


class TestAvailableCores:
    def test_positive(self):
        assert available_cores() >= 1


class TestParallelConfig:
    def test_defaults(self):
        config = ParallelConfig()
        assert config.n_workers >= 1
        assert config.policy is SchedulingPolicy.STATIC

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ParallelConfig(n_workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(start_method="threads")


class TestTrialBlockExecutor:
    def test_serial_fast_path(self):
        values = np.arange(100, dtype=np.float64)
        executor = TrialBlockExecutor(ParallelConfig(n_workers=1), context={"values": values})
        results = executor.run(_sum_block, n_trials=100)
        assert sum(results) == pytest.approx(values.sum())

    def test_multiprocess_matches_serial(self):
        values = np.arange(1000, dtype=np.float64)
        serial = TrialBlockExecutor(ParallelConfig(n_workers=1), context={"values": values})
        parallel = TrialBlockExecutor(ParallelConfig(n_workers=2), context={"values": values})
        assert sum(parallel.run(_sum_block, n_trials=1000)) == pytest.approx(
            sum(serial.run(_sum_block, n_trials=1000))
        )

    def test_results_in_submission_order(self):
        executor = TrialBlockExecutor(ParallelConfig(n_workers=2))
        results = executor.run(_square_item, work_items=[1, 2, 3, 4, 5])
        assert results == [1, 4, 9, 16, 25]

    def test_dynamic_schedule_covers_all_trials(self):
        values = np.ones(500, dtype=np.float64)
        config = ParallelConfig(n_workers=2, policy=SchedulingPolicy.DYNAMIC, oversubscription=8)
        executor = TrialBlockExecutor(config, context={"values": values})
        assert sum(executor.run(_sum_block, n_trials=500)) == pytest.approx(500.0)

    def test_context_factory_used(self):
        executor = TrialBlockExecutor(
            ParallelConfig(n_workers=1),
            context_factory=lambda: {"values": np.full(10, 2.0)},
        )
        results = executor.run(_sum_block, n_trials=10)
        assert sum(results) == pytest.approx(20.0)

    def test_empty_work_items(self):
        executor = TrialBlockExecutor(ParallelConfig(n_workers=2))
        assert executor.run(_square_item, work_items=[]) == []

    def test_requires_work_items_or_trials(self):
        with pytest.raises(ValueError):
            TrialBlockExecutor().run(_square_item)

    def test_schedule_for_matches_config(self):
        config = ParallelConfig(n_workers=3, policy=SchedulingPolicy.STATIC)
        schedule = TrialBlockExecutor(config).schedule_for(99)
        assert schedule.n_blocks == 3
        assert schedule.total_trials() == 99
