"""The worker protocol, exercised against an in-process FleetWorker.

One live worker per module (session state is digest-keyed and append-only),
driven through real sockets by :class:`WorkerClient` — the same client the
fleet coordinator uses.
"""

from __future__ import annotations

import pickle
import re

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.distributed import FleetWorker, MissingArtifact, WorkerError
from repro.distributed.fleet import WorkerClient, probe_worker
from repro.distributed.protocol import encode_config
from repro.parallel.partitioner import TrialRange
from repro.service.digests import program_digest, yet_digest
from repro.yet.io import yet_to_bytes


CONFIG = EngineConfig(backend="vectorized")


@pytest.fixture(scope="module")
def worker():
    with FleetWorker(config=CONFIG, name="proto-test") as live:
        yield live


@pytest.fixture()
def client(worker):
    with WorkerClient(worker.address, timeout=30.0) as live:
        yield live


class TestControlOps:
    def test_ping(self, client):
        reply = client.ping()
        assert reply["ok"] is True
        assert reply["worker"] == "proto-test"

    def test_status_names_backend_and_caches(self, client):
        status = client.status()
        assert status["worker"] == "proto-test"
        assert status["backend"] == "vectorized"
        assert set(status["plan_cache"]) == {"entries", "hits", "misses"}

    def test_unknown_op_is_a_structured_error(self, client):
        with pytest.raises(WorkerError, match="unknown op"):
            client.request({"op": "frobnicate"})

    def test_errors_do_not_poison_the_connection(self, client):
        with pytest.raises(WorkerError):
            client.request({"op": "frobnicate"})
        assert client.ping()["ok"] is True

    def test_probe_worker_reachable(self, worker):
        report = probe_worker(worker.address)
        assert report == {"reachable": True, "worker": "proto-test"}

    def test_probe_worker_unreachable_never_raises(self):
        report = probe_worker("127.0.0.1:1", timeout=0.5)
        assert report["reachable"] is False
        assert report["error"]


class TestArtifactShipping:
    def test_put_program_digest_mismatch_rejected(self, client, tiny_workload):
        payload = pickle.dumps(tiny_workload.program)
        with pytest.raises(WorkerError, match="digest mismatch"):
            client.put_program("0" * 64, payload)

    def test_run_shard_before_shipping_names_what_is_missing(
        self, client, tiny_workload
    ):
        digest = program_digest(tiny_workload.program)
        ydigest = yet_digest(tiny_workload.yet)
        with pytest.raises(MissingArtifact) as excinfo:
            client.run_shard(
                digest,
                {"kind": "inline", "digest": ydigest},
                encode_config(CONFIG),
                TrialRange(0, 8),
            )
        missing = excinfo.value.missing
        assert missing.get("program") == digest
        assert missing.get("yet") == ydigest


class TestRunShard:
    def test_shard_matches_monolithic_columns(self, client, tiny_workload):
        program, yet = tiny_workload.program, tiny_workload.yet
        digest = program_digest(program)
        ydigest = yet_digest(yet)
        client.put_program(digest, pickle.dumps(program))
        client.put_yet(ydigest, yet_to_bytes(yet))

        partial = client.run_shard(
            digest,
            {"kind": "inline", "digest": ydigest},
            encode_config(CONFIG),
            TrialRange(16, 48),
        )
        mono = AggregateRiskEngine(CONFIG).run(program, yet)
        assert partial.trials == TrialRange(16, 48)
        assert np.array_equal(partial.losses, mono.ylt.losses[:, 16:48])
        assert partial.details["worker"] == "proto-test"

    def test_warm_digests_hit_the_plan_cache(self, client, tiny_workload):
        program, yet = tiny_workload.program, tiny_workload.yet
        digest = program_digest(program)
        ydigest = yet_digest(yet)
        client.put_program(digest, pickle.dumps(program))
        client.put_yet(ydigest, yet_to_bytes(yet))

        ref = {"kind": "inline", "digest": ydigest}
        first = client.run_shard(digest, ref, encode_config(CONFIG), TrialRange(0, 16))
        again = client.run_shard(digest, ref, encode_config(CONFIG), TrialRange(0, 16))
        assert first.details["plan_cache_hit"] is False
        assert again.details["plan_cache_hit"] is True
        assert np.array_equal(first.losses, again.losses)

    def test_unknown_yet_ref_kind_rejected(self, client, tiny_workload):
        digest = program_digest(tiny_workload.program)
        client.put_program(digest, pickle.dumps(tiny_workload.program))
        with pytest.raises(WorkerError, match="kind"):
            client.run_shard(
                digest, {"kind": "carrier-pigeon"}, encode_config(CONFIG), TrialRange(0, 8)
            )


class TestShutdownAndStats:
    def test_stats_line_matches_the_serve_shape(self, worker):
        # Satellite contract: `are worker` prints the same stats-line shape
        # on shutdown that `are serve` does.
        line = worker.stats_line()
        assert re.fullmatch(
            r"served \d+ requests \| plan-cache: \d+/\d+ entries, "
            r"\d+ hits / \d+ misses \(\d+% hit rate\), \d+ evictions",
            line,
        ), line

    def test_shutdown_op_stops_the_worker(self):
        with FleetWorker(config=CONFIG) as live:
            with WorkerClient(live.address, timeout=10.0) as client:
                reply = client.shutdown()
            assert reply["stopping"] is True
            assert reply["stats"].startswith("served ")
            live.wait(timeout=10.0)
            assert not live.is_serving()
