"""The PartialResult wire format: round-trips and decode validation.

The wire payload reuses the ``.npy`` block layout of ``PartialResult.save``/
``load`` behind a fixed ``ARPT`` header, so a corrupted or truncated frame
must fail loudly on decode — never produce a plausible but wrong block.
"""

from __future__ import annotations

import io
import json
import struct

import numpy as np
import pytest

from repro.core.results import (
    _WIRE_HEADER,
    _WIRE_MAGIC,
    _WIRE_U64,
    _WIRE_VERSION,
    PartialResult,
)
from repro.parallel.partitioner import TrialRange


def make_partial(start=4, stop=9, n_rows=3, with_occurrence=True, details=None):
    rng = np.random.default_rng(start * 1000 + stop)
    losses = rng.random((n_rows, stop - start)) * 1e6
    occurrence = rng.random((n_rows, stop - start)) * 1e5 if with_occurrence else None
    return PartialResult(
        trials=TrialRange(start, stop),
        losses=losses,
        max_occurrence=occurrence,
        details=details if details is not None else {"worker": "w-1", "backend": "vectorized"},
    )


class TestRoundTrip:
    def test_round_trip_bit_identical(self):
        partial = make_partial()
        decoded = PartialResult.from_bytes(partial.to_bytes())
        assert decoded.trials == partial.trials
        assert np.array_equal(decoded.losses, partial.losses)
        assert np.array_equal(decoded.max_occurrence, partial.max_occurrence)
        assert dict(decoded.details) == dict(partial.details)

    def test_round_trip_without_occurrence(self):
        partial = make_partial(with_occurrence=False, details={})
        decoded = PartialResult.from_bytes(partial.to_bytes())
        assert decoded.max_occurrence is None
        assert np.array_equal(decoded.losses, partial.losses)
        assert dict(decoded.details) == {}

    def test_details_survive_the_wire(self):
        partial = make_partial(details={"worker": "fleet-7", "plan_cache_hit": True})
        decoded = PartialResult.from_bytes(partial.to_bytes())
        assert decoded.details["worker"] == "fleet-7"
        assert decoded.details["plan_cache_hit"] is True
        assert decoded.origin() == "worker=fleet-7"

    def test_wire_blocks_match_npy_save(self):
        # The array blocks on the wire are the identical bytes np.save
        # writes — the invariant that keeps the disk and wire formats from
        # drifting apart.
        partial = make_partial(with_occurrence=False, details={})
        payload = partial.to_bytes()
        buffer = io.BytesIO()
        np.save(buffer, partial.losses)
        assert payload.endswith(buffer.getvalue())

    def test_empty_range_round_trips(self):
        partial = PartialResult(
            trials=TrialRange(5, 5), losses=np.zeros((2, 0)), details={}
        )
        decoded = PartialResult.from_bytes(partial.to_bytes())
        assert decoded.trials == TrialRange(5, 5)
        assert decoded.losses.shape == (2, 0)


class TestDecodeValidation:
    def test_truncated_header(self):
        with pytest.raises(ValueError, match="truncated"):
            PartialResult.from_bytes(b"ARP")

    def test_truncated_block(self):
        payload = make_partial().to_bytes()
        with pytest.raises(ValueError, match="truncated"):
            PartialResult.from_bytes(payload[:-10])

    def test_bad_magic(self):
        payload = bytearray(make_partial().to_bytes())
        payload[:4] = b"NOPE"
        with pytest.raises(ValueError, match="magic"):
            PartialResult.from_bytes(bytes(payload))

    def test_unsupported_version(self):
        payload = bytearray(make_partial().to_bytes())
        payload[4] = _WIRE_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            PartialResult.from_bytes(bytes(payload))

    def test_trailing_bytes_rejected(self):
        payload = make_partial().to_bytes()
        with pytest.raises(ValueError, match="trailing"):
            PartialResult.from_bytes(payload + b"\x00")

    def test_width_mismatch_rejected(self):
        # Widen the framed trial range without touching the block: the
        # decoded losses no longer cover the claimed trials.
        payload = bytearray(make_partial(start=4, stop=9).to_bytes())
        stop_offset = _WIRE_HEADER.size + _WIRE_U64.size
        payload[stop_offset : stop_offset + 8] = _WIRE_U64.pack(10)
        with pytest.raises(ValueError, match="covers"):
            PartialResult.from_bytes(bytes(payload))

    @pytest.mark.parametrize(
        "array",
        [
            np.ones((2, 5), dtype=np.float32),
            np.ones(5, dtype=np.float64),
        ],
        ids=["float32", "1-D"],
    )
    def test_wrong_losses_block_rejected(self, array):
        out = io.BytesIO()
        out.write(_WIRE_HEADER.pack(_WIRE_MAGIC, _WIRE_VERSION, 0))
        out.write(_WIRE_U64.pack(0))
        out.write(_WIRE_U64.pack(5))
        details = json.dumps({}).encode()
        out.write(_WIRE_U64.pack(len(details)))
        out.write(details)
        block = io.BytesIO()
        np.save(block, array)
        blob = block.getvalue()
        out.write(_WIRE_U64.pack(len(blob)))
        out.write(blob)
        with pytest.raises(ValueError, match="2-D float64"):
            PartialResult.from_bytes(out.getvalue())

    def test_occurrence_shape_mismatch_rejected(self):
        partial = make_partial(with_occurrence=True)
        good = bytearray(partial.to_bytes())
        # Rebuild the frame with an occurrence block of the wrong shape.
        out = io.BytesIO()
        out.write(_WIRE_HEADER.pack(_WIRE_MAGIC, _WIRE_VERSION, 1))
        out.write(_WIRE_U64.pack(partial.trials.start))
        out.write(_WIRE_U64.pack(partial.trials.stop))
        details = json.dumps({}).encode()
        out.write(_WIRE_U64.pack(len(details)))
        out.write(details)
        for array in (partial.losses, partial.max_occurrence[:, :-1]):
            block = io.BytesIO()
            np.save(block, array)
            blob = block.getvalue()
            out.write(_WIRE_U64.pack(len(blob)))
            out.write(blob)
        with pytest.raises(ValueError, match="max-occurrence"):
            PartialResult.from_bytes(out.getvalue())
        # sanity: the untampered frame still decodes
        PartialResult.from_bytes(bytes(good))

    def test_pickle_blocks_refused(self):
        # An object-dtype block requires pickle, which the decoder forbids.
        out = io.BytesIO()
        out.write(_WIRE_HEADER.pack(_WIRE_MAGIC, _WIRE_VERSION, 0))
        out.write(_WIRE_U64.pack(0))
        out.write(_WIRE_U64.pack(1))
        details = json.dumps({}).encode()
        out.write(_WIRE_U64.pack(len(details)))
        out.write(details)
        block = io.BytesIO()
        np.save(block, np.array([[object()]], dtype=object), allow_pickle=True)
        blob = block.getvalue()
        out.write(_WIRE_U64.pack(len(blob)))
        out.write(blob)
        with pytest.raises(ValueError):
            PartialResult.from_bytes(out.getvalue())
