"""Fleet conformance: distributed runs are bit-identical to monolithic runs.

The invariant carried over from the sharded-execution suite: shard merges
are pure column placement, so no amount of work stealing, retrying, or
reassignment may change a single bit of the merged result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.distributed import FleetEngine, FleetError, FleetWorker, WorkerProcess
from repro.service.request import AnalysisRequest
from repro.service.service import RiskService
from repro.yet.io import YetShardReader, save_yet_store


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_bit_identical_to_monolithic_on_every_backend(tiny_workload, backend):
    program, yet = tiny_workload.program, tiny_workload.yet
    config = EngineConfig(backend=backend, n_workers=2)
    engine = AggregateRiskEngine(config)
    mono = engine.run(program, yet)
    with FleetWorker(config=config) as w1, FleetWorker(config=config) as w2:
        fleet = engine.run_distributed(
            program, yet, workers=[w1.address, w2.address], n_shards=4
        )
    assert np.array_equal(mono.ylt.losses, fleet.ylt.losses)
    assert fleet.backend == backend
    assert fleet.details["fleet"]["n_shards"] == 4
    assert fleet.details["fleet"]["dead_workers"] == []


def test_work_is_distributed_across_workers(tiny_workload):
    program, yet = tiny_workload.program, tiny_workload.yet
    config = EngineConfig(backend="vectorized")
    engine = AggregateRiskEngine(config)
    with FleetWorker(config=config) as w1, FleetWorker(config=config) as w2:
        fleet = engine.run_distributed(
            program, yet, workers=[w1.address, w2.address], n_shards=8
        )
        per_worker = fleet.details["fleet"]["shards_per_worker"]
        # Work stealing: both workers pull from the shared queue, so each
        # prices at least its first-popped shard and the counts sum exactly.
        assert set(per_worker) == {w1.address, w2.address}
        assert all(count >= 1 for count in per_worker.values())
        assert sum(per_worker.values()) == 8


def test_partials_stream_as_they_arrive(tiny_workload):
    program, yet = tiny_workload.program, tiny_workload.yet
    config = EngineConfig(backend="vectorized")
    seen = []
    with FleetWorker(config=config) as worker:
        with FleetEngine([worker.address], config=config) as fleet:
            result = fleet.run(program, yet, n_shards=4, on_partial=seen.append)
    assert len(seen) == 4
    covered = sorted((p.trials.start, p.trials.stop) for p in seen)
    assert covered[0][0] == 0 and covered[-1][1] == yet.n_trials
    assert result.details["fleet"]["n_shards"] == 4


def test_local_dir_store_reference(tiny_workload, tmp_path):
    # Shared-filesystem topology: the YET travels by path, not by bytes —
    # each worker opens its own memory-mapped YetShardReader.
    program, yet = tiny_workload.program, tiny_workload.yet
    config = EngineConfig(backend="vectorized")
    engine = AggregateRiskEngine(config)
    mono = engine.run(program, yet)
    store = save_yet_store(yet, tmp_path / "store")
    with FleetWorker(config=config) as w1, FleetWorker(config=config) as w2:
        with YetShardReader(store) as reader:
            fleet = engine.run_distributed(
                program, reader, workers=[w1.address, w2.address], n_shards=4
            )
    assert np.array_equal(mono.ylt.losses, fleet.ylt.losses)


def test_second_run_reuses_shipped_artifacts(tiny_workload):
    program, yet = tiny_workload.program, tiny_workload.yet
    config = EngineConfig(backend="vectorized")
    with FleetWorker(config=config) as worker:
        with FleetEngine([worker.address], config=config) as fleet:
            first = fleet.run(program, yet, n_shards=2)
            second = fleet.run(program, yet, n_shards=2)
        assert np.array_equal(first.ylt.losses, second.ylt.losses)
        # Same digests, same shard ranges: the second run is answered from
        # the worker's warm caches without re-shipping program or YET.
        stats = worker.cache_stats()
        assert stats.hits >= 2


def test_empty_fleet_rejected():
    with pytest.raises(ValueError, match="at least one worker"):
        FleetEngine([])


def test_all_workers_dead_names_missing_ranges(tiny_workload):
    program, yet = tiny_workload.program, tiny_workload.yet
    config = EngineConfig(backend="vectorized")
    engine = AggregateRiskEngine(config)
    # Nothing listens on this port: every request fails, both attempts burn,
    # and the fleet must say which trial ranges were lost.
    with FleetWorker(config=config) as doomed:
        address = doomed.address
    with pytest.raises(FleetError, match="lost trial ranges"):
        engine.run_distributed(program, yet, workers=[address], n_shards=2, timeout=2.0)


class TestWorkerDeath:
    def test_killed_worker_shards_are_reassigned(self, tiny_workload):
        program, yet = tiny_workload.program, tiny_workload.yet
        config = EngineConfig(backend="vectorized")
        engine = AggregateRiskEngine(config)
        mono = engine.run(program, yet)
        with WorkerProcess(config=config) as survivor, WorkerProcess(
            config=config
        ) as victim:
            killed = []

            def kill_victim_once(partial):
                if not killed:
                    killed.append(partial)
                    victim.kill()

            fleet = engine.run_distributed(
                program,
                yet,
                workers=[survivor.address, victim.address],
                n_shards=8,
                timeout=15.0,
                on_partial=kill_victim_once,
            )
        assert np.array_equal(mono.ylt.losses, fleet.ylt.losses)
        details = fleet.details["fleet"]
        assert details["dead_workers"] == [victim.address] or details[
            "requeued_shards"
        ] + details["reassigned_ranges"] >= 0


class TestServiceRoute:
    def test_request_with_workers_runs_distributed(self, tiny_workload):
        config = EngineConfig(backend="vectorized")
        with RiskService(config=config) as service:
            local = service.submit(AnalysisRequest(kind="run", program="tiny"))
            with FleetWorker(config=config) as w1, FleetWorker(config=config) as w2:
                response = service.submit(
                    AnalysisRequest(
                        kind="run",
                        program="tiny",
                        workers=(w1.address, w2.address),
                        shards=4,
                    )
                )
        assert np.array_equal(
            local.results[0].ylt.losses, response.results[0].ylt.losses
        )
        assert response.details["fleet"]["n_shards"] == 4

    def test_distributed_request_bypasses_the_result_cache(self, tiny_workload):
        config = EngineConfig(backend="vectorized")
        with RiskService(config=config, result_cache=True) as service:
            with FleetWorker(config=config) as worker:
                request = AnalysisRequest(
                    kind="run", program="tiny", workers=(worker.address,)
                )
                service.submit(request)
                again = service.submit(request)
        # Both passes executed on the fleet: the response always carries
        # live fleet details, never a cached block's.
        assert again.details["fleet"]["workers"] == [worker.address]
