"""Tests for repro.hazard.intensity."""

import numpy as np
import pytest

from repro.catalog.generator import CatalogGenerator
from repro.hazard.intensity import RegionalFootprintModel


@pytest.fixture(scope="module")
def catalog():
    return CatalogGenerator(n_regions=6).generate(400, rng=11)


class TestRegionalFootprintModel:
    def test_matrix_shape(self, catalog):
        model = RegionalFootprintModel()
        matrix = model.intensity_matrix(catalog, n_regions=6)
        assert matrix.shape == (catalog.size, 6)

    def test_primary_region_has_full_intensity(self, catalog):
        model = RegionalFootprintModel(spill_fraction=0.3)
        matrix = model.intensity_matrix(catalog, n_regions=6)
        rows = np.arange(catalog.size)
        primary = matrix[rows, np.clip(catalog.regions, 0, 5)]
        expected = np.maximum(catalog.intensities, model.intensity_floor)
        np.testing.assert_allclose(primary, expected)

    def test_spill_attenuated(self, catalog):
        model = RegionalFootprintModel(spill_fraction=0.25)
        matrix = model.intensity_matrix(catalog, n_regions=6)
        # Pick an event whose region has both neighbours inside the grid.
        interior = np.nonzero((catalog.regions > 0) & (catalog.regions < 5))[0][0]
        region = int(catalog.regions[interior])
        primary = matrix[interior, region]
        left = matrix[interior, region - 1]
        assert left == pytest.approx(0.25 * primary)

    def test_no_spill_when_fraction_zero(self, catalog):
        model = RegionalFootprintModel(spill_fraction=0.0)
        matrix = model.intensity_matrix(catalog, n_regions=6)
        assert (np.count_nonzero(matrix, axis=1) == 1).all()

    def test_affected_regions_listing(self, catalog):
        model = RegionalFootprintModel(spill_fraction=0.5)
        affected = model.affected_regions(catalog, n_regions=6)
        assert len(affected) == catalog.size
        assert all(1 <= regions.size <= 3 for regions in affected)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RegionalFootprintModel(spill_fraction=1.5)
        with pytest.raises(ValueError):
            RegionalFootprintModel().intensity_matrix(
                CatalogGenerator(n_regions=2).generate(10, rng=1), n_regions=0
            )
