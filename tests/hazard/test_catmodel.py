"""Tests for repro.hazard.catmodel (catalog + exposure -> ELT)."""

import numpy as np
import pytest

from repro.catalog.generator import CatalogGenerator
from repro.exposure.generator import ExposureGenerator
from repro.exposure.geography import RegionGrid
from repro.financial.terms import FinancialTerms
from repro.hazard.catmodel import CatastropheModel, CatModelSettings


N_REGIONS = 8


@pytest.fixture(scope="module")
def catalog():
    return CatalogGenerator(n_regions=N_REGIONS).generate_with_rate(3000, 100.0, rng=21)


@pytest.fixture(scope="module")
def portfolio():
    return ExposureGenerator(RegionGrid(1, N_REGIONS)).generate("cedant", 200, home_region=2, rng=22)


class TestCatModelSettings:
    def test_defaults_valid(self):
        CatModelSettings()

    @pytest.mark.parametrize("kwargs", [
        dict(loss_threshold=-1.0),
        dict(intensity_scale=0.0),
        dict(demand_surge=0.5),
    ])
    def test_invalid_settings(self, kwargs):
        with pytest.raises(ValueError):
            CatModelSettings(**kwargs)


class TestCatastropheModel:
    def test_elt_structure(self, catalog, portfolio):
        model = CatastropheModel(catalog, n_regions=N_REGIONS)
        elt = model.generate_elt(portfolio)
        assert elt.catalog_size == catalog.size
        assert elt.size > 0
        assert (elt.losses > 0).all()
        assert elt.name == portfolio.name

    def test_elt_sparse_relative_to_catalog(self, catalog, portfolio):
        model = CatastropheModel(catalog, n_regions=N_REGIONS)
        elt = model.generate_elt(portfolio)
        # The portfolio touches at most 3 of 8 regions (home +/- 1), and the
        # footprints spill one region each way, so well under the full
        # catalog should produce losses.
        assert elt.size < 0.8 * catalog.size

    def test_only_events_near_exposure_produce_losses(self, catalog, portfolio):
        model = CatastropheModel(catalog, n_regions=N_REGIONS)
        elt = model.generate_elt(portfolio)
        exposure_regions = set(int(r) for r in np.unique(portfolio.regions))
        reachable = set()
        for region in exposure_regions:
            reachable.update({region - 1, region, region + 1})
        event_regions = set(int(r) for r in catalog.regions[elt.event_ids])
        assert event_regions.issubset(reachable)

    def test_losses_scale_with_exposure_value(self, catalog, portfolio):
        model = CatastropheModel(catalog, n_regions=N_REGIONS)
        base = model.event_losses(portfolio)
        # Doubling every replacement value doubles the expected losses.
        import copy

        doubled = copy.deepcopy(portfolio)
        doubled.replacement_values = portfolio.replacement_values * 2.0
        scaled = model.event_losses(doubled)
        np.testing.assert_allclose(scaled, base * 2.0, rtol=1e-9)

    def test_demand_surge_scales_losses(self, catalog, portfolio):
        plain = CatastropheModel(catalog, n_regions=N_REGIONS)
        surged = CatastropheModel(
            catalog, n_regions=N_REGIONS, settings=CatModelSettings(demand_surge=1.2)
        )
        np.testing.assert_allclose(
            surged.event_losses(portfolio), plain.event_losses(portfolio) * 1.2, rtol=1e-9
        )

    def test_loss_threshold_filters_records(self, catalog, portfolio):
        low = CatastropheModel(
            catalog, n_regions=N_REGIONS, settings=CatModelSettings(loss_threshold=1.0)
        ).generate_elt(portfolio)
        high = CatastropheModel(
            catalog, n_regions=N_REGIONS, settings=CatModelSettings(loss_threshold=1e7)
        ).generate_elt(portfolio)
        assert high.size < low.size

    def test_financial_terms_attached(self, catalog, portfolio):
        model = CatastropheModel(catalog, n_regions=N_REGIONS)
        terms = FinancialTerms(share=0.5)
        elt = model.generate_elt(portfolio, terms=terms)
        assert elt.terms.share == 0.5

    def test_generate_elts_multiple(self, catalog):
        generator = ExposureGenerator(RegionGrid(1, N_REGIONS))
        portfolios = generator.generate_many(3, 100, rng=30)
        model = CatastropheModel(catalog, n_regions=N_REGIONS)
        elts = model.generate_elts(portfolios)
        assert len(elts) == 3
        assert len({elt.name for elt in elts}) == 3

    def test_invalid_region_count(self, catalog):
        with pytest.raises(ValueError):
            CatastropheModel(catalog, n_regions=0)
