"""Golden conformance of trial-sharded execution and exact merging.

The acceptance contract of the sharded refactor: on every backend, with the
fused path and the per-layer ablation alike, executing a plan as any number
of disjoint trial shards — whether internally (``EngineConfig.trial_shards``
/ ``plan.n_shards``) or externally (``plan.shard(n)`` run one plan at a time
and merged through a :class:`~repro.core.results.ResultAccumulator`) —
produces results **bit-identical** to the monolithic plan path.  The merge
is pure column placement over trial-local reductions, so there is no
tolerance to hide behind.

The out-of-core leg: a YET store larger than the shard budget is priced
through :class:`~repro.yet.io.YetShardReader` with peak traced memory
bounded by one shard plus the accumulator — far below what materialising
the whole table costs the monolithic run.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.plan import PlanBuilder
from repro.core.results import ResultAccumulator
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.yet.io import YetShardReader, save_yet_store

#: Multicore runs use two workers so block stitching composes with sharding.
N_WORKERS = 2

#: Shard counts covering the boundaries: a divisor of the trial count, a
#: non-divisor, more shards than some blocks, and one (the monolithic loop).
SHARD_COUNTS = (1, 2, 5, 7)


@pytest.fixture(scope="module")
def workload():
    """A seeded workload wide enough (4 layers) for fusion and dedup."""
    spec = WorkloadSpec(
        n_trials=57,
        events_per_trial=22,
        n_layers=4,
        elts_per_layer=3,
        catalog_size=900,
        buildings_per_exposure=40,
        n_regions=6,
        fixed_trial_length=False,
        seed=2012,
    )
    return WorkloadGenerator(spec).generate()


def _assert_identical(lhs_ylt, rhs_ylt):
    assert np.array_equal(lhs_ylt.losses, rhs_ylt.losses)
    if rhs_ylt.max_occurrence_losses is None:
        assert lhs_ylt.max_occurrence_losses is None
    else:
        assert np.array_equal(lhs_ylt.max_occurrence_losses, rhs_ylt.max_occurrence_losses)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("fused", (True, False), ids=["fused", "per-layer"])
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_internal_sharding_bit_identical(workload, backend, fused, n_shards):
    """config.trial_shards never moves a bit, on any backend or path."""
    base = EngineConfig(backend=backend, n_workers=N_WORKERS, fused_layers=fused)
    monolithic = AggregateRiskEngine(base).run(workload.program, workload.yet)
    sharded = AggregateRiskEngine(base.replace(trial_shards=n_shards)).run(
        workload.program, workload.yet
    )
    _assert_identical(sharded.ylt, monolithic.ylt)
    assert sharded.details["trial_shards"] == min(n_shards, workload.yet.n_trials)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_external_shard_merge_bit_identical(workload, backend):
    """plan.shard(n) run independently + accumulated == monolithic, exactly.

    Partials are added in reverse order to prove order independence — the
    distributed scenario, where shards complete whenever their worker does.
    """
    engine = AggregateRiskEngine(EngineConfig(backend=backend, n_workers=N_WORKERS))
    plan = PlanBuilder.from_program(workload.program, workload.yet)
    monolithic = engine.run_plan(plan)

    accumulator = ResultAccumulator.for_plan(plan)
    shard_plans = plan.shard(4)
    assert [p.trials.size for p in shard_plans] == [15, 14, 14, 14]
    for shard_plan in reversed(shard_plans):
        assert not accumulator.is_complete
        accumulator.add_result(engine.run_plan(shard_plan))
    assert accumulator.is_complete
    _assert_identical(accumulator.to_ylt(), monolithic.ylt)


def test_accumulator_merge_across_accumulators_bit_identical(workload):
    """Merging per-process accumulators equals accumulating locally."""
    engine = AggregateRiskEngine(EngineConfig())
    plan = PlanBuilder.from_program(workload.program, workload.yet)
    monolithic = engine.run_plan(plan)

    shard_plans = plan.shard(4)
    left = ResultAccumulator.for_plan(plan)
    right = ResultAccumulator.for_plan(plan)
    for shard_plan in shard_plans[:2]:
        left.add_result(engine.run_plan(shard_plan))
    for shard_plan in shard_plans[2:]:
        right.add_result(engine.run_plan(shard_plan))
    assert not left.is_complete and not right.is_complete
    left.merge(right)
    _assert_identical(left.to_ylt(), monolithic.ylt)


def test_sharded_run_many_and_dedupe_bit_identical(workload):
    """Sharding composes with batched plans and row deduplication."""
    from repro.financial.terms import LayerTerms
    from repro.portfolio.program import ReinsuranceProgram

    program = workload.program
    variant = ReinsuranceProgram(
        [
            layer.with_terms(
                LayerTerms(occurrence_retention=layer.terms.occurrence_retention * 1.5)
            )
            for layer in program.layers
        ],
        name="variant",
    )
    reference = AggregateRiskEngine(EngineConfig()).run_many(
        [program, variant], workload.yet
    )
    sharded = AggregateRiskEngine(EngineConfig(trial_shards=3)).run_many(
        [program, variant], workload.yet
    )
    for lhs, rhs in zip(sharded, reference):
        _assert_identical(lhs.ylt, rhs.ylt)


def test_sharded_run_stacked_bit_identical(workload):
    """Synthetic (stacked) plans shard exactly like program plans."""
    program = workload.program
    stack = np.stack(
        [layer.loss_matrix().combined_net_losses() for layer in program.layers]
    )
    terms = [layer.terms for layer in program.layers]
    reference = AggregateRiskEngine(EngineConfig()).run_stacked(
        stack, terms, workload.yet
    )
    sharded = AggregateRiskEngine(EngineConfig(trial_shards=4)).run_stacked(
        stack, terms, workload.yet
    )
    _assert_identical(sharded.ylt, reference.ylt)


def test_sharded_cumulative_ablation_close(workload):
    """use_aggregate_shortcut=False shards agree at 1e-9 (documented bound).

    The cumulative ablation computes within-trial prefixes from a global
    cumulative sum, so shard boundaries can move the last couple of bits;
    the default telescoped shortcut is the bit-exact path.
    """
    base = EngineConfig(use_aggregate_shortcut=False)
    monolithic = AggregateRiskEngine(base).run(workload.program, workload.yet)
    sharded = AggregateRiskEngine(base.replace(trial_shards=5)).run(
        workload.program, workload.yet
    )
    np.testing.assert_allclose(
        sharded.ylt.losses, monolithic.ylt.losses, rtol=1e-9, atol=1e-6
    )


def test_sharded_without_max_occurrence(workload):
    """record_max_occurrence=False flows through the accumulator as None."""
    result = AggregateRiskEngine(
        EngineConfig(trial_shards=3, record_max_occurrence=False)
    ).run(workload.program, workload.yet)
    assert result.ylt.max_occurrence_losses is None


def test_shard_plans_share_one_stack(workload):
    """Sharding a plan must not duplicate the fused loss stack."""
    plan = PlanBuilder.from_program(workload.program, workload.yet)
    shard_plans = plan.shard(3)
    stacks = {id(p.stack()) for p in shard_plans}
    assert stacks == {id(plan.stack())}


class TestOutOfCore:
    """Pricing a stored YET larger than the shard budget, memory bounded."""

    @pytest.fixture(scope="class")
    def big_workload(self):
        spec = WorkloadSpec(
            n_trials=1600,
            events_per_trial=60,
            n_layers=4,
            elts_per_layer=2,
            catalog_size=1500,
            buildings_per_exposure=30,
            n_regions=6,
            fixed_trial_length=False,
            seed=77,
        )
        return WorkloadGenerator(spec).generate()

    def test_out_of_core_bit_identical_and_memory_bounded(
        self, big_workload, tmp_path
    ):
        """run_sharded over a YetShardReader == in-memory run, bit for bit,
        with peak resident memory bounded by one shard plus the accumulator.
        """
        workload = big_workload
        store = save_yet_store(workload.yet, tmp_path / "yet_store")
        engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))

        # Shard budget of a quarter of the event columns -> >= 4 shards: the
        # stored table is, by construction, larger than one shard's budget.
        event_bytes = workload.yet.event_ids.nbytes + workload.yet.timestamps.nbytes
        budget = event_bytes // 4

        monolithic = engine.run(workload.program, workload.yet)
        # Warm the layers' dense matrices so the traced peak measures the
        # execution working set, not one-time lowering artifacts.
        for layer in workload.program.layers:
            layer.loss_matrix().combined_net_losses()

        tracemalloc.start()
        try:
            with YetShardReader(store) as reader:
                n_shards = reader.shard_count_for_budget(budget)
                assert n_shards >= 4
                assert reader.event_bytes > budget
                tracemalloc.reset_peak()
                sharded = engine.run_sharded(workload.program, reader, n_shards)
                _, sharded_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

        assert np.array_equal(sharded.ylt.losses, monolithic.ylt.losses)
        assert np.array_equal(
            sharded.ylt.max_occurrence_losses, monolithic.ylt.max_occurrence_losses
        )
        assert sharded.details["sharded"]["n_shards"] == n_shards

        # The bound: one shard's YET columns + the fused gather over that
        # shard + the accumulated year-loss blocks + the stack, with a 3x
        # slack factor for scratch buffers.  Holding the whole table (or the
        # monolithic whole-YET gather) would blow far past it.
        n_rows = workload.program.n_layers
        shard_events = -(-workload.yet.n_occurrences // n_shards)
        shard_bytes = shard_events * (8 + 8)            # ids + timestamps
        gather_bytes = n_rows * shard_events * 8        # fused (n_rows, events) buffer
        accumulator_bytes = 2 * n_rows * workload.yet.n_trials * 8
        stack_bytes = n_rows * workload.yet.catalog_size * 8
        bound = 3 * (shard_bytes + gather_bytes) + accumulator_bytes + stack_bytes
        assert sharded_peak < bound
        # And strictly below what the monolithic gather alone costs.
        monolithic_gather = n_rows * workload.yet.n_occurrences * 8
        assert sharded_peak < monolithic_gather

    def test_reader_budget_shards_cover_all_trials(self, big_workload, tmp_path):
        workload = big_workload
        store = save_yet_store(workload.yet, tmp_path / "yet_store_cover")
        with YetShardReader(store) as reader:
            ranges = reader.shard_ranges(9)
            assert ranges[0].start == 0 and ranges[-1].stop == workload.yet.n_trials
            covered = 0
            for trials, shard_yet in reader.iter_shards(9):
                assert shard_yet.n_trials == trials.size
                covered += trials.size
            assert covered == workload.yet.n_trials
