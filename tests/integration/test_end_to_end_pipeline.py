"""Integration: the full analytical pipeline from catalog to risk report.

Covers the three stages the paper's introduction describes: catastrophe
modelling (catalog + exposure -> ELT), aggregate analysis (ELT + YET -> YLT)
and portfolio risk management (YLT -> PML / TVaR / pricing).
"""

import numpy as np
import pytest

from repro.catalog.generator import CatalogGenerator
from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.exposure.generator import ExposureGenerator
from repro.exposure.geography import RegionGrid
from repro.financial.contracts import aggregate_xl_terms, occurrence_xl_terms
from repro.financial.terms import FinancialTerms
from repro.hazard.catmodel import CatastropheModel
from repro.portfolio.layer import Layer
from repro.portfolio.pricing import price_layer
from repro.portfolio.program import ReinsuranceProgram
from repro.portfolio.rollup import portfolio_rollup
from repro.yet.io import load_yet, save_yet
from repro.yet.simulator import YETSimulator
from repro.ylt.ep_curve import aep_curve, oep_curve
from repro.ylt.metrics import compute_risk_metrics
from repro.ylt.reporting import format_metrics_report

N_REGIONS = 12


@pytest.fixture(scope="module")
def pipeline_outputs(tmp_path_factory):
    # Stage 0: stochastic catalog.
    catalog = CatalogGenerator(n_regions=N_REGIONS).generate_with_rate(3000, 60.0, rng=7)

    # Stage 1: exposure sets and catastrophe model -> ELTs.
    exposures = ExposureGenerator(RegionGrid(1, N_REGIONS)).generate_many(6, 80, rng=8)
    cat_model = CatastropheModel(catalog, n_regions=N_REGIONS)
    elts = cat_model.generate_elts(exposures, terms=FinancialTerms(share=0.8))

    # Stage 2: layers, YET (persisted and reloaded), aggregate analysis.
    mean_loss = np.mean([elt.losses.mean() for elt in elts])
    occ_layer = Layer(elts[:3], occurrence_xl_terms(mean_loss, 50 * mean_loss), name="cat-xl")
    agg_layer = Layer(elts[3:], aggregate_xl_terms(5 * mean_loss, 200 * mean_loss), name="stop-loss")
    program = ReinsuranceProgram([occ_layer, agg_layer], name="e2e")

    yet = YETSimulator(catalog).simulate(300, rng=9)
    path = tmp_path_factory.mktemp("yet") / "e2e_yet"
    yet = load_yet(save_yet(yet, path))

    result = AggregateRiskEngine(EngineConfig(backend="vectorized")).run(program, yet)
    return catalog, program, yet, result


class TestPipeline:
    def test_ylt_shape(self, pipeline_outputs):
        _, program, yet, result = pipeline_outputs
        assert result.ylt.n_layers == program.n_layers
        assert result.ylt.n_trials == yet.n_trials

    def test_losses_respect_layer_limits(self, pipeline_outputs):
        _, program, _, result = pipeline_outputs
        for i, layer in enumerate(program):
            assert (result.ylt.losses[i] <= layer.terms.aggregate_limit + 1e-6).all()
            if np.isfinite(layer.terms.occurrence_limit):
                assert (
                    result.ylt.max_occurrence_losses[i] <= layer.terms.occurrence_limit + 1e-6
                ).all()

    def test_risk_metrics_and_report(self, pipeline_outputs):
        _, _, _, result = pipeline_outputs
        metrics = compute_risk_metrics(result.ylt.portfolio_losses())
        assert metrics.aal > 0
        assert metrics.pml[250.0] >= metrics.pml[10.0]
        report = format_metrics_report(metrics)
        assert "PML" in report

    def test_ep_curves_consistent(self, pipeline_outputs):
        _, _, _, result = pipeline_outputs
        aep = aep_curve(result.ylt.portfolio_losses())
        oep = oep_curve(result.ylt.portfolio_max_occurrence())
        # The aggregate annual loss dominates the largest single occurrence.
        assert aep.loss_at_return_period(100.0) >= oep.loss_at_return_period(100.0) - 1e-6

    def test_pricing_and_rollup(self, pipeline_outputs):
        _, program, _, result = pipeline_outputs
        pricing = price_layer(program[0], result.ylt.layer(0))
        assert pricing.technical_premium > pricing.expected_loss > 0
        rollup = portfolio_rollup(result.ylt, program)
        assert rollup.portfolio_aal == pytest.approx(
            sum(m.aal for m in rollup.layer_metrics.values()), rel=1e-9
        )
        assert 0.0 <= rollup.diversification_benefit <= 1.0

    def test_alternative_terms_reprice_quickly(self, pipeline_outputs):
        # The real-time pricing scenario: same exposure, alternative terms.
        _, program, yet, _ = pipeline_outputs
        base = program[0]
        engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
        alternatives = [
            base.with_terms(occurrence_xl_terms(base.terms.occurrence_retention * 2,
                                                base.terms.occurrence_limit), name="higher-retention"),
            base.with_terms(occurrence_xl_terms(base.terms.occurrence_retention,
                                                base.terms.occurrence_limit * 0.5), name="lower-limit"),
        ]
        base_aal = engine.run(base, yet).ylt.layer(0).mean()
        for alternative in alternatives:
            alt_aal = engine.run(alternative, yet).ylt.layer(0).mean()
            assert alt_aal <= base_aal + 1e-9
