"""Integration: the fused multi-layer batch path matches the per-layer path.

Golden cross-backend conformance for the fused kernel
(:func:`repro.core.kernels.layer_trial_losses_batch`): on seeded end-to-end
workloads, every backend must produce the same Year Loss Table whether its
layers are priced through the fused stacked gather or through the original
per-layer loop — and both must match the sequential reference.  The fused
and per-layer NumPy paths perform the same floating-point operations in the
same order, so for the vectorized/chunked/multicore backends the agreement is
expected to be exact, not merely within tolerance.
"""

import numpy as np
import pytest

from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

RTOL = 1e-9


@pytest.fixture(scope="module")
def workload():
    """A seeded workload wide enough (6 layers) for the fusion to matter."""
    spec = WorkloadSpec(
        n_trials=80,
        events_per_trial=30,
        n_layers=6,
        elts_per_layer=4,
        catalog_size=1500,
        buildings_per_exposure=50,
        n_regions=8,
        fixed_trial_length=False,
        seed=77,
    )
    return WorkloadGenerator(spec).generate()


@pytest.fixture(scope="module")
def sequential_reference(workload):
    engine = AggregateRiskEngine(EngineConfig(backend="sequential"))
    return engine.run(workload.program, workload.yet)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_fused_matches_perlayer(workload, backend):
    """Fused and per-layer paths of one backend agree bit-for-bit (rtol=1e-9)."""
    base = EngineConfig(backend=backend, n_workers=2, chunk_events=129)
    fused = AggregateRiskEngine(base.replace(fused_layers=True)).run(
        workload.program, workload.yet
    )
    perlayer = AggregateRiskEngine(base.replace(fused_layers=False)).run(
        workload.program, workload.yet
    )
    np.testing.assert_allclose(fused.ylt.losses, perlayer.ylt.losses, rtol=RTOL, atol=1e-6)
    np.testing.assert_allclose(
        fused.ylt.max_occurrence_losses,
        perlayer.ylt.max_occurrence_losses,
        rtol=RTOL,
        atol=1e-6,
    )


@pytest.mark.parametrize("backend", ("vectorized", "multicore"))
def test_fused_numpy_backends_exact(workload, backend):
    """Backends whose two paths run identical float ops agree exactly.

    The chunked backend is excluded: its fused path accumulates per-trial
    sums from per-chunk partials, which rounds differently from the
    per-layer whole-stream reduction (covered by the rtol=1e-9 test above).
    """
    base = EngineConfig(backend=backend, n_workers=2, chunk_events=257)
    fused = AggregateRiskEngine(base.replace(fused_layers=True)).run(
        workload.program, workload.yet
    )
    perlayer = AggregateRiskEngine(base.replace(fused_layers=False)).run(
        workload.program, workload.yet
    )
    assert np.array_equal(fused.ylt.losses, perlayer.ylt.losses)
    assert np.array_equal(fused.ylt.max_occurrence_losses, perlayer.ylt.max_occurrence_losses)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_fused_matches_sequential_reference(workload, sequential_reference, backend):
    result = AggregateRiskEngine(
        EngineConfig(backend=backend, fused_layers=True, n_workers=2)
    ).run(workload.program, workload.yet)
    np.testing.assert_allclose(
        result.ylt.losses, sequential_reference.ylt.losses, rtol=RTOL, atol=1e-5
    )


def test_compare_backends_over_fused_path_all_five_backends(workload):
    """Acceptance: compare_backends extended over the fused path, all 5 backends."""
    results = AggregateRiskEngine.compare_backends(
        workload.program,
        workload.yet,
        backends=BACKEND_NAMES,
        base_config=EngineConfig(n_workers=2),
        check_fused=True,
    )
    # One run per backend with the base (fused) config plus one per-layer run.
    assert len(results) == 2 * len(BACKEND_NAMES)
    assert {name for name in results if name.endswith(":per-layer")} == {
        f"{backend}:per-layer" for backend in BACKEND_NAMES
    }


def test_fused_cumulative_pass_matches_shortcut(workload):
    """The fused kernel honours use_aggregate_shortcut=False."""
    shortcut = AggregateRiskEngine(
        EngineConfig(backend="vectorized", use_aggregate_shortcut=True)
    ).run(workload.program, workload.yet)
    cumulative = AggregateRiskEngine(
        EngineConfig(backend="vectorized", use_aggregate_shortcut=False)
    ).run(workload.program, workload.yet)
    np.testing.assert_allclose(
        shortcut.ylt.losses, cumulative.ylt.losses, rtol=RTOL, atol=1e-6
    )


def test_chunked_cumulative_ablation_falls_back_to_perlayer(workload, sequential_reference):
    """Streamed fused chunking needs the shortcut; the ablation still works."""
    result = AggregateRiskEngine(
        EngineConfig(backend="chunked", use_aggregate_shortcut=False, chunk_events=97)
    ).run(workload.program, workload.yet)
    assert result.details["fused_layers"] is False
    np.testing.assert_allclose(
        result.ylt.losses, sequential_reference.ylt.losses, rtol=RTOL, atol=1e-5
    )


def test_batch_kernel_rejects_chunked_cumulative():
    from repro.core.kernels import layer_trial_losses_batch

    with pytest.raises(ValueError, match="use_shortcut"):
        layer_trial_losses_batch(
            (),
            np.zeros(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            [],
            use_shortcut=False,
            chunk_events=8,
            stack=np.zeros((0, 4)),
        )


def test_run_many_matches_individual_runs(workload):
    """run_many splits a batched multi-program run back exactly."""
    program = workload.program
    variant = program.subset([0, 2], name="subset-variant")
    engine = AggregateRiskEngine()
    batched = engine.run_many([program, variant], workload.yet)
    solo_program = engine.run(program, workload.yet)
    solo_variant = engine.run(variant, workload.yet)
    assert np.array_equal(batched[0].ylt.losses, solo_program.ylt.losses)
    assert np.array_equal(batched[1].ylt.losses, solo_variant.ylt.losses)
    assert batched[0].ylt.layer_names == program.layer_names
    assert batched[1].ylt.layer_names == variant.layer_names
    assert batched[0].details["batch"]["n_programs"] == 2
    assert batched[1].workload_shape.n_layers == 2
