"""Golden conformance: the replication-batched uncertainty engine vs replay.

With a fixed seed the batched path (all replications stacked into fused rows
and priced in one stacked engine pass) must reproduce the per-replication
``method="replay"`` loop's metrics — backend for backend — because both
consume identical per-replication child streams and apply identical kernels.
The tests pin that contract to 1e-9 (the observed agreement is bit-exact) and
additionally pin the streamed variant's block-size invariance and the
multicore path's worker-count invariance.
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.financial.terms import FinancialTerms, LayerTerms
from repro.uncertainty import (
    LossDistributionFamily,
    SecondaryUncertaintyAnalysis,
    UncertainEventLossTable,
    UncertainLayer,
)
from repro.workloads import WorkloadGenerator, tiny_spec
from repro.yet.table import YearEventTable

SEED = 20_120_613
RETURN_PERIODS = (5.0, 20.0)
TVAR_LEVELS = (0.9,)


def make_layers():
    """Two uncertain layers with non-trivial financial and layer terms."""
    uelt_a = UncertainEventLossTable(
        event_ids=np.arange(0, 40, 2),
        mean_losses=np.linspace(50.0, 400.0, 20),
        cv_losses=np.full(20, 0.7),
        catalog_size=50,
        family=LossDistributionFamily.GAMMA,
        terms=FinancialTerms(retention=10.0, limit=350.0, share=0.9),
        name="uelt-a",
    )
    uelt_b = UncertainEventLossTable(
        event_ids=np.arange(1, 50, 3),
        mean_losses=np.linspace(20.0, 150.0, 17),
        cv_losses=np.full(17, 0.4),
        catalog_size=50,
        family=LossDistributionFamily.LOGNORMAL,
        terms=FinancialTerms(share=0.8, fx_rate=1.1),
        name="uelt-b",
    )
    layer_1 = UncertainLayer(
        [uelt_a, uelt_b],
        LayerTerms(occurrence_retention=40.0, aggregate_limit=5_000.0),
        name="working",
    )
    layer_2 = UncertainLayer(
        [uelt_b],
        LayerTerms(aggregate_retention=100.0),
        name="stop-loss",
    )
    return [layer_1, layer_2]


@pytest.fixture(scope="module")
def yet():
    rng = np.random.default_rng(77)
    trials = [
        list(rng.integers(0, 50, size=rng.integers(1, 9)))
        for _ in range(60)
    ]
    return YearEventTable.from_trials(trials, catalog_size=50)


def run_both(config, yet, **kwargs):
    analysis = SecondaryUncertaintyAnalysis(make_layers(), config=config)
    replay = analysis.run_batched(
        yet, 12, rng=SEED, return_periods=RETURN_PERIODS,
        tvar_levels=TVAR_LEVELS, method="replay",
    )
    batched = analysis.run_batched(
        yet, 12, rng=SEED, return_periods=RETURN_PERIODS,
        tvar_levels=TVAR_LEVELS, method="batched", **kwargs,
    )
    return replay, batched


class TestGoldenConformance:
    @pytest.mark.parametrize("config", [
        EngineConfig(backend="vectorized", record_max_occurrence=False),
        EngineConfig(backend="vectorized", record_max_occurrence=True),
        EngineConfig(backend="vectorized", use_aggregate_shortcut=False,
                     record_max_occurrence=False),
        EngineConfig(backend="chunked", chunk_events=7, record_max_occurrence=False),
        EngineConfig(backend="multicore", n_workers=2, record_max_occurrence=False),
    ], ids=["vectorized", "vectorized-maxocc", "vectorized-cumulative",
            "chunked", "multicore"])
    def test_batched_matches_replay_oracle(self, yet, config):
        replay, batched = run_both(config, yet)
        assert set(replay) == set(batched) == {
            "aal", "pml_5", "pml_20", "tvar_0.9",
        }
        for name in replay:
            np.testing.assert_allclose(
                batched[name].values, replay[name].values, rtol=1e-9, atol=0.0,
                err_msg=f"{config.backend}: metric {name} deviates from the replay oracle",
            )

    def test_streamed_blocks_match_single_pass(self, yet):
        config = EngineConfig(backend="vectorized", record_max_occurrence=False)
        analysis = SecondaryUncertaintyAnalysis(make_layers(), config=config)
        single = analysis.run_batched(yet, 12, rng=SEED, method="batched")
        for block in (1, 3, 5, 12, 64):
            streamed = analysis.run_batched(
                yet, 12, rng=SEED, method="batched", replication_block=block
            )
            for name in single:
                np.testing.assert_array_equal(
                    streamed[name].values, single[name].values,
                    err_msg=f"block={block} changed metric {name}",
                )

    def test_config_replication_block_used_as_default(self, yet):
        base = EngineConfig(backend="chunked", chunk_events=11, record_max_occurrence=False)
        blocked = base.replace(replication_block=4)
        reference = SecondaryUncertaintyAnalysis(make_layers(), config=base).run_batched(
            yet, 10, rng=SEED
        )
        streamed = SecondaryUncertaintyAnalysis(make_layers(), config=blocked).run_batched(
            yet, 10, rng=SEED
        )
        for name in reference:
            np.testing.assert_array_equal(streamed[name].values, reference[name].values)

    def test_worker_count_invariance(self, yet):
        """Draws are per-replication streams, so workers only move rounding.

        The trial-block partition changes the floating-point accumulation
        order inside the segment reductions (last-bit effects), never the
        sampled losses — metrics agree far inside the 1e-9 contract.
        """
        values = []
        for n_workers in (1, 2, 3):
            config = EngineConfig(
                backend="multicore", n_workers=n_workers, record_max_occurrence=False
            )
            analysis = SecondaryUncertaintyAnalysis(make_layers(), config=config)
            values.append(analysis.run_batched(yet, 8, rng=SEED)["aal"].values)
        np.testing.assert_allclose(values[1], values[0], rtol=1e-12)
        np.testing.assert_allclose(values[2], values[0], rtol=1e-12)

    def test_backends_agree_with_each_other(self, yet):
        """Vectorized / chunked / multicore batched runs agree to 1e-9."""
        results = {}
        for backend, overrides in [
            ("vectorized", {}),
            ("chunked", {"chunk_events": 13}),
            ("multicore", {"n_workers": 2}),
        ]:
            config = EngineConfig(backend=backend, record_max_occurrence=False, **overrides)
            analysis = SecondaryUncertaintyAnalysis(make_layers(), config=config)
            results[backend] = analysis.run_batched(yet, 10, rng=SEED)
        for backend in ("chunked", "multicore"):
            for name in results["vectorized"]:
                np.testing.assert_allclose(
                    results[backend][name].values,
                    results["vectorized"][name].values,
                    rtol=1e-9,
                )


class TestBatchedOnRealWorkload:
    def test_tiny_preset_program(self):
        workload = WorkloadGenerator(tiny_spec(seed=5)).generate()
        layers = [
            UncertainLayer(
                elts=[UncertainEventLossTable.from_elt(elt, cv=0.5) for elt in layer.elts],
                terms=layer.terms,
                name=layer.name,
            )
            for layer in workload.program.layers
        ]
        config = EngineConfig(backend="vectorized", record_max_occurrence=False)
        analysis = SecondaryUncertaintyAnalysis(layers, config=config)
        replay = analysis.run_batched(workload.yet, 6, rng=SEED, method="replay")
        batched = analysis.run_batched(workload.yet, 6, rng=SEED, method="batched")
        for name in replay:
            np.testing.assert_allclose(
                batched[name].values, replay[name].values, rtol=1e-9, atol=0.0
            )


class TestBatchedValidation:
    def test_unknown_method_rejected(self, yet):
        analysis = SecondaryUncertaintyAnalysis(make_layers())
        with pytest.raises(ValueError, match="method"):
            analysis.run_batched(yet, 4, rng=1, method="turbo")

    def test_zero_replications_rejected(self, yet):
        analysis = SecondaryUncertaintyAnalysis(make_layers())
        with pytest.raises(ValueError, match="n_replications"):
            analysis.run_batched(yet, 0, rng=1)

    def test_sequential_backend_has_no_stacked_path(self, yet):
        config = EngineConfig(backend="sequential", record_max_occurrence=False)
        analysis = SecondaryUncertaintyAnalysis(make_layers(), config=config)
        with pytest.raises(ValueError, match="stacked execution path"):
            analysis.run_batched(yet, 2, rng=1)
        # ... but the replay oracle still runs on any backend.
        summaries = analysis.run_batched(yet, 2, rng=1, method="replay")
        assert "aal" in summaries

    def test_mismatched_catalog_sizes_rejected(self):
        small = UncertainEventLossTable(
            np.array([0]), np.array([1.0]), np.array([0.1]), catalog_size=5
        )
        big = UncertainEventLossTable(
            np.array([0]), np.array([1.0]), np.array([0.1]), catalog_size=6
        )
        with pytest.raises(ValueError, match="catalog size"):
            SecondaryUncertaintyAnalysis([
                UncertainLayer([small], LayerTerms()),
                UncertainLayer([big], LayerTerms()),
            ])
