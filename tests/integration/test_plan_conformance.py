"""Golden conformance of the unified plan pipeline (plan vs plan).

The original suite pinned the plan pipeline bit-for-bit against the
pre-plan per-backend dispatch; that legacy dispatch has now been deleted as
scheduled, so the golden coverage is retargeted at invariants *within* the
plan pipeline — on seeded end-to-end workloads, these must hold exactly
(not merely within tolerance) unless noted:

* the facade's ``run`` equals explicit ``PlanBuilder`` lowering + ``run_plan``
  on every backend (the facade adds no arithmetic);
* the fused multi-layer path and the ``fused_layers=False`` per-layer
  ablation agree bit-for-bit on every backend (same floating-point
  operations in the same order);
* the two multicore transports (shared-memory vs pickling/inheritance) and
  the warm workspace-reuse path agree bit-for-bit (a transport moves bytes,
  it must never touch them);
* ``run_many`` equals the concatenate-run-split recipe, with and without
  row deduplication;
* ``run_stacked`` equals the direct fused-kernel evaluation of the same
  stack;
* the telescoped-shortcut vs cumulative aggregate-terms ablation agrees at
  1e-9 relative tolerance (different reduction order, same maths);
* ``execution="legacy"`` is rejected with a migration hint.
"""

import numpy as np
import pytest

from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.kernels import layer_trial_losses_batch
from repro.core.plan import PlanBuilder
from repro.financial.terms import LayerTerms
from repro.portfolio.program import ReinsuranceProgram
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

#: Multicore runs use two workers so the block-stitching path is exercised.
N_WORKERS = 2


@pytest.fixture(scope="module")
def workload():
    """A seeded workload wide enough (5 layers) for fusion and splitting."""
    spec = WorkloadSpec(
        n_trials=60,
        events_per_trial=25,
        n_layers=5,
        elts_per_layer=3,
        catalog_size=1200,
        buildings_per_exposure=40,
        n_regions=8,
        fixed_trial_length=False,
        seed=2012,
    )
    return WorkloadGenerator(spec).generate()


def _assert_identical(lhs, rhs):
    assert np.array_equal(lhs.ylt.losses, rhs.ylt.losses)
    lhs_max = lhs.ylt.max_occurrence_losses
    rhs_max = rhs.ylt.max_occurrence_losses
    if rhs_max is None:
        assert lhs_max is None
    else:
        assert np.array_equal(lhs_max, rhs_max)
    assert lhs.ylt.layer_names == rhs.ylt.layer_names


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_facade_run_equals_explicit_plan(workload, backend):
    """`run` == lowering through PlanBuilder + run_plan, exactly."""
    engine = AggregateRiskEngine(EngineConfig(backend=backend, n_workers=N_WORKERS))
    via_facade = engine.run(workload.program, workload.yet)
    via_plan = engine.run_plan(
        PlanBuilder.from_program(workload.program, workload.yet)
    )
    _assert_identical(via_facade, via_plan)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_fused_vs_perlayer_plan_bit_identical(workload, backend):
    """The fused path and the per-layer ablation agree bit for bit.

    The fused stacked gather performs the same floating-point operations in
    the same order as the per-layer loop, so the agreement is exact (the
    sequential and gpu reference backends run their per-layer path under
    both configs and are trivially identical).
    """
    base = EngineConfig(backend=backend, n_workers=N_WORKERS)
    fused = AggregateRiskEngine(base.replace(fused_layers=True)).run(
        workload.program, workload.yet
    )
    perlayer = AggregateRiskEngine(base.replace(fused_layers=False)).run(
        workload.program, workload.yet
    )
    _assert_identical(fused, perlayer)


@pytest.mark.parametrize("backend", ("vectorized", "chunked"))
def test_shortcut_vs_cumulative_plan_ablation(workload, backend):
    """use_aggregate_shortcut toggling never moves year losses beyond 1e-9.

    The telescoped shortcut reassociates the aggregate-terms reduction, so
    the two paths are equivalent mathematically but not bit-for-bit.
    """
    base = EngineConfig(backend=backend, n_workers=N_WORKERS)
    shortcut = AggregateRiskEngine(base.replace(use_aggregate_shortcut=True)).run(
        workload.program, workload.yet
    )
    cumulative = AggregateRiskEngine(base.replace(use_aggregate_shortcut=False)).run(
        workload.program, workload.yet
    )
    np.testing.assert_allclose(
        shortcut.ylt.losses, cumulative.ylt.losses, rtol=1e-9, atol=1e-6
    )


@pytest.mark.parametrize("shared_memory", ("on", "off"))
def test_multicore_transports_bit_identical(workload, shared_memory):
    """Shared-memory and pickling transports agree exactly.

    The transport decides how the fused stack and the YET columns reach the
    workers; it must never change a byte of what the kernels read.  The
    pickling/inheritance run is the reference.
    """
    reference = AggregateRiskEngine(
        EngineConfig(backend="multicore", n_workers=N_WORKERS, shared_memory="off")
    ).run(workload.program, workload.yet)
    candidate = AggregateRiskEngine(
        EngineConfig(
            backend="multicore", n_workers=N_WORKERS, shared_memory=shared_memory
        )
    ).run(workload.program, workload.yet)
    _assert_identical(candidate, reference)


def test_multicore_workspace_reuse_bit_identical(workload):
    """The warm workspace-reuse transport equals cold publication exactly."""
    engine = AggregateRiskEngine(
        EngineConfig(backend="multicore", n_workers=N_WORKERS, shared_memory="on")
    )
    engine.retain_shared_workspaces(True)
    try:
        plan = PlanBuilder.from_program(workload.program, workload.yet)
        cold = engine.run_plan(plan)
        warm = engine.run_plan(plan)
        assert cold.details["workspace_reused"] is False
        assert warm.details["workspace_reused"] is True
        _assert_identical(warm, cold)
    finally:
        engine.close()


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("dedupe", (True, False), ids=["dedupe", "no-dedupe"])
def test_run_many_vs_combined_run_bit_identical(workload, backend, dedupe):
    """run_many == concatenate -> run -> split, exactly, on all backends.

    The term variants share their layers' ELT objects, so the dedupe=True
    case exercises the row_map expansion against the fully expanded
    combined-program stack.
    """
    program = workload.program
    variant = ReinsuranceProgram(
        [
            layer.with_terms(
                LayerTerms(
                    occurrence_retention=layer.terms.occurrence_retention * 1.5,
                    occurrence_limit=layer.terms.occurrence_limit,
                    aggregate_retention=layer.terms.aggregate_retention,
                    aggregate_limit=layer.terms.aggregate_limit,
                )
            )
            for layer in program.layers
        ],
        name="variant",
    )
    engine = AggregateRiskEngine(EngineConfig(backend=backend, n_workers=N_WORKERS))
    results = engine.run_many([program, variant], workload.yet, dedupe=dedupe)

    # The reference recipe: one combined program, one run, split back.
    combined = ReinsuranceProgram(
        list(program.layers) + list(variant.layers), name="batch"
    )
    reference = engine.run(combined, workload.yet)
    n = program.n_layers
    assert np.array_equal(results[0].ylt.losses, reference.ylt.losses[:n])
    assert np.array_equal(results[1].ylt.losses, reference.ylt.losses[n:])
    assert results[0].details["batch"]["n_programs"] == 2
    assert results[1].details["batch"]["total_layers"] == combined.n_layers


@pytest.mark.parametrize("backend", ("vectorized", "chunked", "multicore"))
def test_run_stacked_vs_direct_kernel_bit_identical(workload, backend):
    """run_stacked == a direct fused-kernel call over the same stack.

    The synthetic-plan lowering adds bookkeeping only: a single fused-kernel
    call over the whole YET (vectorized/chunked) or that same call per trial
    block (multicore).  A single multicore worker owns one block spanning
    every trial, so all three backends must reproduce the direct call bit
    for bit.
    """
    program = workload.program
    stack = np.stack(
        [layer.loss_matrix().combined_net_losses() for layer in program.layers]
    )
    terms = [layer.terms for layer in program.layers]
    engine = AggregateRiskEngine(EngineConfig(backend=backend, n_workers=1))
    result = engine.run_stacked(stack, terms, workload.yet)

    config = engine.config
    expected, expected_max = layer_trial_losses_batch(
        (),
        workload.yet.event_ids,
        workload.yet.trial_offsets,
        terms,
        use_shortcut=config.use_aggregate_shortcut,
        record_max_occurrence=config.record_max_occurrence,
        stack=stack,
        chunk_events=config.chunk_events if backend == "chunked" else None,
    )
    assert np.array_equal(result.ylt.losses, expected)
    assert np.array_equal(result.ylt.max_occurrence_losses, expected_max)


def test_run_stacked_multicore_worker_invariance(workload):
    """Sharding the stacked rows over workers never moves the results.

    Per-block accumulation may round differently from the whole-YET pass in
    the last couple of bits, so worker counts are compared at 1e-12 relative
    tolerance.
    """
    program = workload.program
    stack = np.stack(
        [layer.loss_matrix().combined_net_losses() for layer in program.layers]
    )
    terms = [layer.terms for layer in program.layers]
    reference = None
    for n_workers in (1, 2, 3):
        engine = AggregateRiskEngine(
            EngineConfig(backend="multicore", n_workers=n_workers)
        )
        losses = engine.run_stacked(stack, terms, workload.yet).ylt.losses
        if reference is None:
            reference = losses
        else:
            np.testing.assert_allclose(losses, reference, rtol=1e-12)


@pytest.mark.parametrize("backend", ("sequential", "gpu"))
def test_run_stacked_still_rejected_on_reference_backends(workload, backend):
    engine = AggregateRiskEngine(EngineConfig(backend=backend))
    stack = np.zeros((1, workload.program.catalog_size))
    with pytest.raises(ValueError, match="stacked execution path"):
        engine.run_stacked(stack, [LayerTerms()], workload.yet)


def test_dedupe_and_no_dedupe_bit_identical(workload):
    """Row deduplication may never change a single bit of any program's YLT."""
    program = workload.program
    variants = [program] + [
        ReinsuranceProgram(
            [
                layer.with_terms(
                    LayerTerms(occurrence_retention=float(50_000 * i))
                )
                for layer in program.layers
            ],
            name=f"variant-{i}",
        )
        for i in range(1, 4)
    ]
    engine = AggregateRiskEngine(EngineConfig())
    deduped = engine.run_many(variants, workload.yet, dedupe=True)
    expanded = engine.run_many(variants, workload.yet, dedupe=False)
    assert deduped[0].details["plan"]["n_unique_rows"] == program.n_layers
    assert expanded[0].details["plan"]["n_unique_rows"] == 4 * program.n_layers
    for lhs, rhs in zip(deduped, expanded):
        assert np.array_equal(lhs.ylt.losses, rhs.ylt.losses)


def test_uncertainty_batched_path_unchanged_by_plan_lowering(workload):
    """The stacked uncertainty engine is bit-stable across the refactor.

    run_batched == replay was PR 2's golden guarantee; it must survive
    run_stacked's lowering to a synthetic plan.
    """
    from repro.uncertainty import (
        SecondaryUncertaintyAnalysis,
        UncertainEventLossTable,
        UncertainLayer,
    )

    layers = [
        UncertainLayer(
            elts=[UncertainEventLossTable.from_elt(elt, cv=0.4) for elt in layer.elts],
            terms=layer.terms,
            name=layer.name,
        )
        for layer in workload.program.layers[:2]
    ]
    analysis = SecondaryUncertaintyAnalysis(
        layers, config=EngineConfig(record_max_occurrence=False)
    )
    batched = analysis.run_batched(workload.yet, 8, rng=99, method="batched")
    replay = analysis.run_batched(workload.yet, 8, rng=99, method="replay")
    for name in replay:
        np.testing.assert_allclose(
            batched[name].values, replay[name].values, rtol=1e-9, atol=0.0
        )


def test_legacy_execution_mode_removed():
    """The deprecation window closed: legacy must fail with a migration hint."""
    with pytest.raises(ValueError, match="has been removed"):
        EngineConfig(execution="legacy")
