"""Golden conformance: plan-lowered execution is bit-identical to legacy.

The PR that introduced the ExecutionPlan IR kept every backend's pre-plan
dispatch one release behind this suite: on seeded end-to-end workloads, the
plan pipeline (facade -> :class:`~repro.core.plan.PlanBuilder` -> backend
scheduler) must reproduce the legacy per-backend ``run`` **exactly** — not
within tolerance — for every backend, both kernel paths (fused and
per-layer), and the multicore transports.  The same bar applies to the
workloads whose legacy per-backend copies were deleted outright:

* ``run_many`` must equal the legacy recipe (concatenate into one combined
  program, run, split by layer ranges) bit for bit — with and without row
  deduplication;
* ``run_stacked`` must equal the direct fused-kernel evaluation of the same
  stack (the body of the deleted per-backend ``run_stacked`` methods).

When these assertions hold for a release, the legacy paths can be removed.
"""

import numpy as np
import pytest

from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.kernels import layer_trial_losses_batch
from repro.financial.terms import LayerTerms
from repro.portfolio.program import ReinsuranceProgram
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

#: Multicore runs use two workers so the block-stitching path is exercised.
N_WORKERS = 2


@pytest.fixture(scope="module")
def workload():
    """A seeded workload wide enough (5 layers) for fusion and splitting."""
    spec = WorkloadSpec(
        n_trials=60,
        events_per_trial=25,
        n_layers=5,
        elts_per_layer=3,
        catalog_size=1200,
        buildings_per_exposure=40,
        n_regions=8,
        fixed_trial_length=False,
        seed=2012,
    )
    return WorkloadGenerator(spec).generate()


def _engines(backend: str, **overrides):
    """(plan-dispatch engine, legacy-dispatch engine) for one backend config."""
    base = EngineConfig(backend=backend, n_workers=N_WORKERS, **overrides)
    return (
        AggregateRiskEngine(base),
        AggregateRiskEngine(base.replace(execution="legacy")),
    )


def _assert_identical(plan_result, legacy_result):
    assert np.array_equal(plan_result.ylt.losses, legacy_result.ylt.losses)
    plan_max = plan_result.ylt.max_occurrence_losses
    legacy_max = legacy_result.ylt.max_occurrence_losses
    if legacy_max is None:
        assert plan_max is None
    else:
        assert np.array_equal(plan_max, legacy_max)
    assert plan_result.ylt.layer_names == legacy_result.ylt.layer_names


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_run_plan_vs_legacy_bit_identical(workload, backend):
    """`run` through the plan pipeline == the legacy dispatch, exactly."""
    plan_engine, legacy_engine = _engines(backend)
    _assert_identical(
        plan_engine.run(workload.program, workload.yet),
        legacy_engine.run(workload.program, workload.yet),
    )


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_run_plan_vs_legacy_perlayer_bit_identical(workload, backend):
    """The fused_layers=False ablation stays bit-identical under plans."""
    plan_engine, legacy_engine = _engines(backend, fused_layers=False)
    _assert_identical(
        plan_engine.run(workload.program, workload.yet),
        legacy_engine.run(workload.program, workload.yet),
    )


@pytest.mark.parametrize("backend", ("vectorized", "chunked"))
def test_run_plan_vs_legacy_cumulative_ablation(workload, backend):
    """use_aggregate_shortcut=False stays bit-identical under plans."""
    plan_engine, legacy_engine = _engines(backend, use_aggregate_shortcut=False)
    _assert_identical(
        plan_engine.run(workload.program, workload.yet),
        legacy_engine.run(workload.program, workload.yet),
    )


@pytest.mark.parametrize("shared_memory", ("on", "off"))
def test_multicore_transports_bit_identical(workload, shared_memory):
    """Shared-memory and pickling transports agree with the legacy run exactly."""
    plan_engine, legacy_engine = _engines("multicore", shared_memory=shared_memory)
    _assert_identical(
        plan_engine.run(workload.program, workload.yet),
        legacy_engine.run(workload.program, workload.yet),
    )


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("dedupe", (True, False), ids=["dedupe", "no-dedupe"])
def test_run_many_vs_legacy_recipe_bit_identical(workload, backend, dedupe):
    """run_many == concatenate -> legacy run -> split, exactly, on all backends.

    The term variants share their layers' ELT objects, so the dedupe=True
    case exercises the row_map expansion against the fully expanded legacy
    stack.
    """
    program = workload.program
    variant = ReinsuranceProgram(
        [
            layer.with_terms(
                LayerTerms(
                    occurrence_retention=layer.terms.occurrence_retention * 1.5,
                    occurrence_limit=layer.terms.occurrence_limit,
                    aggregate_retention=layer.terms.aggregate_retention,
                    aggregate_limit=layer.terms.aggregate_limit,
                )
            )
            for layer in program.layers
        ],
        name="variant",
    )
    plan_engine, legacy_engine = _engines(backend)
    results = plan_engine.run_many([program, variant], workload.yet, dedupe=dedupe)

    # The legacy run_many recipe: one combined program, one run, split back.
    combined = ReinsuranceProgram(
        list(program.layers) + list(variant.layers), name="batch"
    )
    legacy = legacy_engine.run(combined, workload.yet)
    n = program.n_layers
    assert np.array_equal(results[0].ylt.losses, legacy.ylt.losses[:n])
    assert np.array_equal(results[1].ylt.losses, legacy.ylt.losses[n:])
    assert results[0].details["batch"]["n_programs"] == 2
    assert results[1].details["batch"]["total_layers"] == combined.n_layers


@pytest.mark.parametrize("backend", ("vectorized", "chunked", "multicore"))
def test_run_stacked_vs_direct_kernel_bit_identical(workload, backend):
    """run_stacked == the deleted per-backend implementations' kernel call.

    The deleted implementations were a single fused-kernel call over the
    whole YET (vectorized/chunked) or that same call per trial block
    (multicore).  A single multicore worker owns one block spanning every
    trial, so all three backends must reproduce the direct call bit for bit.
    """
    program = workload.program
    stack = np.stack(
        [layer.loss_matrix().combined_net_losses() for layer in program.layers]
    )
    terms = [layer.terms for layer in program.layers]
    engine = AggregateRiskEngine(EngineConfig(backend=backend, n_workers=1))
    result = engine.run_stacked(stack, terms, workload.yet)

    config = engine.config
    expected, expected_max = layer_trial_losses_batch(
        (),
        workload.yet.event_ids,
        workload.yet.trial_offsets,
        terms,
        use_shortcut=config.use_aggregate_shortcut,
        record_max_occurrence=config.record_max_occurrence,
        stack=stack,
        chunk_events=config.chunk_events if backend == "chunked" else None,
    )
    assert np.array_equal(result.ylt.losses, expected)
    assert np.array_equal(result.ylt.max_occurrence_losses, expected_max)


def test_run_stacked_multicore_worker_invariance(workload):
    """Sharding the stacked rows over workers never moves the results.

    Per-block accumulation may round differently from the whole-YET pass in
    the last couple of bits (exactly as the deleted multicore run_stacked
    did), so worker counts are compared at 1e-12 relative tolerance.
    """
    program = workload.program
    stack = np.stack(
        [layer.loss_matrix().combined_net_losses() for layer in program.layers]
    )
    terms = [layer.terms for layer in program.layers]
    reference = None
    for n_workers in (1, 2, 3):
        engine = AggregateRiskEngine(
            EngineConfig(backend="multicore", n_workers=n_workers)
        )
        losses = engine.run_stacked(stack, terms, workload.yet).ylt.losses
        if reference is None:
            reference = losses
        else:
            np.testing.assert_allclose(losses, reference, rtol=1e-12)


@pytest.mark.parametrize("backend", ("sequential", "gpu"))
def test_run_stacked_still_rejected_on_reference_backends(workload, backend):
    engine = AggregateRiskEngine(EngineConfig(backend=backend))
    stack = np.zeros((1, workload.program.catalog_size))
    with pytest.raises(ValueError, match="stacked execution path"):
        engine.run_stacked(stack, [LayerTerms()], workload.yet)


def test_dedupe_and_no_dedupe_bit_identical(workload):
    """Row deduplication may never change a single bit of any program's YLT."""
    program = workload.program
    variants = [program] + [
        ReinsuranceProgram(
            [
                layer.with_terms(
                    LayerTerms(occurrence_retention=float(50_000 * i))
                )
                for layer in program.layers
            ],
            name=f"variant-{i}",
        )
        for i in range(1, 4)
    ]
    engine = AggregateRiskEngine(EngineConfig())
    deduped = engine.run_many(variants, workload.yet, dedupe=True)
    expanded = engine.run_many(variants, workload.yet, dedupe=False)
    assert deduped[0].details["plan"]["n_unique_rows"] == program.n_layers
    assert expanded[0].details["plan"]["n_unique_rows"] == 4 * program.n_layers
    for lhs, rhs in zip(deduped, expanded):
        assert np.array_equal(lhs.ylt.losses, rhs.ylt.losses)


def test_uncertainty_batched_path_unchanged_by_plan_lowering(workload):
    """The stacked uncertainty engine is bit-stable across the refactor.

    run_batched == replay was PR 2's golden guarantee; it must survive
    run_stacked's lowering to a synthetic plan.
    """
    from repro.uncertainty import (
        SecondaryUncertaintyAnalysis,
        UncertainEventLossTable,
        UncertainLayer,
    )

    layers = [
        UncertainLayer(
            elts=[UncertainEventLossTable.from_elt(elt, cv=0.4) for elt in layer.elts],
            terms=layer.terms,
            name=layer.name,
        )
        for layer in workload.program.layers[:2]
    ]
    analysis = SecondaryUncertaintyAnalysis(
        layers, config=EngineConfig(record_max_occurrence=False)
    )
    batched = analysis.run_batched(workload.yet, 8, rng=99, method="batched")
    replay = analysis.run_batched(workload.yet, 8, rng=99, method="replay")
    for name in replay:
        np.testing.assert_allclose(
            batched[name].values, replay[name].values, rtol=1e-9, atol=0.0
        )
