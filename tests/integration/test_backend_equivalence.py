"""Integration: every backend produces the identical Year Loss Table.

This is the library's core correctness guarantee (DESIGN.md §7): the
sequential backend is the literal transcription of the paper's algorithm, and
every optimised backend must agree with it on realistic end-to-end workloads
produced by the full synthetic pipeline.
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.parallel.scheduling import SchedulingPolicy
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec


@pytest.fixture(scope="module")
def workload():
    """A medium workload with several layers, variable trial lengths and FX terms."""
    spec = WorkloadSpec(
        n_trials=120,
        events_per_trial=40,
        n_layers=3,
        elts_per_layer=5,
        catalog_size=2000,
        buildings_per_exposure=60,
        n_regions=16,
        fixed_trial_length=False,
        seed=2024,
    )
    return WorkloadGenerator(spec).generate()


@pytest.fixture(scope="module")
def reference(workload):
    engine = AggregateRiskEngine(EngineConfig(backend="sequential"))
    return engine.run(workload.program, workload.yet)


CONFIGS = [
    EngineConfig(backend="vectorized"),
    EngineConfig(backend="vectorized", use_aggregate_shortcut=False),
    EngineConfig(backend="chunked", chunk_events=37),
    EngineConfig(backend="chunked", chunk_events=4096),
    EngineConfig(backend="multicore", n_workers=2),
    EngineConfig(backend="multicore", n_workers=3,
                 scheduling=SchedulingPolicy.DYNAMIC, oversubscription=4),
    EngineConfig(backend="gpu", threads_per_block=32, gpu_chunk_size=4),
    EngineConfig(backend="gpu", threads_per_block=16, gpu_optimised=False),
    EngineConfig(backend="sequential", elt_representation="sorted"),
    EngineConfig(backend="sequential", elt_representation="hashed"),
]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"{c.backend}-{c.elt_representation}"
                         f"-{c.n_workers}w-{'opt' if c.gpu_optimised else 'basic'}"
                         f"-{'short' if c.use_aggregate_shortcut else 'cum'}-{c.chunk_events}")
def test_backend_matches_sequential_reference(workload, reference, config):
    result = AggregateRiskEngine(config).run(workload.program, workload.yet)
    np.testing.assert_allclose(result.ylt.losses, reference.ylt.losses, rtol=1e-9, atol=1e-5)
    if config.record_max_occurrence and reference.ylt.max_occurrence_losses is not None:
        np.testing.assert_allclose(
            result.ylt.max_occurrence_losses,
            reference.ylt.max_occurrence_losses,
            rtol=1e-9,
            atol=1e-5,
        )


def test_year_losses_bounded_by_aggregate_limits(workload, reference):
    for layer_index, layer in enumerate(workload.program):
        limit = layer.terms.aggregate_limit
        assert (reference.ylt.losses[layer_index] <= limit + 1e-6).all()


def test_year_losses_nonzero_somewhere(reference):
    assert reference.ylt.losses.sum() > 0


def test_compare_backends_helper_on_realistic_workload(workload):
    results = AggregateRiskEngine.compare_backends(
        workload.program, workload.yet,
        backends=("vectorized", "chunked", "multicore"),
        base_config=EngineConfig(n_workers=2),
    )
    assert len(results) == 3
