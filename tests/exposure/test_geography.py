"""Tests for repro.exposure.geography."""

import pytest

from repro.exposure.geography import Region, RegionGrid, haversine_km


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(10.0, 20.0, 10.0, 20.0) == pytest.approx(0.0)

    def test_known_distance_equator_degree(self):
        # One degree of longitude at the equator is ~111.19 km.
        assert haversine_km(0.0, 0.0, 0.0, 1.0) == pytest.approx(111.19, rel=0.01)

    def test_symmetric(self):
        assert haversine_km(10, 20, 30, 40) == pytest.approx(haversine_km(30, 40, 10, 20))

    def test_invalid_coordinates(self):
        with pytest.raises(ValueError):
            haversine_km(100.0, 0.0, 0.0, 0.0)


class TestRegion:
    def test_centroid(self):
        region = Region(0, lat_min=0.0, lat_max=10.0, lon_min=20.0, lon_max=40.0)
        assert region.centroid == (5.0, 30.0)

    def test_contains(self):
        region = Region(0, 0.0, 10.0, 0.0, 10.0)
        assert region.contains(5.0, 5.0)
        assert not region.contains(15.0, 5.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Region(0, 10.0, 10.0, 0.0, 5.0)


class TestRegionGrid:
    def test_size(self):
        assert RegionGrid(n_lat=2, n_lon=4).size == 8

    def test_region_ids_dense(self):
        grid = RegionGrid(n_lat=2, n_lon=3)
        assert [region.region_id for region in grid] == list(range(6))

    def test_locate_returns_containing_region(self):
        grid = RegionGrid(n_lat=2, n_lon=4)
        for region in grid:
            lat, lon = region.centroid
            assert grid.locate(lat, lon).region_id == region.region_id

    def test_locate_clamps_outside_grid(self):
        grid = RegionGrid(n_lat=2, n_lon=4, lat_range=(-60.0, 75.0))
        region = grid.locate(89.0, 0.0)
        assert 0 <= region.region_id < grid.size

    def test_getitem_bounds(self):
        grid = RegionGrid(1, 2)
        with pytest.raises(IndexError):
            _ = grid[2]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RegionGrid(n_lat=0, n_lon=1)
        with pytest.raises(ValueError):
            RegionGrid(lat_range=(10.0, 10.0))
