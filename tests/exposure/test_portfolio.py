"""Tests for repro.exposure.portfolio."""

import numpy as np
import pytest

from repro.exposure.building import Building, ConstructionClass, CoverageTerms, OccupancyType
from repro.exposure.portfolio import ExposurePortfolio


def build_portfolio(n: int = 10) -> ExposurePortfolio:
    buildings = [
        Building(
            building_id=i,
            latitude=float(i),
            longitude=float(-i),
            region=i % 3,
            construction=list(ConstructionClass)[i % len(ConstructionClass)],
            occupancy=list(OccupancyType)[i % len(OccupancyType)],
            replacement_value=1000.0 * (i + 1),
            coverage=CoverageTerms(participation=1.0),
        )
        for i in range(n)
    ]
    return ExposurePortfolio("test-port", buildings)


class TestExposurePortfolio:
    def test_size_and_iteration(self):
        portfolio = build_portfolio(10)
        assert portfolio.size == len(portfolio) == 10
        assert len(list(portfolio)) == 10

    def test_total_insured_value(self):
        portfolio = build_portfolio(4)
        assert portfolio.total_insured_value == pytest.approx(1000 + 2000 + 3000 + 4000)

    def test_value_by_region_sums_to_tiv(self):
        portfolio = build_portfolio(9)
        by_region = portfolio.value_by_region()
        assert sum(by_region.values()) == pytest.approx(portfolio.total_insured_value)

    def test_value_by_construction_sums_to_tiv(self):
        portfolio = build_portfolio(12)
        by_construction = portfolio.value_by_construction()
        assert sum(by_construction.values()) == pytest.approx(portfolio.total_insured_value)

    def test_region_value_fractions_sum_to_one(self):
        fractions = build_portfolio(9).region_value_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_columnar_arrays_match_rows(self):
        portfolio = build_portfolio(5)
        np.testing.assert_allclose(
            portfolio.replacement_values, [1000.0, 2000.0, 3000.0, 4000.0, 5000.0]
        )
        assert portfolio.construction_codes.dtype == np.int16

    def test_subset_by_region(self):
        subset = build_portfolio(9).subset_by_region(1)
        assert subset.size == 3
        assert all(b.region == 1 for b in subset)

    def test_duplicate_ids_rejected(self):
        building = Building(0, 0.0, 0.0, 0, ConstructionClass.MASONRY,
                            OccupancyType.COMMERCIAL, 1000.0)
        with pytest.raises(ValueError):
            ExposurePortfolio("dup", [building, building])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ExposurePortfolio("", [])

    def test_regions_present_sorted(self):
        regions = build_portfolio(9).regions_present()
        np.testing.assert_array_equal(regions, [0, 1, 2])
