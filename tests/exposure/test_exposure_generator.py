"""Tests for repro.exposure.generator."""

import numpy as np
import pytest

from repro.exposure.generator import ExposureGenerator, ExposureProfile
from repro.exposure.geography import RegionGrid


class TestExposureProfile:
    def test_defaults_valid(self):
        ExposureProfile()

    @pytest.mark.parametrize("kwargs", [
        dict(mean_value=0.0),
        dict(home_region_share=1.5),
        dict(site_deductible_fraction=-0.1),
        dict(construction_mix={}),
    ])
    def test_invalid_profile(self, kwargs):
        with pytest.raises(ValueError):
            ExposureProfile(**kwargs)


class TestExposureGenerator:
    def test_portfolio_size(self):
        generator = ExposureGenerator(RegionGrid(1, 4))
        portfolio = generator.generate("p", 50, home_region=1, rng=1)
        assert portfolio.size == 50

    def test_deterministic(self):
        generator = ExposureGenerator(RegionGrid(1, 4))
        a = generator.generate("p", 30, home_region=0, rng=9)
        b = generator.generate("p", 30, home_region=0, rng=9)
        np.testing.assert_allclose(a.replacement_values, b.replacement_values)

    def test_home_region_concentration(self):
        profile = ExposureProfile(home_region_share=0.8)
        generator = ExposureGenerator(RegionGrid(1, 8), profile)
        portfolio = generator.generate("p", 500, home_region=3, rng=2)
        share_home = np.mean(portfolio.regions == 3)
        assert share_home > 0.7

    def test_spill_limited_to_neighbours(self):
        generator = ExposureGenerator(RegionGrid(1, 8))
        portfolio = generator.generate("p", 400, home_region=4, rng=3)
        assert set(np.unique(portfolio.regions)).issubset({3, 4, 5})

    def test_coordinates_inside_region_grid(self):
        grid = RegionGrid(2, 4)
        portfolio = ExposureGenerator(grid).generate("p", 100, home_region=2, rng=4)
        assert (portfolio.latitudes >= -60.0).all() and (portfolio.latitudes <= 75.0).all()

    def test_invalid_home_region(self):
        with pytest.raises(ValueError):
            ExposureGenerator(RegionGrid(1, 4)).generate("p", 10, home_region=9)

    def test_generate_many_round_robin_home_regions(self):
        generator = ExposureGenerator(RegionGrid(1, 4))
        portfolios = generator.generate_many(8, 50, rng=5)
        assert len(portfolios) == 8
        names = {p.name for p in portfolios}
        assert len(names) == 8

    def test_values_heavy_tailed_but_positive(self):
        portfolio = ExposureGenerator(RegionGrid(1, 4)).generate("p", 300, home_region=0, rng=6)
        assert (portfolio.replacement_values > 0).all()
        assert portfolio.replacement_values.max() > 3 * np.median(portfolio.replacement_values)
