"""Tests for repro.exposure.building."""

import pytest

from repro.exposure.building import Building, ConstructionClass, CoverageTerms, OccupancyType


class TestCoverageTerms:
    def test_defaults_are_passthrough(self):
        assert CoverageTerms().apply(1000.0) == pytest.approx(1000.0)

    def test_deductible_subtracted(self):
        terms = CoverageTerms(deductible=100.0)
        assert terms.apply(250.0) == pytest.approx(150.0)
        assert terms.apply(50.0) == 0.0

    def test_limit_caps_recovery(self):
        terms = CoverageTerms(deductible=0.0, limit=500.0)
        assert terms.apply(800.0) == pytest.approx(500.0)

    def test_participation_scales(self):
        terms = CoverageTerms(participation=0.5)
        assert terms.apply(1000.0) == pytest.approx(500.0)

    def test_combined_terms(self):
        terms = CoverageTerms(deductible=100.0, limit=400.0, participation=0.8)
        # min(max(1000 - 100, 0), 400) * 0.8 = 320
        assert terms.apply(1000.0) == pytest.approx(320.0)

    @pytest.mark.parametrize("kwargs", [
        dict(deductible=-1.0),
        dict(limit=-5.0),
        dict(participation=1.5),
    ])
    def test_invalid_terms(self, kwargs):
        with pytest.raises(ValueError):
            CoverageTerms(**kwargs)

    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            CoverageTerms().apply(-1.0)


def make_building(**overrides):
    kwargs = dict(
        building_id=1,
        latitude=45.0,
        longitude=-60.0,
        region=2,
        construction=ConstructionClass.WOOD_FRAME,
        occupancy=OccupancyType.RESIDENTIAL,
        replacement_value=500_000.0,
    )
    kwargs.update(overrides)
    return Building(**kwargs)


class TestBuilding:
    def test_valid_building(self):
        building = make_building()
        assert building.replacement_value == 500_000.0

    @pytest.mark.parametrize("overrides", [
        dict(building_id=-1),
        dict(latitude=95.0),
        dict(longitude=200.0),
        dict(region=-1),
        dict(replacement_value=0.0),
    ])
    def test_invalid_building(self, overrides):
        with pytest.raises(ValueError):
            make_building(**overrides)

    def test_expected_site_loss(self):
        building = make_building(
            coverage=CoverageTerms(deductible=10_000.0, limit=400_000.0, participation=1.0)
        )
        # damage 0.5 -> 250k ground up -> 240k after deductible
        assert building.expected_site_loss(0.5) == pytest.approx(240_000.0)

    def test_expected_site_loss_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            make_building().expected_site_loss(1.5)
