"""Stochastic event catalog substrate.

A catastrophe model starts from a *stochastic event catalog*: a large set of
synthetic catastrophic events ("a mathematical representation of the natural
occurrence patterns and characteristics of catastrophe perils such as
hurricanes, tornadoes, severe winter storms or earthquakes" — Section I of the
paper).  Each event carries the peril it belongs to, an annual occurrence
rate, and severity parameters from which per-site losses are later derived by
the hazard/vulnerability model (:mod:`repro.hazard`).

The paper's experiments use a global multi-peril catalog of up to two million
events; :class:`~repro.catalog.generator.CatalogGenerator` produces synthetic
catalogs of any size with realistic rate/severity structure.
"""

from repro.catalog.events import Event, EventCatalog
from repro.catalog.frequency import (
    FrequencyModel,
    NegativeBinomialFrequency,
    PoissonFrequency,
)
from repro.catalog.generator import CatalogGenerator, PerilMix
from repro.catalog.peril import Peril, PerilProfile, default_peril_profiles
from repro.catalog.severity import (
    GammaSeverity,
    LognormalSeverity,
    ParetoSeverity,
    SeverityModel,
)

__all__ = [
    "Peril",
    "PerilProfile",
    "default_peril_profiles",
    "Event",
    "EventCatalog",
    "FrequencyModel",
    "PoissonFrequency",
    "NegativeBinomialFrequency",
    "SeverityModel",
    "LognormalSeverity",
    "ParetoSeverity",
    "GammaSeverity",
    "CatalogGenerator",
    "PerilMix",
]
