"""Event-severity models.

Severity models describe the ground-up loss of a single occurrence.  They are
used in two places:

* the catalog generator draws a *mean* severity per event from a peril-level
  severity model, and
* the catastrophe model (:mod:`repro.hazard`) uses the severity scale together
  with vulnerability curves to produce exposure-specific expected losses.

Three classic heavy-tailed families are provided — lognormal, Pareto (type I)
and gamma — each parameterised by mean and coefficient of variation so that
they can be swapped without re-deriving parameters.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RNGLike, derive_rng
from repro.utils.validation import ensure_positive

__all__ = ["SeverityModel", "LognormalSeverity", "ParetoSeverity", "GammaSeverity"]


class SeverityModel(abc.ABC):
    """Abstract ground-up severity model."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected ground-up loss of one occurrence."""

    @property
    @abc.abstractmethod
    def cv(self) -> float:
        """Coefficient of variation (std / mean) of the occurrence loss."""

    @abc.abstractmethod
    def sample(self, n: int, rng: RNGLike = None) -> np.ndarray:
        """Sample ``n`` independent occurrence losses."""

    @property
    def std(self) -> float:
        """Standard deviation of the occurrence loss."""
        return self.mean * self.cv


@dataclass(frozen=True)
class LognormalSeverity(SeverityModel):
    """Lognormal severity parameterised by mean and coefficient of variation."""

    mean_loss: float
    cv_loss: float

    def __post_init__(self) -> None:
        ensure_positive(self.mean_loss, "mean_loss")
        ensure_positive(self.cv_loss, "cv_loss")

    @property
    def mean(self) -> float:
        return float(self.mean_loss)

    @property
    def cv(self) -> float:
        return float(self.cv_loss)

    @property
    def sigma(self) -> float:
        """Log-space standard deviation."""
        return math.sqrt(math.log1p(self.cv_loss**2))

    @property
    def mu(self) -> float:
        """Log-space mean."""
        return math.log(self.mean_loss) - 0.5 * self.sigma**2

    def sample(self, n: int, rng: RNGLike = None) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        generator = derive_rng(rng)
        return generator.lognormal(self.mu, self.sigma, size=n)


@dataclass(frozen=True)
class ParetoSeverity(SeverityModel):
    """Pareto (type I) severity with shape ``alpha`` and scale ``x_min``.

    ``alpha`` must exceed 2 for the coefficient of variation to be finite.
    """

    x_min: float
    alpha: float

    def __post_init__(self) -> None:
        ensure_positive(self.x_min, "x_min")
        if self.alpha <= 2.0:
            raise ValueError(f"alpha must be > 2 for finite variance, got {self.alpha}")

    @property
    def mean(self) -> float:
        return float(self.alpha * self.x_min / (self.alpha - 1.0))

    @property
    def cv(self) -> float:
        variance = (self.x_min**2 * self.alpha) / ((self.alpha - 1.0) ** 2 * (self.alpha - 2.0))
        return float(math.sqrt(variance) / self.mean)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "ParetoSeverity":
        """Construct from a target mean and coefficient of variation.

        Solves ``cv^2 = 1 / (alpha (alpha - 2))`` for ``alpha`` and then picks
        ``x_min`` to hit the mean.
        """
        ensure_positive(mean, "mean")
        ensure_positive(cv, "cv")
        # alpha^2 - 2 alpha - 1/cv^2 = 0  =>  alpha = 1 + sqrt(1 + 1/cv^2)
        alpha = 1.0 + math.sqrt(1.0 + 1.0 / (cv * cv))
        x_min = mean * (alpha - 1.0) / alpha
        return cls(x_min=x_min, alpha=alpha)

    def sample(self, n: int, rng: RNGLike = None) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        generator = derive_rng(rng)
        # Inverse-CDF sampling: X = x_min * U^{-1/alpha}.
        u = generator.random(n)
        return self.x_min * np.power(1.0 - u, -1.0 / self.alpha)


@dataclass(frozen=True)
class GammaSeverity(SeverityModel):
    """Gamma severity parameterised by mean and coefficient of variation."""

    mean_loss: float
    cv_loss: float

    def __post_init__(self) -> None:
        ensure_positive(self.mean_loss, "mean_loss")
        ensure_positive(self.cv_loss, "cv_loss")

    @property
    def mean(self) -> float:
        return float(self.mean_loss)

    @property
    def cv(self) -> float:
        return float(self.cv_loss)

    @property
    def shape(self) -> float:
        """Gamma shape parameter ``k`` (= 1 / cv^2)."""
        return 1.0 / (self.cv_loss**2)

    @property
    def scale(self) -> float:
        """Gamma scale parameter ``theta`` (= mean / k)."""
        return self.mean_loss / self.shape

    def sample(self, n: int, rng: RNGLike = None) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        generator = derive_rng(rng)
        return generator.gamma(self.shape, self.scale, size=n)


def severity_for_peril(mean: float, cv: float, heavy_tailed: bool) -> SeverityModel:
    """Pick a severity family appropriate to a peril's tail behaviour."""
    if heavy_tailed:
        return LognormalSeverity(mean, cv)
    return GammaSeverity(mean, cv)
