"""Synthetic stochastic event catalog generation.

The paper's experiments are driven by a global multi-peril catalog of up to
two million events.  That catalog is proprietary; the generator here produces
a synthetic stand-in with the same *structure*:

* events are partitioned across perils according to a configurable mix,
* each event has an individual annual occurrence rate (so that the total
  catalog rate matches a target events-per-year figure used by the YET
  simulator),
* each event has a mean severity drawn from the peril's severity model and a
  normalised hazard intensity used downstream by the vulnerability module,
* events are scattered over a configurable number of geographic regions so
  that different exposure sets (and hence different ELTs) see different,
  partially-overlapping subsets of the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

import numpy as np

from repro.catalog.events import EventCatalog
from repro.catalog.peril import Peril, PerilProfile, default_peril_profiles
from repro.catalog.severity import LognormalSeverity
from repro.utils.rng import RNGLike, derive_rng
from repro.utils.validation import ensure_positive

__all__ = ["PerilMix", "CatalogGenerator"]


@dataclass(frozen=True)
class PerilMix:
    """Relative share of catalog events allocated to each peril.

    The default mix loosely mirrors a global multi-peril catalog: many
    moderate-frequency events (tornado, flood, winter storm) and fewer
    high-severity events (hurricane, earthquake).
    """

    weights: Mapping[Peril, float] = field(
        default_factory=lambda: {
            Peril.HURRICANE: 0.22,
            Peril.EARTHQUAKE: 0.18,
            Peril.FLOOD: 0.20,
            Peril.TORNADO: 0.16,
            Peril.WINTER_STORM: 0.14,
            Peril.WILDFIRE: 0.10,
        }
    )

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("PerilMix requires at least one peril")
        for peril, weight in self.weights.items():
            if not isinstance(peril, Peril):
                raise TypeError(f"keys must be Peril members, got {type(peril).__name__}")
            if weight < 0:
                raise ValueError(f"weight for {peril} must be non-negative, got {weight}")
        if sum(self.weights.values()) <= 0:
            raise ValueError("at least one peril weight must be positive")

    def normalised(self) -> Dict[Peril, float]:
        """Weights rescaled to sum to one."""
        total = float(sum(self.weights.values()))
        return {peril: weight / total for peril, weight in self.weights.items()}

    def counts(self, catalog_size: int) -> Dict[Peril, int]:
        """Integer event counts per peril summing exactly to ``catalog_size``.

        Uses the largest-remainder method so that rounding never drops events.
        """
        if catalog_size < 0:
            raise ValueError(f"catalog_size must be non-negative, got {catalog_size}")
        shares = self.normalised()
        raw = {peril: share * catalog_size for peril, share in shares.items()}
        counts = {peril: int(np.floor(value)) for peril, value in raw.items()}
        remainder = catalog_size - sum(counts.values())
        # Assign leftover events to the perils with the largest fractional parts.
        order = sorted(raw, key=lambda peril: raw[peril] - counts[peril], reverse=True)
        for peril in order[:remainder]:
            counts[peril] += 1
        return counts


class CatalogGenerator:
    """Generates synthetic :class:`~repro.catalog.events.EventCatalog` objects.

    Parameters
    ----------
    profiles:
        Per-peril statistical profiles; defaults to
        :func:`~repro.catalog.peril.default_peril_profiles`.
    mix:
        Share of catalog events per peril.
    n_regions:
        Number of geographic regions events are scattered over.  Exposure sets
        later concentrate in one or a few regions, which controls how many
        catalog events produce non-zero losses in an ELT (the ELT sparsity the
        paper quotes as "20K events [with non-zero losses] out of a 2 million
        event catalog").
    rate_shape:
        Shape parameter of the gamma distribution used to spread each peril's
        total annual rate over its events.  Small values concentrate the rate
        in few "frequent" events, matching the skewed rate structure of real
        catalogs.
    """

    def __init__(
        self,
        profiles: Mapping[Peril, PerilProfile] | None = None,
        mix: PerilMix | None = None,
        n_regions: int = 8,
        rate_shape: float = 0.5,
    ) -> None:
        self.profiles = dict(profiles) if profiles is not None else default_peril_profiles()
        self.mix = mix if mix is not None else PerilMix(
            {peril: 1.0 for peril in self.profiles}
        )
        for peril in self.mix.normalised():
            if peril not in self.profiles:
                raise KeyError(f"mix references {peril} which has no profile")
        if n_regions <= 0:
            raise ValueError(f"n_regions must be positive, got {n_regions}")
        ensure_positive(rate_shape, "rate_shape")
        self.n_regions = int(n_regions)
        self.rate_shape = float(rate_shape)

    def generate(self, catalog_size: int, rng: RNGLike = None) -> EventCatalog:
        """Generate a catalog with ``catalog_size`` events.

        The per-peril total annual rates of the generated catalog match the
        profiles' ``annual_rate`` values exactly (the individual event rates
        are normalised to sum to the peril total), so the expected number of
        occurrences per simulated year is independent of the catalog size.
        """
        ensure_positive(catalog_size, "catalog_size")
        generator = derive_rng(rng)
        counts = self.mix.counts(int(catalog_size))

        peril_order = tuple(Peril)
        peril_index = {peril: code for code, peril in enumerate(peril_order)}

        peril_codes = np.empty(catalog_size, dtype=np.int16)
        rates = np.empty(catalog_size, dtype=np.float64)
        severities = np.empty(catalog_size, dtype=np.float64)
        intensities = np.empty(catalog_size, dtype=np.float64)
        regions = np.empty(catalog_size, dtype=np.int32)

        cursor = 0
        for peril, count in counts.items():
            if count == 0:
                continue
            profile = self.profiles[peril]
            stop = cursor + count
            peril_codes[cursor:stop] = peril_index[peril]

            # Spread the peril's aggregate annual rate over its events with a
            # skewed (gamma) distribution, then normalise to the exact total.
            raw_rates = generator.gamma(self.rate_shape, 1.0, size=count)
            raw_rates = np.maximum(raw_rates, 1e-12)
            rates[cursor:stop] = raw_rates * (profile.annual_rate / raw_rates.sum())

            severity_model = LognormalSeverity(profile.severity_mean, profile.severity_cv)
            severities[cursor:stop] = severity_model.sample(count, generator)

            # Normalised hazard intensity correlated with severity rank: the
            # largest-loss events of a peril are also its most intense ones.
            ranks = severities[cursor:stop].argsort().argsort()
            base_intensity = (ranks + 1.0) / count
            noise = generator.normal(0.0, 0.05, size=count)
            intensities[cursor:stop] = np.clip(base_intensity + noise, 0.0, None)

            regions[cursor:stop] = generator.integers(0, self.n_regions, size=count)
            cursor = stop

        if cursor != catalog_size:  # pragma: no cover - defensive
            raise RuntimeError("internal error: generated event count mismatch")

        return EventCatalog(
            perils=peril_codes,
            annual_rates=rates,
            mean_severities=severities,
            intensities=intensities,
            regions=regions,
            peril_order=peril_order,
        )

    def generate_with_rate(
        self, catalog_size: int, events_per_year: float, rng: RNGLike = None
    ) -> EventCatalog:
        """Generate a catalog whose total annual rate equals ``events_per_year``.

        The paper's trials contain 800–1500 events per year, far more than the
        handful of natural catastrophes a real year produces, because the YET
        enumerates *all* modelled event occurrences across a global multi-peril
        book.  This helper rescales the per-event rates so that the simulator
        produces trials of the desired length.
        """
        ensure_positive(events_per_year, "events_per_year")
        catalog = self.generate(catalog_size, rng)
        scale = events_per_year / catalog.total_annual_rate
        return EventCatalog(
            perils=catalog.peril_codes,
            annual_rates=catalog.annual_rates * scale,
            mean_severities=catalog.mean_severities,
            intensities=catalog.intensities,
            regions=catalog.regions,
            peril_order=catalog.peril_order,
        )
