"""Event-occurrence frequency models.

The Year Event Table simulator needs to decide *how many* catastrophic events
occur in each simulated contractual year.  The industry-standard choices are

* a **Poisson** model — independent occurrences at a constant annual rate, and
* a **negative binomial** model — over-dispersed occurrence counts capturing
  clustering of events (e.g. active hurricane seasons), parameterised by the
  mean annual rate and a dispersion factor.

Both are implemented as vectorised samplers returning one count per trial.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RNGLike, derive_rng
from repro.utils.validation import ensure_positive

__all__ = ["FrequencyModel", "PoissonFrequency", "NegativeBinomialFrequency"]


class FrequencyModel(abc.ABC):
    """Abstract annual occurrence-count model."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected number of occurrences per year."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Variance of the number of occurrences per year."""

    @abc.abstractmethod
    def sample_counts(self, n_trials: int, rng: RNGLike = None) -> np.ndarray:
        """Sample the number of occurrences for ``n_trials`` independent years."""

    def clipped_counts(
        self,
        n_trials: int,
        rng: RNGLike = None,
        min_events: int = 0,
        max_events: int | None = None,
    ) -> np.ndarray:
        """Sample counts and clip them into ``[min_events, max_events]``.

        The paper notes that trials hold "approximately between 800 to 1500"
        events; clipping lets workload presets enforce such practical bounds
        while retaining the stochastic structure.
        """
        if min_events < 0:
            raise ValueError(f"min_events must be non-negative, got {min_events}")
        if max_events is not None and max_events < min_events:
            raise ValueError("max_events must be >= min_events")
        counts = self.sample_counts(n_trials, rng)
        upper = np.iinfo(np.int64).max if max_events is None else int(max_events)
        return np.clip(counts, int(min_events), upper)


@dataclass(frozen=True)
class PoissonFrequency(FrequencyModel):
    """Poisson occurrence model with a fixed annual rate."""

    rate: float

    def __post_init__(self) -> None:
        ensure_positive(self.rate, "rate")

    @property
    def mean(self) -> float:
        return float(self.rate)

    @property
    def variance(self) -> float:
        return float(self.rate)

    def sample_counts(self, n_trials: int, rng: RNGLike = None) -> np.ndarray:
        if n_trials < 0:
            raise ValueError(f"n_trials must be non-negative, got {n_trials}")
        generator = derive_rng(rng)
        return generator.poisson(self.rate, size=n_trials).astype(np.int64)


@dataclass(frozen=True)
class NegativeBinomialFrequency(FrequencyModel):
    """Negative binomial occurrence model.

    Parameterised by the mean annual rate and a ``dispersion`` factor equal to
    the variance-to-mean ratio.  ``dispersion = 1`` degenerates (in the limit)
    to a Poisson model; values above 1 produce clustered, over-dispersed years.
    """

    rate: float
    dispersion: float = 1.5

    def __post_init__(self) -> None:
        ensure_positive(self.rate, "rate")
        if self.dispersion <= 1.0:
            raise ValueError(
                f"dispersion must be > 1 for a proper negative binomial, got {self.dispersion}"
            )

    @property
    def mean(self) -> float:
        return float(self.rate)

    @property
    def variance(self) -> float:
        return float(self.rate * self.dispersion)

    @property
    def _n_p(self) -> tuple[float, float]:
        """NumPy's (n, p) parameterisation from (mean, variance)."""
        mean = self.rate
        var = self.variance
        p = mean / var
        n = mean * p / (1.0 - p)
        return n, p

    def sample_counts(self, n_trials: int, rng: RNGLike = None) -> np.ndarray:
        if n_trials < 0:
            raise ValueError(f"n_trials must be non-negative, got {n_trials}")
        generator = derive_rng(rng)
        n, p = self._n_p
        return generator.negative_binomial(n, p, size=n_trials).astype(np.int64)
