"""Event catalog containers.

The catalog is stored column-wise in NumPy arrays so that the Year Event
Table simulator and the catastrophe model can operate on it without Python
loops.  Event identifiers are dense integers ``0 .. size-1``: the paper's
direct-access-table design (Section III-B) relies on event ids being usable
directly as array indices into a dense loss vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Sequence

import numpy as np

from repro.catalog.peril import Peril
from repro.utils.validation import ensure_non_negative, ensure_positive

__all__ = ["Event", "EventCatalog"]


@dataclass(frozen=True)
class Event:
    """A single stochastic event.

    Attributes
    ----------
    event_id:
        Dense integer identifier, unique within the catalog.
    peril:
        Peril of the event.
    annual_rate:
        Poisson occurrence rate of this particular event per contractual year.
    mean_severity:
        Mean ground-up industry-wide loss if the event occurs, before any
        exposure-specific scaling by the catastrophe model.
    intensity:
        Normalised hazard intensity in [0, inf) used by the vulnerability
        module to derive site-level damage ratios.
    region:
        Integer id of the geographic region the event primarily affects.
    """

    event_id: int
    peril: Peril
    annual_rate: float
    mean_severity: float
    intensity: float
    region: int = 0

    def __post_init__(self) -> None:
        if self.event_id < 0:
            raise ValueError(f"event_id must be non-negative, got {self.event_id}")
        ensure_positive(self.annual_rate, "annual_rate")
        ensure_non_negative(self.mean_severity, "mean_severity")
        ensure_non_negative(self.intensity, "intensity")
        if self.region < 0:
            raise ValueError(f"region must be non-negative, got {self.region}")


class EventCatalog:
    """Column-wise container of stochastic events.

    Parameters
    ----------
    perils:
        Integer-coded peril per event (codes index :attr:`peril_order`).
    annual_rates:
        Per-event Poisson occurrence rates (events / year).
    mean_severities:
        Per-event mean ground-up severities.
    intensities:
        Per-event normalised hazard intensities.
    regions:
        Per-event geographic region ids.
    peril_order:
        The tuple of :class:`Peril` members that the integer codes refer to.
    """

    def __init__(
        self,
        perils: np.ndarray,
        annual_rates: np.ndarray,
        mean_severities: np.ndarray,
        intensities: np.ndarray,
        regions: np.ndarray | None = None,
        peril_order: Sequence[Peril] = tuple(Peril),
    ) -> None:
        self.peril_codes = np.ascontiguousarray(perils, dtype=np.int16)
        self.annual_rates = np.ascontiguousarray(annual_rates, dtype=np.float64)
        self.mean_severities = np.ascontiguousarray(mean_severities, dtype=np.float64)
        self.intensities = np.ascontiguousarray(intensities, dtype=np.float64)
        n = self.peril_codes.shape[0]
        if regions is None:
            regions = np.zeros(n, dtype=np.int32)
        self.regions = np.ascontiguousarray(regions, dtype=np.int32)
        self.peril_order: tuple[Peril, ...] = tuple(peril_order)

        for name, arr in (
            ("annual_rates", self.annual_rates),
            ("mean_severities", self.mean_severities),
            ("intensities", self.intensities),
            ("regions", self.regions),
        ):
            if arr.shape[0] != n:
                raise ValueError(
                    f"{name} has length {arr.shape[0]}, expected {n} (length of perils)"
                )
        if n and (self.peril_codes.min() < 0 or self.peril_codes.max() >= len(self.peril_order)):
            raise ValueError("peril codes out of range of peril_order")
        if np.any(self.annual_rates <= 0):
            raise ValueError("all annual_rates must be strictly positive")
        if np.any(self.mean_severities < 0):
            raise ValueError("mean_severities must be non-negative")

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of events in the catalog."""
        return int(self.peril_codes.shape[0])

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, event_id: int) -> Event:
        if not 0 <= event_id < self.size:
            raise IndexError(f"event_id {event_id} out of range [0, {self.size})")
        return Event(
            event_id=int(event_id),
            peril=self.peril_order[int(self.peril_codes[event_id])],
            annual_rate=float(self.annual_rates[event_id]),
            mean_severity=float(self.mean_severities[event_id]),
            intensity=float(self.intensities[event_id]),
            region=int(self.regions[event_id]),
        )

    def __iter__(self) -> Iterator[Event]:
        for event_id in range(self.size):
            yield self[event_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventCatalog(size={self.size}, perils={len(self.peril_order)})"

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def total_annual_rate(self) -> float:
        """Expected number of event occurrences per contractual year."""
        return float(self.annual_rates.sum())

    def occurrence_probabilities(self) -> np.ndarray:
        """Per-event probability of being the one that occurs, given one occurrence.

        Used by the YET simulator to draw event identities conditionally on the
        Poisson-sampled number of occurrences in a trial.
        """
        total = self.total_annual_rate
        if total <= 0:
            raise ValueError("catalog has zero total annual rate")
        return self.annual_rates / total

    def peril_mask(self, peril: Peril) -> np.ndarray:
        """Boolean mask of the events belonging to ``peril``."""
        try:
            code = self.peril_order.index(peril)
        except ValueError as exc:
            raise KeyError(f"peril {peril} not present in catalog peril_order") from exc
        return self.peril_codes == code

    def events_for_peril(self, peril: Peril) -> np.ndarray:
        """Event ids of all events belonging to ``peril``."""
        return np.nonzero(self.peril_mask(peril))[0].astype(np.int64)

    def events_for_region(self, region: int) -> np.ndarray:
        """Event ids of all events whose primary region is ``region``."""
        return np.nonzero(self.regions == region)[0].astype(np.int64)

    def peril_summary(self) -> Dict[Peril, Dict[str, float]]:
        """Per-peril counts, total rates and mean severities (for reporting)."""
        summary: Dict[Peril, Dict[str, float]] = {}
        for code, peril in enumerate(self.peril_order):
            mask = self.peril_codes == code
            count = int(mask.sum())
            if count == 0:
                continue
            summary[peril] = {
                "count": float(count),
                "total_annual_rate": float(self.annual_rates[mask].sum()),
                "mean_severity": float(self.mean_severities[mask].mean()),
            }
        return summary

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_events(cls, events: Sequence[Event]) -> "EventCatalog":
        """Build a catalog from a sequence of :class:`Event` records.

        Events must have contiguous ids ``0..n-1`` (any order in the input).
        """
        n = len(events)
        ids = sorted(event.event_id for event in events)
        if ids != list(range(n)):
            raise ValueError("event ids must be exactly 0..n-1 with no gaps or duplicates")
        peril_order = tuple(Peril)
        peril_index: Mapping[Peril, int] = {p: i for i, p in enumerate(peril_order)}
        perils = np.zeros(n, dtype=np.int16)
        rates = np.zeros(n, dtype=np.float64)
        severities = np.zeros(n, dtype=np.float64)
        intensities = np.zeros(n, dtype=np.float64)
        regions = np.zeros(n, dtype=np.int32)
        for event in events:
            i = event.event_id
            perils[i] = peril_index[event.peril]
            rates[i] = event.annual_rate
            severities[i] = event.mean_severity
            intensities[i] = event.intensity
            regions[i] = event.region
        return cls(perils, rates, severities, intensities, regions, peril_order)

    def subset(self, event_ids: np.ndarray) -> "EventCatalog":
        """Return a new catalog containing only ``event_ids`` (re-indexed densely)."""
        idx = np.asarray(event_ids, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise IndexError("event_ids out of range")
        return EventCatalog(
            self.peril_codes[idx],
            self.annual_rates[idx],
            self.mean_severities[idx],
            self.intensities[idx],
            self.regions[idx],
            self.peril_order,
        )
