"""Peril definitions.

A *peril* is the physical phenomenon generating losses (hurricane, earthquake,
flood, ...).  Each peril has a characteristic annual frequency, a seasonality
profile (hurricanes cluster in Aug–Oct, winter storms in Dec–Feb) and a
severity scale.  These profiles drive both the synthetic catalog generator and
the Year Event Table simulator's time-stamp sampling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.validation import ensure_in_range, ensure_positive

__all__ = ["Peril", "PerilProfile", "default_peril_profiles"]


class Peril(enum.Enum):
    """Catastrophe perils covered by the synthetic global catalog."""

    HURRICANE = "hurricane"
    EARTHQUAKE = "earthquake"
    FLOOD = "flood"
    TORNADO = "tornado"
    WINTER_STORM = "winter_storm"
    WILDFIRE = "wildfire"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class PerilProfile:
    """Statistical profile of one peril used by the catalog generator.

    Attributes
    ----------
    peril:
        The peril this profile describes.
    annual_rate:
        Expected number of occurrences of *some* event of this peril per
        contractual year (over the whole catalog region).
    severity_mean:
        Mean ground-up industry loss of a single occurrence, in currency units.
    severity_cv:
        Coefficient of variation of the occurrence severity (heavy-tailed
        perils such as earthquake have large CVs).
    season_peak:
        Peak of the within-year seasonality as a fraction of the year in
        ``[0, 1)`` (e.g. ~0.7 for North-Atlantic hurricanes peaking in
        September).
    season_concentration:
        Strength of the seasonality; 0 means uniform over the year, larger
        values concentrate occurrences around ``season_peak``.
    """

    peril: Peril
    annual_rate: float
    severity_mean: float
    severity_cv: float
    season_peak: float = 0.5
    season_concentration: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive(self.annual_rate, "annual_rate")
        ensure_positive(self.severity_mean, "severity_mean")
        ensure_positive(self.severity_cv, "severity_cv")
        ensure_in_range(self.season_peak, 0.0, 1.0, "season_peak")
        if self.season_concentration < 0:
            raise ValueError(
                f"season_concentration must be non-negative, got {self.season_concentration}"
            )


def default_peril_profiles() -> Dict[Peril, PerilProfile]:
    """Return the default peril mix of the synthetic global catalog.

    The absolute values are illustrative industry-scale magnitudes; what
    matters for reproducing the paper is the *multi-peril structure* (several
    perils with very different frequencies and severities) because it shapes
    the sparsity of the ELTs relative to the full catalog.
    """
    profiles: Tuple[PerilProfile, ...] = (
        PerilProfile(Peril.HURRICANE, annual_rate=3.2, severity_mean=4.0e9,
                     severity_cv=2.5, season_peak=0.70, season_concentration=12.0),
        PerilProfile(Peril.EARTHQUAKE, annual_rate=1.1, severity_mean=6.5e9,
                     severity_cv=3.5, season_peak=0.5, season_concentration=0.0),
        PerilProfile(Peril.FLOOD, annual_rate=6.0, severity_mean=8.0e8,
                     severity_cv=1.8, season_peak=0.45, season_concentration=4.0),
        PerilProfile(Peril.TORNADO, annual_rate=14.0, severity_mean=2.5e8,
                     severity_cv=1.5, season_peak=0.40, season_concentration=6.0),
        PerilProfile(Peril.WINTER_STORM, annual_rate=5.5, severity_mean=6.0e8,
                     severity_cv=1.2, season_peak=0.04, season_concentration=10.0),
        PerilProfile(Peril.WILDFIRE, annual_rate=2.4, severity_mean=1.2e9,
                     severity_cv=2.0, season_peak=0.62, season_concentration=8.0),
    )
    return {profile.peril: profile for profile in profiles}
