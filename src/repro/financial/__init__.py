"""Financial and contractual terms substrate.

Two levels of terms appear in the aggregate analysis (Section II of the
paper):

* **ELT financial terms** ``I`` — applied to each event loss extracted from a
  single ELT before losses are combined across the layer's ELTs (currency
  conversion, per-event retention/limit and the ceding share);
* **Layer terms** ``T = (T_OccR, T_OccL, T_AggR, T_AggL)`` — applied to the
  combined per-occurrence losses (occurrence retention/limit, Cat XL /
  Per-Occurrence XL semantics) and to the trial's cumulative loss (aggregate
  retention/limit, Aggregate XL / Stop-Loss semantics), see Table I.

The vectorised kernels that apply these terms to whole arrays of losses live
in :mod:`repro.financial.policies`; contract-type convenience constructors
(Cat XL, Aggregate XL, combined) are in :mod:`repro.financial.contracts`.
"""

from repro.financial.contracts import (
    aggregate_xl_terms,
    combined_xl_terms,
    occurrence_xl_terms,
    quota_share_terms,
)
from repro.financial.currency import Currency, CurrencyConverter
from repro.financial.policies import (
    aggregate_terms_shortcut_batch,
    apply_aggregate_terms_cumulative,
    apply_aggregate_terms_cumulative_batch,
    apply_financial_terms,
    apply_occurrence_terms,
    apply_occurrence_terms_batch,
    layer_net_of_terms,
)
from repro.financial.terms import FinancialTerms, LayerTerms, LayerTermsVectors

__all__ = [
    "FinancialTerms",
    "LayerTerms",
    "LayerTermsVectors",
    "Currency",
    "CurrencyConverter",
    "apply_financial_terms",
    "apply_occurrence_terms",
    "apply_occurrence_terms_batch",
    "apply_aggregate_terms_cumulative",
    "apply_aggregate_terms_cumulative_batch",
    "aggregate_terms_shortcut_batch",
    "layer_net_of_terms",
    "occurrence_xl_terms",
    "aggregate_xl_terms",
    "combined_xl_terms",
    "quota_share_terms",
]
