"""Currency handling for ELT metadata.

The paper notes that "each ELT is characterised by its own metadata including
information about currency exchange rates".  A cedant reporting in EUR or JPY
has its expected losses converted into the analysis (portfolio) currency
before aggregation; the conversion rate is folded into the per-ELT financial
terms as ``fx_rate``.
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping

from repro.utils.validation import ensure_positive

__all__ = ["Currency", "CurrencyConverter"]


class Currency(enum.Enum):
    """ISO-4217 style currency codes used by the synthetic workloads."""

    USD = "USD"
    EUR = "EUR"
    GBP = "GBP"
    JPY = "JPY"
    CAD = "CAD"
    AUD = "AUD"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Illustrative long-run average rates to USD used as defaults by the
#: workload generator (the precise values are irrelevant to the engine's
#: behaviour; they only need to be positive and distinct).
_DEFAULT_RATES_TO_USD: Dict[Currency, float] = {
    Currency.USD: 1.00,
    Currency.EUR: 1.10,
    Currency.GBP: 1.28,
    Currency.JPY: 0.0085,
    Currency.CAD: 0.75,
    Currency.AUD: 0.68,
}


class CurrencyConverter:
    """Converts amounts between currencies via per-currency rates to a base.

    Parameters
    ----------
    rates_to_base:
        Mapping of currency to its value expressed in the base currency
        (e.g. ``{EUR: 1.10}`` means 1 EUR = 1.10 base units).  The base
        currency itself must map to 1.0 if present.
    base:
        The base (analysis) currency.
    """

    def __init__(
        self,
        rates_to_base: Mapping[Currency, float] | None = None,
        base: Currency = Currency.USD,
    ) -> None:
        self.base = base
        rates = dict(_DEFAULT_RATES_TO_USD if rates_to_base is None else rates_to_base)
        if base not in rates:
            rates[base] = 1.0
        for currency, rate in rates.items():
            ensure_positive(rate, f"rate for {currency}")
        if abs(rates[base] - 1.0) > 1e-12:
            raise ValueError(f"rate for base currency {base} must be 1.0, got {rates[base]}")
        self._rates = rates

    @property
    def currencies(self) -> tuple[Currency, ...]:
        """Currencies the converter knows about."""
        return tuple(self._rates)

    def rate(self, source: Currency, target: Currency | None = None) -> float:
        """Conversion rate from ``source`` to ``target`` (default: the base)."""
        target = self.base if target is None else target
        try:
            to_base = self._rates[source]
            target_to_base = self._rates[target]
        except KeyError as exc:
            raise KeyError(f"unknown currency {exc.args[0]}") from exc
        return to_base / target_to_base

    def convert(self, amount: float, source: Currency, target: Currency | None = None) -> float:
        """Convert ``amount`` from ``source`` currency to ``target``."""
        return float(amount) * self.rate(source, target)

    def fx_rate_for_elt(self, elt_currency: Currency) -> float:
        """The ``fx_rate`` to embed in an ELT's financial terms."""
        return self.rate(elt_currency, self.base)
