"""Contract-type constructors for layer terms.

The paper (Section I) describes the common excess-of-loss contract families a
reinsurer's portfolio contains:

* **Cat XL / Per-Occurrence XL** — coverage of single event occurrences up to a
  limit, with an optional retention: only the occurrence terms are active.
* **Aggregate XL / Stop-Loss** — coverage of the annual cumulative loss up to an
  aggregate limit with an optional aggregate retention: only the aggregate
  terms are active.
* **Combined** contracts carrying both occurrence and aggregate features.
* **Quota share** — a proportional cession, represented here at the ELT level
  through the ``share`` component of the financial terms.

These helpers simply build the corresponding :class:`LayerTerms` /
:class:`FinancialTerms` values with validation and descriptive names, so that
examples and tests read like the underwriting they model.
"""

from __future__ import annotations

from repro.financial.terms import FinancialTerms, LayerTerms
from repro.utils.validation import ensure_in_range, ensure_non_negative, ensure_positive

__all__ = [
    "occurrence_xl_terms",
    "aggregate_xl_terms",
    "combined_xl_terms",
    "quota_share_terms",
    "contract_kind",
]


def occurrence_xl_terms(retention: float, limit: float) -> LayerTerms:
    """Layer terms of a Cat XL / Per-Occurrence XL contract.

    ``limit`` is the occurrence limit in excess of ``retention`` (i.e. a
    "``limit`` xs ``retention``" layer in market shorthand).
    """
    ensure_non_negative(retention, "retention")
    ensure_positive(limit, "limit", allow_inf=True)
    return LayerTerms(
        occurrence_retention=retention,
        occurrence_limit=limit,
        aggregate_retention=0.0,
        aggregate_limit=float("inf"),
    )


def aggregate_xl_terms(retention: float, limit: float) -> LayerTerms:
    """Layer terms of an Aggregate XL / Stop-Loss contract."""
    ensure_non_negative(retention, "retention")
    ensure_positive(limit, "limit", allow_inf=True)
    return LayerTerms(
        occurrence_retention=0.0,
        occurrence_limit=float("inf"),
        aggregate_retention=retention,
        aggregate_limit=limit,
    )


def combined_xl_terms(
    occurrence_retention: float,
    occurrence_limit: float,
    aggregate_retention: float,
    aggregate_limit: float,
) -> LayerTerms:
    """Layer terms combining per-occurrence and aggregate features."""
    ensure_non_negative(occurrence_retention, "occurrence_retention")
    ensure_positive(occurrence_limit, "occurrence_limit", allow_inf=True)
    ensure_non_negative(aggregate_retention, "aggregate_retention")
    ensure_positive(aggregate_limit, "aggregate_limit", allow_inf=True)
    return LayerTerms(
        occurrence_retention=occurrence_retention,
        occurrence_limit=occurrence_limit,
        aggregate_retention=aggregate_retention,
        aggregate_limit=aggregate_limit,
    )


def quota_share_terms(share: float, event_limit: float = float("inf")) -> FinancialTerms:
    """ELT-level financial terms of a quota-share cession.

    Parameters
    ----------
    share:
        Ceded proportion of each event loss, in ``[0, 1]``.
    event_limit:
        Optional per-event cap applied before the share.
    """
    ensure_in_range(share, 0.0, 1.0, "share")
    ensure_positive(event_limit, "event_limit", allow_inf=True)
    return FinancialTerms(retention=0.0, limit=event_limit, share=share, fx_rate=1.0)


def contract_kind(terms: LayerTerms) -> str:
    """Classify layer terms into the contract families of Section I.

    Returns one of ``"pass-through"``, ``"per-occurrence XL"``,
    ``"aggregate XL"`` or ``"combined XL"``.
    """
    has_occ = terms.has_occurrence_terms
    has_agg = terms.has_aggregate_terms
    if has_occ and has_agg:
        return "combined XL"
    if has_occ:
        return "per-occurrence XL"
    if has_agg:
        return "aggregate XL"
    return "pass-through"
