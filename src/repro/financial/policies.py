"""Vectorised application of financial and layer terms.

These are the numerical kernels corresponding to lines 6–17 of the paper's
basic algorithm, written as array operations so the vectorized, chunked and
GPU-simulated backends can apply them to whole trials (or whole Year Event
Tables) at once.  The sequential backend uses the scalar methods on
:class:`~repro.financial.terms.FinancialTerms` / ``LayerTerms`` instead, which
gives the tests two independent implementations to cross-check.
"""

from __future__ import annotations

import numpy as np

from repro.financial.terms import FinancialTerms, LayerTerms, LayerTermsVectors
from repro.utils.arrays import (
    cumulative_within_segments,
    segment_sum,
    segment_sum_2d,
    validate_offsets,
)

__all__ = [
    "apply_financial_terms",
    "apply_financial_terms_matrix",
    "apply_occurrence_terms",
    "apply_occurrence_terms_batch",
    "apply_aggregate_terms_cumulative",
    "apply_aggregate_terms_cumulative_batch",
    "aggregate_terms_shortcut",
    "aggregate_terms_shortcut_batch",
    "clip_aggregate_totals",
    "layer_net_of_terms",
]


def apply_financial_terms(losses: np.ndarray, terms: FinancialTerms) -> np.ndarray:
    """Apply one ELT's financial terms ``I`` to an array of event losses.

    Vectorised form of lines 6–7 of the basic algorithm for a single ELT.
    """
    values = np.asarray(losses, dtype=np.float64) * terms.fx_rate
    np.subtract(values, terms.retention, out=values)
    np.clip(values, 0.0, terms.limit, out=values)
    values *= terms.share
    return values


def apply_financial_terms_matrix(
    losses: np.ndarray,
    retentions: np.ndarray,
    limits: np.ndarray,
    shares: np.ndarray,
    fx_rates: np.ndarray | None = None,
) -> np.ndarray:
    """Apply per-ELT terms to an ``(n_elts, n_events)`` loss matrix in place-ish.

    Each row ``i`` of ``losses`` is transformed with the ``i``-th retention,
    limit, share and FX rate (broadcast over the event axis).  Returns a new
    array; the input is not modified.
    """
    matrix = np.asarray(losses, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"losses must be 2-D (n_elts, n_events), got shape {matrix.shape}")
    n_elts = matrix.shape[0]
    retentions = np.asarray(retentions, dtype=np.float64).reshape(n_elts, 1)
    limits = np.asarray(limits, dtype=np.float64).reshape(n_elts, 1)
    shares = np.asarray(shares, dtype=np.float64).reshape(n_elts, 1)
    if fx_rates is None:
        result = matrix.copy()
    else:
        result = matrix * np.asarray(fx_rates, dtype=np.float64).reshape(n_elts, 1)
    np.subtract(result, retentions, out=result)
    np.clip(result, 0.0, limits, out=result)
    result *= shares
    return result


def apply_occurrence_terms(occurrence_losses: np.ndarray, terms: LayerTerms) -> np.ndarray:
    """Apply ``T_OccR``/``T_OccL`` to per-occurrence losses (lines 10–11)."""
    values = np.asarray(occurrence_losses, dtype=np.float64) - terms.occurrence_retention
    np.clip(values, 0.0, terms.occurrence_limit, out=values)
    return values


def apply_occurrence_terms_batch(
    occurrence_losses: np.ndarray,
    vectors: LayerTermsVectors,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply every layer's ``T_OccR``/``T_OccL`` to an ``(n_layers, n_events)`` matrix.

    Row ``i`` of the input holds layer ``i``'s combined per-event losses; the
    ``i``-th occurrence retention and limit broadcast over that row.  This is
    the batched form of :func:`apply_occurrence_terms` used by the fused
    multi-layer kernel.  Pass ``out=occurrence_losses`` to transform a
    scratch gather buffer in place and avoid a second full-size allocation.
    """
    matrix = np.asarray(occurrence_losses, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(
            f"occurrence_losses must be 2-D (n_layers, n_events), got shape {matrix.shape}"
        )
    if matrix.shape[0] != vectors.n_layers:
        raise ValueError(
            f"expected {vectors.n_layers} rows, got {matrix.shape[0]}"
        )
    values = np.subtract(matrix, vectors.occurrence_retentions[:, None], out=out)
    np.clip(values, 0.0, vectors.occurrence_limits[:, None], out=values)
    return values


def apply_aggregate_terms_cumulative(
    occurrence_losses: np.ndarray,
    trial_offsets: np.ndarray,
    terms: LayerTerms,
) -> np.ndarray:
    """Full cumulative-pass application of the aggregate terms (lines 12–19).

    For each trial (segment of ``occurrence_losses`` delimited by
    ``trial_offsets``):

    1. build the running cumulative sum of occurrence losses,
    2. clip every prefix sum with ``min(max(. - T_AggR, 0), T_AggL)``,
    3. difference consecutive clipped prefixes,
    4. sum the differences — the trial's year loss.

    Because the clipped prefix differences telescope, the result equals
    :func:`aggregate_terms_shortcut`; the full pass is retained because it is
    the literal transcription of the paper's algorithm and because it exposes
    the per-event *net* contributions needed by extensions such as
    reinstatement accounting.
    """
    losses = np.asarray(occurrence_losses, dtype=np.float64)
    offsets = validate_offsets(np.asarray(trial_offsets), losses.shape[0])
    cumulative = cumulative_within_segments(losses, offsets)
    clipped = np.clip(cumulative - terms.aggregate_retention, 0.0, terms.aggregate_limit)
    # Difference within each segment: subtract the previous clipped value,
    # using 0 at each segment start.
    deltas = np.empty_like(clipped)
    if clipped.size:
        deltas[0] = clipped[0]
        deltas[1:] = clipped[1:] - clipped[:-1]
        starts = offsets[:-1]
        starts = starts[starts < clipped.size]
        deltas[starts] = clipped[starts]
    return segment_sum(deltas, offsets)


def aggregate_terms_shortcut(
    occurrence_losses: np.ndarray,
    trial_offsets: np.ndarray,
    terms: LayerTerms,
) -> np.ndarray:
    """Telescoped application of the aggregate terms.

    The sum of clipped-prefix differences within a trial telescopes to the
    clipped total, so the year loss is simply
    ``min(max(sum(occ losses) - T_AggR, 0), T_AggL)``.  This is the form the
    optimised backends use; its equivalence with the full cumulative pass is
    asserted by property-based tests.
    """
    losses = np.asarray(occurrence_losses, dtype=np.float64)
    offsets = validate_offsets(np.asarray(trial_offsets), losses.shape[0])
    totals = segment_sum(losses, offsets)
    return np.clip(totals - terms.aggregate_retention, 0.0, terms.aggregate_limit)


def clip_aggregate_totals(totals: np.ndarray, vectors: LayerTermsVectors) -> np.ndarray:
    """Clip per-trial occurrence totals with every layer's ``T_AggR``/``T_AggL``.

    The final step of the telescoped aggregate pass, shared by
    :func:`aggregate_terms_shortcut_batch` and the streamed fused kernel so
    the aggregate-term semantics live in exactly one place.  ``totals`` has
    shape ``(n_layers, n_trials)``; a new year-loss matrix is returned.
    """
    values = np.asarray(totals, dtype=np.float64) - vectors.aggregate_retentions[:, None]
    np.clip(values, 0.0, vectors.aggregate_limits[:, None], out=values)
    return values


def aggregate_terms_shortcut_batch(
    occurrence_losses: np.ndarray,
    trial_offsets: np.ndarray,
    vectors: LayerTermsVectors,
) -> np.ndarray:
    """Telescoped aggregate terms for every layer at once.

    Batched form of :func:`aggregate_terms_shortcut`: per-trial totals are
    taken row-wise over the ``(n_layers, n_events)`` occurrence-loss matrix
    and each row is clipped with its own ``T_AggR``/``T_AggL``.  Returns an
    ``(n_layers, n_trials)`` year-loss matrix.
    """
    matrix = np.asarray(occurrence_losses, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(
            f"occurrence_losses must be 2-D (n_layers, n_events), got shape {matrix.shape}"
        )
    return clip_aggregate_totals(segment_sum_2d(matrix, trial_offsets), vectors)


def apply_aggregate_terms_cumulative_batch(
    occurrence_losses: np.ndarray,
    trial_offsets: np.ndarray,
    vectors: LayerTermsVectors,
) -> np.ndarray:
    """Full cumulative-pass aggregate terms for every layer at once.

    The cumulative pass is inherently per-layer (the clipped prefix sums do
    not batch into one broadcast expression), so this simply maps
    :func:`apply_aggregate_terms_cumulative` over the rows; it exists so the
    fused kernel can honour ``use_aggregate_shortcut=False``.
    """
    matrix = np.asarray(occurrence_losses, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(
            f"occurrence_losses must be 2-D (n_layers, n_events), got shape {matrix.shape}"
        )
    offsets = validate_offsets(np.asarray(trial_offsets), matrix.shape[1])
    year_losses = np.empty((matrix.shape[0], offsets.size - 1), dtype=np.float64)
    for row, terms in enumerate(vectors):
        year_losses[row] = apply_aggregate_terms_cumulative(matrix[row], offsets, terms)
    return year_losses


def layer_net_of_terms(
    per_event_losses: np.ndarray,
    trial_offsets: np.ndarray,
    terms: LayerTerms,
    use_shortcut: bool = True,
) -> np.ndarray:
    """Year loss per trial given combined per-event losses of one layer.

    Applies the occurrence terms event-wise, then the aggregate terms per
    trial (lines 10–19 of the basic algorithm).
    """
    occurrence = apply_occurrence_terms(per_event_losses, terms)
    if use_shortcut:
        return aggregate_terms_shortcut(occurrence, trial_offsets, terms)
    return apply_aggregate_terms_cumulative(occurrence, trial_offsets, terms)
