"""Financial term definitions.

Table I of the paper defines the four layer terms:

=========  =====================  ==========================================================
Notation   Term                   Description
=========  =====================  ==========================================================
T_OccR     Occurrence Retention   Retention/deductible of the insured for an individual
                                  occurrence loss
T_OccL     Occurrence Limit       Limit the insurer will pay for occurrence losses in excess
                                  of the retention
T_AggR     Aggregate Retention    Retention/deductible of the insured for an annual
                                  cumulative loss
T_AggL     Aggregate Limit        Limit the insurer will pay for annual cumulative losses in
                                  excess of the aggregate retention
=========  =====================  ==========================================================

The per-ELT financial terms ``I`` are less standardised in the paper ("each
ELT is characterised by its own metadata including information about currency
exchange rates and terms that are applied at the level of each individual
event loss"); we model them as an event-level retention/limit pair, a ceding
share (participation) and a currency conversion rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.utils.validation import ensure_in_range, ensure_non_negative

__all__ = ["FinancialTerms", "LayerTerms", "LayerTermsVectors"]


@dataclass(frozen=True)
class FinancialTerms:
    """Per-ELT financial terms ``I`` applied to each individual event loss.

    The net loss of an event with ground-up loss ``x`` is::

        share * min(max(x * fx_rate - retention, 0), limit)

    Attributes
    ----------
    retention:
        Event-level deductible retained by the cedant.
    limit:
        Event-level limit of recoverable loss (``inf`` = unlimited).
    share:
        Ceding share / participation in ``[0, 1]``.
    fx_rate:
        Currency conversion rate applied to the ELT's losses before any other
        term (1.0 = losses already in the analysis currency).
    """

    retention: float = 0.0
    limit: float = float("inf")
    share: float = 1.0
    fx_rate: float = 1.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.retention, "retention")
        ensure_non_negative(self.limit, "limit", allow_inf=True)
        ensure_in_range(self.share, 0.0, 1.0, "share")
        if self.fx_rate <= 0:
            raise ValueError(f"fx_rate must be positive, got {self.fx_rate}")

    @property
    def is_passthrough(self) -> bool:
        """True when the terms leave every loss unchanged."""
        return (
            self.retention == 0.0
            and self.limit == float("inf")
            and self.share == 1.0
            and self.fx_rate == 1.0
        )

    def apply(self, ground_up_loss: float) -> float:
        """Net loss of one event after applying these terms."""
        loss = ensure_non_negative(ground_up_loss, "ground_up_loss") * self.fx_rate
        return self.share * min(max(loss - self.retention, 0.0), self.limit)


@dataclass(frozen=True)
class LayerTerms:
    """Layer terms ``T = (T_OccR, T_OccL, T_AggR, T_AggL)`` (Table I).

    Attributes
    ----------
    occurrence_retention:
        ``T_OccR`` — retention applied to each individual occurrence loss.
    occurrence_limit:
        ``T_OccL`` — limit on each occurrence loss in excess of the retention.
    aggregate_retention:
        ``T_AggR`` — retention applied to the trial's cumulative loss.
    aggregate_limit:
        ``T_AggL`` — limit on the cumulative loss in excess of the aggregate
        retention.
    """

    occurrence_retention: float = 0.0
    occurrence_limit: float = float("inf")
    aggregate_retention: float = 0.0
    aggregate_limit: float = float("inf")

    def __post_init__(self) -> None:
        ensure_non_negative(self.occurrence_retention, "occurrence_retention")
        ensure_non_negative(self.occurrence_limit, "occurrence_limit", allow_inf=True)
        ensure_non_negative(self.aggregate_retention, "aggregate_retention")
        ensure_non_negative(self.aggregate_limit, "aggregate_limit", allow_inf=True)

    @property
    def is_passthrough(self) -> bool:
        """True when the layer terms leave every loss unchanged."""
        return (
            self.occurrence_retention == 0.0
            and self.occurrence_limit == float("inf")
            and self.aggregate_retention == 0.0
            and self.aggregate_limit == float("inf")
        )

    @property
    def has_occurrence_terms(self) -> bool:
        """True when non-trivial per-occurrence terms are present."""
        return self.occurrence_retention != 0.0 or self.occurrence_limit != float("inf")

    @property
    def has_aggregate_terms(self) -> bool:
        """True when non-trivial aggregate (stop-loss) terms are present."""
        return self.aggregate_retention != 0.0 or self.aggregate_limit != float("inf")

    def apply_occurrence(self, occurrence_loss: float) -> float:
        """Occurrence loss net of ``T_OccR``/``T_OccL`` (line 11 of the algorithm)."""
        loss = ensure_non_negative(occurrence_loss, "occurrence_loss")
        return min(max(loss - self.occurrence_retention, 0.0), self.occurrence_limit)

    def apply_aggregate(self, cumulative_loss: float) -> float:
        """Cumulative loss net of ``T_AggR``/``T_AggL`` (line 15 of the algorithm)."""
        loss = ensure_non_negative(cumulative_loss, "cumulative_loss")
        return min(max(loss - self.aggregate_retention, 0.0), self.aggregate_limit)

    def max_annual_recovery(self) -> float:
        """Largest possible year loss under these terms (``T_AggL``)."""
        return self.aggregate_limit

    def describe(self) -> str:
        """Human-readable description, mirroring Table I's notation."""
        def fmt(value: float) -> str:
            return "unlimited" if value == float("inf") else f"{value:,.0f}"

        return (
            f"T_OccR={fmt(self.occurrence_retention)}, T_OccL={fmt(self.occurrence_limit)}, "
            f"T_AggR={fmt(self.aggregate_retention)}, T_AggL={fmt(self.aggregate_limit)}"
        )


class LayerTermsVectors:
    """Structure-of-arrays form of many layers' :class:`LayerTerms`.

    The fused multi-layer kernel applies the occurrence and aggregate terms of
    every layer as one broadcast expression over an ``(n_layers, n_events)``
    loss matrix; this container holds the four term vectors (each of length
    ``n_layers``) those expressions broadcast against.
    """

    __slots__ = (
        "occurrence_retentions",
        "occurrence_limits",
        "aggregate_retentions",
        "aggregate_limits",
    )

    def __init__(
        self,
        occurrence_retentions: np.ndarray,
        occurrence_limits: np.ndarray,
        aggregate_retentions: np.ndarray,
        aggregate_limits: np.ndarray,
    ) -> None:
        vectors = [
            np.ascontiguousarray(v, dtype=np.float64)
            for v in (
                occurrence_retentions,
                occurrence_limits,
                aggregate_retentions,
                aggregate_limits,
            )
        ]
        lengths = {v.shape for v in vectors}
        if len(lengths) != 1 or vectors[0].ndim != 1:
            raise ValueError(
                f"term vectors must be 1-D and equally long, got shapes {sorted(lengths)}"
            )
        for name, values, allow_inf in (
            ("occurrence_retentions", vectors[0], False),
            ("occurrence_limits", vectors[1], True),
            ("aggregate_retentions", vectors[2], False),
            ("aggregate_limits", vectors[3], True),
        ):
            # Same contract LayerTerms enforces per scalar: non-negative (and
            # NaN-free); only the limits may be infinite.
            if values.size and not np.all(values >= 0.0):
                raise ValueError(f"{name} must be non-negative")
            if not allow_inf and values.size and not np.all(np.isfinite(values)):
                raise ValueError(f"{name} must be finite")
        self.occurrence_retentions = vectors[0]
        self.occurrence_limits = vectors[1]
        self.aggregate_retentions = vectors[2]
        self.aggregate_limits = vectors[3]

    @classmethod
    def from_terms(cls, terms: Sequence[LayerTerms]) -> "LayerTermsVectors":
        """Stack a sequence of per-layer terms into term vectors."""
        return cls(
            np.array([t.occurrence_retention for t in terms], dtype=np.float64),
            np.array([t.occurrence_limit for t in terms], dtype=np.float64),
            np.array([t.aggregate_retention for t in terms], dtype=np.float64),
            np.array([t.aggregate_limit for t in terms], dtype=np.float64),
        )

    @property
    def n_layers(self) -> int:
        """Number of layers the vectors describe."""
        return int(self.occurrence_retentions.shape[0])

    def __len__(self) -> int:
        return self.n_layers

    def __iter__(self) -> Iterator[LayerTerms]:
        for i in range(self.n_layers):
            yield self[i]

    def __getitem__(self, index: int) -> LayerTerms:
        return LayerTerms(
            occurrence_retention=float(self.occurrence_retentions[index]),
            occurrence_limit=float(self.occurrence_limits[index]),
            aggregate_retention=float(self.aggregate_retentions[index]),
            aggregate_limit=float(self.aggregate_limits[index]),
        )

    def tile(self, repetitions: int) -> "LayerTermsVectors":
        """Term vectors of ``repetitions`` copies of the layers, concatenated.

        The replication-batched uncertainty engine stacks ``R`` sampled
        realisations of an ``n_layers`` program into one fused
        ``(R * n_layers, catalog_size)`` loss stack; this produces the
        matching term vectors (replication-major, i.e. the layer block is
        repeated ``R`` times).
        """
        if repetitions <= 0:
            raise ValueError(f"repetitions must be positive, got {repetitions}")
        return LayerTermsVectors(
            np.tile(self.occurrence_retentions, repetitions),
            np.tile(self.occurrence_limits, repetitions),
            np.tile(self.aggregate_retentions, repetitions),
            np.tile(self.aggregate_limits, repetitions),
        )

    def take(self, indices: Sequence[int] | np.ndarray) -> "LayerTermsVectors":
        """Term vectors of a subset (or permutation) of the layers."""
        idx = np.asarray(indices, dtype=np.int64)
        return LayerTermsVectors(
            self.occurrence_retentions[idx],
            self.occurrence_limits[idx],
            self.aggregate_retentions[idx],
            self.aggregate_limits[idx],
        )
