"""Content-addressed, delta-aware caching of accumulated results.

The :class:`~repro.service.cache.PlanCache` removes the pre-kernel work from
a warm request; this module removes the *kernel pass itself* wherever the
answer — or most of it — has already been computed.  A
:class:`ResultCache` maps the content key

``(program digest, YET digest, config digest, trial range)``

to the :class:`~repro.core.results.ResultAccumulator` holding that run's
year-loss blocks, and PR 5's merge algebra makes three serving patterns
exact by construction:

* **exact repeat** — the same key returns the accumulated result with no
  engine pass at all;
* **append-trials delta** — a submitted YET whose first ``n`` trials are
  byte-identical to a cached entry's YET (recognised via
  :func:`~repro.service.digests.yet_prefix_digest`) re-prices only the
  appended trial range: the cached accumulator is
  :meth:`~repro.core.results.ResultAccumulator.extended` over the new
  domain, its ``missing_ranges()`` are priced through
  :meth:`~repro.core.plan.ExecutionPlan.restrict`, and the merge is
  bit-identical to a cold monolithic run because per-trial reductions are
  trial-local;
* **single-layer delta** — a program differing from a cached sibling in a
  strict subset of its per-layer digests re-prices only the changed stack
  rows and composes them over the cached block (rows are computed
  independently by every kernel path, so the composition is bit-identical
  to a cold run of the full program).

The cache is **tiered**: a bounded in-process LRU of live accumulators in
front of an optional on-disk store of serialized
:class:`~repro.core.results.PartialResult` blocks (raw ``.npy`` members plus
a JSON manifest per entry — the ``save_yet_store`` idiom of
:mod:`repro.yet.io`).  Disk entries survive process restarts: a new
:class:`ResultCache` pointed at the same directory re-indexes the manifests
and serves them without re-running any kernel.  Eviction from the LRU only
drops *residency* for disk-backed entries; memory-only entries are gone when
evicted.

Delta correctness leans entirely on the content digests of
:mod:`repro.service.digests` — which is why the digest framing there is
length-prefixed and the YET digest covers every field of the table.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Hashable, List, Tuple

from repro.core.results import PartialResult, ResultAccumulator
from repro.parallel.partitioner import TrialRange
from repro.service.digests import yet_digest, yet_prefix_digest
from repro.yet.table import YearEventTable

__all__ = ["ResultCache", "ResultCacheMatch", "ResultCacheStats"]

_ENTRY_MANIFEST = "result_entry.json"
_ENTRY_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ResultCacheStats:
    """Counters describing the result cache's behaviour so far."""

    exact_hits: int = 0
    append_hits: int = 0
    row_hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    disk_entries: int = 0
    disk_loads: int = 0
    maxsize: int = 0

    @property
    def hits(self) -> int:
        """Total lookups answered at least partially from cached blocks."""
        return self.exact_hits + self.append_hits + self.row_hits

    @property
    def requests(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        if not self.requests:
            return 0.0
        return self.hits / self.requests

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"result-cache: {self.entries}/{self.maxsize} resident "
            f"(+{self.disk_entries} on disk), "
            f"{self.exact_hits} exact / {self.append_hits} append / "
            f"{self.row_hits} row hits, {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.evictions} evictions"
        )

    def to_dict(self) -> dict[str, int | float]:
        """JSON-compatible counter snapshot (for serve responses)."""
        return {
            "exact_hits": self.exact_hits,
            "append_hits": self.append_hits,
            "row_hits": self.row_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "disk_entries": self.disk_entries,
            "disk_loads": self.disk_loads,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class _EntryMeta:
    """The small always-resident description of one cached entry."""

    key: tuple
    program_digest: str
    yet_digest: str
    config_digest: str
    trials: TrialRange
    n_rows: int
    row_digests: Tuple[str, ...] | None
    row_names: Tuple[str, ...] | None
    plan_key: Hashable | None = None  # in-process only; not persisted


@dataclass(frozen=True)
class ResultCacheMatch:
    """Outcome of one :meth:`ResultCache.lookup`.

    Attributes
    ----------
    status:
        ``"exact"`` (accumulator complete over the requested domain),
        ``"append"`` (accumulator extended over the requested domain;
        ``missing_ranges()`` is the trial range still to price),
        ``"rows"`` (complete sibling accumulator; ``changed_rows`` are the
        stack rows to re-price), or ``"miss"``.
    accumulator:
        The prepared accumulator (``None`` on a miss).  Exact and row
        matches share the cached object — callers must not mutate it;
        append matches get a fresh extension that is safe to fill.
    changed_rows:
        Row indices whose per-row digests differ (``"rows"`` only).
    plan_key:
        The plan-cache key recorded when the entry was stored (if any) —
        lets the service borrow the prior plan's fused stack.
    """

    status: str
    accumulator: ResultAccumulator | None = None
    changed_rows: Tuple[int, ...] = ()
    plan_key: Hashable | None = None


class ResultCache:
    """Tiered LRU + on-disk store of accumulated results with delta lookup.

    Parameters
    ----------
    maxsize:
        Maximum number of accumulators kept resident (LRU).  A resident
        entry pins its ``(n_rows, n_trials)`` year-loss blocks, so this
        bound is the cache's memory budget knob.
    disk_dir:
        Optional directory for the persistent tier.  Entries are written
        through on :meth:`store` and re-indexed on construction, so a
        restarted service warm-starts from prior runs.
    """

    def __init__(self, maxsize: int = 16, disk_dir: str | os.PathLike | None = None) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = int(maxsize)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._lock = threading.Lock()
        self._meta: Dict[tuple, _EntryMeta] = {}
        self._resident: "OrderedDict[tuple, ResultAccumulator]" = OrderedDict()
        self._paths: Dict[tuple, Path] = {}
        # (program digest, config digest) -> key of the deepest-coverage
        # complete entry: the base an append-trials delta extends.
        self._latest: Dict[tuple, tuple] = {}
        # (yet digest, config digest) -> keys sharing that YET: the sibling
        # candidates a single-layer delta composes against.
        self._by_yet: Dict[tuple, List[tuple]] = {}
        self._exact_hits = 0
        self._append_hits = 0
        self._row_hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_loads = 0
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            self._scan_disk()

    # ------------------------------------------------------------------ #
    # Key plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def entry_key(
        program_digest: str, yet_digest: str, config_digest: str, trials: TrialRange
    ) -> tuple:
        """The content-addressed key of one entry."""
        return (program_digest, yet_digest, config_digest, (trials.start, trials.stop))

    def _entry_dir(self, key: tuple) -> Path:
        assert self.disk_dir is not None
        token = "|".join(
            (key[0], key[1], key[2], f"{key[3][0]}:{key[3][1]}")
        ).encode()
        return self.disk_dir / hashlib.sha256(token).hexdigest()[:32]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def lookup(
        self,
        *,
        program_digest: str,
        config_digest: str,
        yet: YearEventTable,
        row_digests: Tuple[str, ...] | None = None,
    ) -> ResultCacheMatch:
        """Match one submission against the cached entries.

        Preference order: exact repeat, then append-trials delta, then
        single-layer (row) delta, then miss.  A YET *shorter* than every
        cached entry for the program is a miss — blocks are never sliced.
        """
        ydig = yet_digest(yet)
        trials = TrialRange(0, yet.n_trials)
        key = self.entry_key(program_digest, ydig, config_digest, trials)
        with self._lock:
            meta = self._meta.get(key)
            if meta is not None:
                accumulator = self._get_accumulator(key)
                if accumulator is not None:
                    self._exact_hits += 1
                    return ResultCacheMatch(
                        "exact", accumulator=accumulator, plan_key=meta.plan_key
                    )

            base_key = self._latest.get((program_digest, config_digest))
            if base_key is not None:
                base = self._meta[base_key]
                if base.trials.stop < yet.n_trials and base.yet_digest == (
                    yet_prefix_digest(yet, base.trials.stop)
                ):
                    accumulator = self._get_accumulator(base_key)
                    if accumulator is not None:
                        self._append_hits += 1
                        return ResultCacheMatch(
                            "append",
                            accumulator=accumulator.extended(trials),
                            plan_key=base.plan_key,
                        )

            if row_digests is not None:
                for sibling_key in self._by_yet.get((ydig, config_digest), []):
                    sibling = self._meta[sibling_key]
                    if sibling.row_digests is None or (
                        len(sibling.row_digests) != len(row_digests)
                    ):
                        continue
                    changed = tuple(
                        row
                        for row, (ours, theirs) in enumerate(
                            zip(row_digests, sibling.row_digests)
                        )
                        if ours != theirs
                    )
                    if not changed or len(changed) == len(row_digests):
                        continue
                    accumulator = self._get_accumulator(sibling_key)
                    if accumulator is not None:
                        self._row_hits += 1
                        return ResultCacheMatch(
                            "rows",
                            accumulator=accumulator,
                            changed_rows=changed,
                            plan_key=sibling.plan_key,
                        )

            self._misses += 1
            return ResultCacheMatch("miss")

    # ------------------------------------------------------------------ #
    # Store
    # ------------------------------------------------------------------ #
    def store(
        self,
        *,
        program_digest: str,
        yet_digest: str,
        config_digest: str,
        accumulator: ResultAccumulator,
        row_digests: Tuple[str, ...] | None = None,
        plan_key: Hashable | None = None,
    ) -> None:
        """Insert (or refresh) one *complete* accumulator.

        Write-through: with a ``disk_dir`` configured the entry's blocks
        are persisted immediately, so later processes (and evicted-but-
        disk-backed lookups) can reload them.
        """
        if not accumulator.is_complete:
            raise ValueError("only complete accumulators can be cached")
        key = self.entry_key(program_digest, yet_digest, config_digest, accumulator.trials)
        meta = _EntryMeta(
            key=key,
            program_digest=program_digest,
            yet_digest=yet_digest,
            config_digest=config_digest,
            trials=accumulator.trials,
            n_rows=accumulator.n_rows,
            row_digests=tuple(row_digests) if row_digests is not None else None,
            row_names=accumulator.row_names,
            plan_key=plan_key,
        )
        with self._lock:
            self._meta[key] = meta
            self._resident[key] = accumulator
            self._resident.move_to_end(key)
            if self.disk_dir is not None:
                self._paths[key] = self._write_entry(key, meta, accumulator)
            self._index(meta)
            self._evict_locked()

    # ------------------------------------------------------------------ #
    # Stats / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> ResultCacheStats:
        """A snapshot of the cache counters."""
        with self._lock:
            return ResultCacheStats(
                exact_hits=self._exact_hits,
                append_hits=self._append_hits,
                row_hits=self._row_hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._resident),
                disk_entries=len(self._paths),
                disk_loads=self._disk_loads,
                maxsize=self.maxsize,
            )

    def clear(self) -> None:
        """Drop every resident accumulator and index (stats are kept).

        Disk entries are *not* deleted; with a ``disk_dir`` configured they
        are re-indexed immediately, so the cache keeps serving them.
        """
        with self._lock:
            self._meta.clear()
            self._resident.clear()
            self._paths.clear()
            self._latest.clear()
            self._by_yet.clear()
        if self.disk_dir is not None:
            self._scan_disk()

    def __len__(self) -> int:
        with self._lock:
            return len(self._meta)

    # ------------------------------------------------------------------ #
    # Internals (callers hold self._lock)
    # ------------------------------------------------------------------ #
    def _index(self, meta: _EntryMeta) -> None:
        latest_key = (meta.program_digest, meta.config_digest)
        current = self._latest.get(latest_key)
        if current is None or self._meta[current].trials.stop <= meta.trials.stop:
            self._latest[latest_key] = meta.key
        siblings = self._by_yet.setdefault((meta.yet_digest, meta.config_digest), [])
        if meta.key not in siblings:
            siblings.append(meta.key)

    def _deindex(self, meta: _EntryMeta) -> None:
        latest_key = (meta.program_digest, meta.config_digest)
        if self._latest.get(latest_key) == meta.key:
            # Re-point at the deepest surviving entry for this (program,
            # config) so append-trials deltas keep hitting after eviction;
            # the removed entry is already popped from self._meta.
            survivor: _EntryMeta | None = None
            for candidate in self._meta.values():
                if (candidate.program_digest, candidate.config_digest) != latest_key:
                    continue
                if survivor is None or candidate.trials.stop > survivor.trials.stop:
                    survivor = candidate
            if survivor is None:
                del self._latest[latest_key]
            else:
                self._latest[latest_key] = survivor.key
        siblings = self._by_yet.get((meta.yet_digest, meta.config_digest))
        if siblings is not None:
            if meta.key in siblings:
                siblings.remove(meta.key)
            if not siblings:
                del self._by_yet[(meta.yet_digest, meta.config_digest)]

    def _evict_locked(self) -> None:
        while len(self._resident) > self.maxsize:
            key, _ = self._resident.popitem(last=False)
            self._evictions += 1
            if key not in self._paths:
                # Memory-only entry: evicting residency IS deleting it.
                self._deindex(self._meta.pop(key))

    def _get_accumulator(self, key: tuple) -> ResultAccumulator | None:
        accumulator = self._resident.get(key)
        if accumulator is not None:
            self._resident.move_to_end(key)
            return accumulator
        path = self._paths.get(key)
        if path is None:
            return None
        accumulator = self._read_entry(key, path)
        if accumulator is None:
            # The directory vanished underneath us; forget the entry.
            self._deindex(self._meta.pop(key))
            del self._paths[key]
            return None
        self._disk_loads += 1
        self._resident[key] = accumulator
        self._resident.move_to_end(key)
        self._evict_locked()
        return accumulator

    # ------------------------------------------------------------------ #
    # Disk tier
    # ------------------------------------------------------------------ #
    def _write_entry(
        self, key: tuple, meta: _EntryMeta, accumulator: ResultAccumulator
    ) -> Path:
        directory = self._entry_dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        blocks = [
            partial.save(directory, f"block_{partial.trials.start}_{partial.trials.stop}")
            for partial in accumulator.partials
        ]
        manifest = {
            "format_version": _ENTRY_FORMAT_VERSION,
            "program_digest": meta.program_digest,
            "yet_digest": meta.yet_digest,
            "config_digest": meta.config_digest,
            "trials": [meta.trials.start, meta.trials.stop],
            "n_rows": meta.n_rows,
            "row_digests": list(meta.row_digests) if meta.row_digests is not None else None,
            "row_names": list(meta.row_names) if meta.row_names is not None else None,
            "blocks": blocks,
        }
        (directory / _ENTRY_MANIFEST).write_text(json.dumps(manifest, indent=2) + "\n")
        return directory

    def _read_entry(self, key: tuple, path: Path) -> ResultAccumulator | None:
        meta = self._meta[key]
        try:
            manifest = json.loads((path / _ENTRY_MANIFEST).read_text())
            accumulator = ResultAccumulator(
                meta.n_rows, meta.trials, row_names=meta.row_names
            )
            for entry in manifest["blocks"]:
                accumulator.add(PartialResult.load(path, entry))
        except (OSError, ValueError, KeyError):
            return None
        if not accumulator.is_complete:
            return None
        return accumulator

    def _scan_disk(self) -> None:
        assert self.disk_dir is not None
        for manifest_path in sorted(self.disk_dir.glob(f"*/{_ENTRY_MANIFEST}")):
            try:
                manifest = json.loads(manifest_path.read_text())
                if int(manifest.get("format_version", -1)) != _ENTRY_FORMAT_VERSION:
                    continue
                trials = TrialRange(*(int(v) for v in manifest["trials"]))
                row_digests = manifest.get("row_digests")
                row_names = manifest.get("row_names")
                meta = _EntryMeta(
                    key=self.entry_key(
                        manifest["program_digest"],
                        manifest["yet_digest"],
                        manifest["config_digest"],
                        trials,
                    ),
                    program_digest=manifest["program_digest"],
                    yet_digest=manifest["yet_digest"],
                    config_digest=manifest["config_digest"],
                    trials=trials,
                    n_rows=int(manifest["n_rows"]),
                    row_digests=tuple(row_digests) if row_digests is not None else None,
                    row_names=tuple(row_names) if row_names is not None else None,
                )
            except (OSError, ValueError, KeyError, TypeError):
                continue
            with self._lock:
                self._meta[meta.key] = meta
                self._paths[meta.key] = manifest_path.parent
                self._index(meta)
