"""Request/response serving layer over the aggregate risk engine.

The subsystem behind the library's serving story: declarative, validated
:class:`~repro.service.request.AnalysisRequest` documents (dict/JSON
round-trippable) are dispatched by a long-lived
:class:`~repro.service.service.RiskService` that owns a warm
:class:`~repro.core.engine.AggregateRiskEngine`, a content-addressed
:class:`~repro.service.cache.PlanCache` of lowered execution plans and
fused loss stacks (:mod:`repro.service.digests` provides the content
digests), and retained multicore shared-memory workspaces; every answer is
a uniform :class:`~repro.service.response.AnalysisResponse` carrying the
engine results, quotes and bands plus cache and timing metadata.

On top of the plan cache, an opt-in delta-aware
:class:`~repro.service.result_cache.ResultCache` caches *accumulated
results* for the ``run`` kind: exact repeats skip the kernel pass, and
append-trials or changed-layer deltas re-price only the appended trial
range or the changed stack rows — bit-identical to a cold run by the
partial-result merge algebra.

CLI entry points: ``are request`` (one JSON request round trip) and
``are serve`` (a warm NDJSON request loop), both taking ``--result-cache``.
"""

from repro.service.cache import CacheStats, PlanCache
from repro.service.digests import (
    PLAN_RELEVANT_CONFIG_FIELDS,
    config_digest,
    program_digest,
    stack_digest,
    yet_digest,
    yet_prefix_digest,
)
from repro.service.request import (
    REQUEST_KINDS,
    AnalysisRequest,
    RequestValidationError,
)
from repro.service.response import AnalysisResponse, CacheInfo, error_payload
from repro.service.result_cache import ResultCache, ResultCacheMatch, ResultCacheStats
from repro.service.server import (
    Overloaded,
    RiskServer,
    ServeClient,
    ServerStats,
    ServerThread,
)
from repro.service.service import PreparedSubmission, RiskService, candidate_variants

__all__ = [
    "AnalysisRequest",
    "AnalysisResponse",
    "CacheInfo",
    "CacheStats",
    "Overloaded",
    "PlanCache",
    "PLAN_RELEVANT_CONFIG_FIELDS",
    "PreparedSubmission",
    "REQUEST_KINDS",
    "RequestValidationError",
    "ResultCache",
    "ResultCacheMatch",
    "ResultCacheStats",
    "RiskServer",
    "RiskService",
    "ServeClient",
    "ServerStats",
    "ServerThread",
    "candidate_variants",
    "error_payload",
    "config_digest",
    "program_digest",
    "stack_digest",
    "yet_digest",
    "yet_prefix_digest",
]
