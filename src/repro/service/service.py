"""The RiskService: a long-lived request/response front end for the engine.

The ROADMAP's serving workload — heavy pricing traffic against a stable set
of programs and simulated event sets — is wasteful through the one-shot
:class:`~repro.core.engine.AggregateRiskEngine` facade alone: every call
re-lowers the program to an :class:`~repro.core.plan.ExecutionPlan`,
rebuilds the fused loss stack, and (on multicore) republishes the
shared-memory workspace.  :class:`RiskService` amortises all three across
requests:

* it owns one **warm engine** (created once, reused for every request, with
  multicore shared-workspace retention enabled);
* it keeps a content-addressed :class:`~repro.service.cache.PlanCache` of
  lowered plans + fused stacks, keyed by digests of the program contents,
  the YET and the plan-relevant config (:mod:`repro.service.digests`) — a
  warm request skips straight to the kernel pass and is bit-identical to
  the cold one by construction (same plan object, same kernels);
* it resolves declarative :class:`~repro.service.request.AnalysisRequest`
  documents against a registry of named artifacts (programs, YETs, stacks,
  uncertain layers) with the built-in workload presets as fallback;
* optionally (``result_cache=True`` / ``result_cache_dir=...``) it keeps a
  delta-aware :class:`~repro.service.result_cache.ResultCache` of
  accumulated results for the ``run`` kind: an exact repeat skips the
  kernel pass entirely, a YET extended by appended trials re-prices only
  the appended range, and a program differing in a subset of its layers
  re-prices only the changed stack rows — each served result bit-identical
  to the cold monolithic run by the partial-result merge algebra.

Example::

    service = RiskService(EngineConfig(backend="vectorized"))
    service.register_program("renewal", program)
    service.register_yet("renewal", yet)

    response = service.submit({"kind": "run", "program": "renewal"})
    print(response.summary())           # run on vectorized | cold (...) | 0.0312s
    response = service.submit({"kind": "run", "program": "renewal"})
    print(response.cache.hit)           # True — plan and stack reused
    print(service.cache_stats().summary())

(the CLI equivalents are ``are request --json '{...}'`` for one round trip
and ``are serve`` for a warm NDJSON request loop).
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

import numpy as np

from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine
from repro.core.plan import ExecutionPlan, PlanBuilder
from repro.core.results import EngineResult, PartialResult, ResultAccumulator
from repro.financial.terms import LayerTerms
from repro.parallel.partitioner import TrialRange
from repro.portfolio.layer import Layer
from repro.portfolio.pricing import ProgramQuote, price_program
from repro.portfolio.program import ReinsuranceProgram
from repro.service.cache import CacheStats, PlanCache
from repro.service.digests import (
    config_digest,
    layer_digest,
    program_digest,
    stack_digest,
    terms_digest,
    yet_digest,
)
from repro.service.request import AnalysisRequest, RequestValidationError
from repro.service.response import AnalysisResponse, CacheInfo
from repro.service.result_cache import ResultCache, ResultCacheMatch, ResultCacheStats
from repro.yet.table import YearEventTable

__all__ = ["PreparedSubmission", "RiskService", "candidate_variants"]


def candidate_variants(
    program: ReinsuranceProgram | Layer, n: int
) -> List[ReinsuranceProgram]:
    """N candidate-term variants of a program (the Section IV pricing sweep).

    Variant ``i`` scales every layer's occurrence and aggregate retentions by
    ``1 + 0.25 i`` (variant 0 is the program as written).  The layers' cached
    dense loss matrices are shared across variants — only the layer terms
    differ — so a batch over the variants prices them all from one stacked
    gather without rebuilding any matrix.
    """
    program = ReinsuranceProgram.wrap(program)
    if n <= 0:
        raise ValueError(f"variant count must be positive, got {n}")
    # with_terms only shares a matrix that already exists, so build each
    # layer's dense matrix (and its term-netted combined row) before cloning.
    for layer in program.layers:
        layer.loss_matrix().combined_net_losses()
    variants = []
    for i in range(n):
        scale = 1.0 + 0.25 * i
        layers = [
            layer.with_terms(
                LayerTerms(
                    occurrence_retention=layer.terms.occurrence_retention * scale,
                    occurrence_limit=layer.terms.occurrence_limit,
                    aggregate_retention=layer.terms.aggregate_retention * scale,
                    aggregate_limit=layer.terms.aggregate_limit,
                )
            )
            for layer in program.layers
        ]
        variants.append(ReinsuranceProgram(layers, name=f"{program.name}@retx{scale:.2f}"))
    return variants


@dataclass(frozen=True)
class _StackEntry:
    """A registered precomputed stack: rows + per-row terms (+ names)."""

    stack: np.ndarray
    terms: tuple[LayerTerms, ...]
    row_names: tuple[str, ...] | None = None


@dataclass(frozen=True)
class PreparedSubmission:
    """A request split at its natural serving seam.

    :meth:`RiskService.prepare` runs the CPU-light half — validation,
    artifact resolution, plan-cache lookup — on the calling thread (the
    serving event loop) and returns this handle; :meth:`execute` runs the
    CPU-heavy kernel pass and is safe to dispatch to a worker thread.
    """

    request: AnalysisRequest
    _execute: Callable[[], "AnalysisResponse"] = field(repr=False)

    def execute(self) -> "AnalysisResponse":
        """Run the deferred heavy half; returns the finalised response."""
        return self._execute()


class _CacheAccounting:
    """Per-request plan-cache bookkeeping (thread-correct by construction).

    The cache's global counters are shared across threads, so a
    before/after delta would attribute another thread's lookups to this
    request; instead every lookup a request performs records itself here.
    """

    __slots__ = ("hits", "misses", "key")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.key = ""

    def record(self, hit: bool, key_prefix: str) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if not self.key:
            self.key = key_prefix

    @property
    def looked_up(self) -> bool:
        return bool(self.hits or self.misses)


class RiskService:
    """Long-lived request/response service over a warm engine and plan cache.

    Parameters
    ----------
    config:
        Engine configuration of the warm engine (ignored when ``engine`` is
        given).
    engine:
        An existing engine to serve from.  Multicore shared-workspace
        retention is enabled on it either way.
    cache_size:
        Maximum number of lowered plans kept warm (LRU).
    volatility_loading, expense_ratio:
        Pricing parameters applied to every quote the service produces.
    result_cache:
        Delta-aware caching of accumulated results for the ``run`` kind
        (:class:`~repro.service.result_cache.ResultCache`).  ``False``/
        ``None`` disables it (the default — plan caching alone), ``True``
        enables an in-memory cache, or pass a configured instance.  When
        ``result_cache_dir`` is given the cache defaults to enabled with
        that persistent tier.
    result_cache_dir:
        Directory of the result cache's on-disk tier (optional).
    result_cache_size:
        Maximum number of accumulated results kept resident (LRU).
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        engine: AggregateRiskEngine | None = None,
        cache_size: int = 32,
        volatility_loading: float = 0.3,
        expense_ratio: float = 0.15,
        result_cache: "ResultCache | bool | None" = None,
        result_cache_dir: str | os.PathLike | None = None,
        result_cache_size: int = 16,
    ) -> None:
        self.engine = engine if engine is not None else AggregateRiskEngine(config)
        self.engine.retain_shared_workspaces(True)
        self.cache = PlanCache(cache_size)
        if isinstance(result_cache, ResultCache):
            self.result_cache: ResultCache | None = result_cache
        elif result_cache or (result_cache is None and result_cache_dir is not None):
            self.result_cache = ResultCache(result_cache_size, disk_dir=result_cache_dir)
        else:
            self.result_cache = None
        self.volatility_loading = float(volatility_loading)
        self.expense_ratio = float(expense_ratio)
        self._programs: Dict[str, ReinsuranceProgram] = {}
        self._yets: Dict[str, YearEventTable] = {}
        self._stacks: Dict[str, _StackEntry] = {}
        self._uncertain: Dict[str, tuple] = {}
        # Generated preset workloads, LRU-bounded: a long-lived serve loop
        # fed ever-changing seeds must not pin one workload per seed forever.
        self._preset_workloads: "OrderedDict[tuple, Any]" = OrderedDict()
        self._max_preset_workloads = 8
        # The serving layer drives concurrent submits from an executor pool;
        # registry mutation and the preset LRU must not race.  Reentrant:
        # _resolve_program -> _preset_workload nests acquisitions.
        self._registry_lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Artifact registry
    # ------------------------------------------------------------------ #
    def register_program(self, name: str, program: ReinsuranceProgram | Layer) -> None:
        """Register a program under ``name`` for requests to reference."""
        wrapped = ReinsuranceProgram.wrap(program)
        with self._registry_lock:
            self._programs[str(name)] = wrapped

    def register_yet(self, name: str, yet: YearEventTable) -> None:
        """Register a Year Event Table under ``name``."""
        with self._registry_lock:
            self._yets[str(name)] = yet

    def register_stack(
        self,
        name: str,
        stack: np.ndarray,
        terms: Sequence[LayerTerms],
        row_names: Sequence[str] | None = None,
    ) -> None:
        """Register a precomputed term-netted stack for ``run_stacked``."""
        stack = np.ascontiguousarray(stack, dtype=np.float64)
        entry = _StackEntry(
            stack=stack,
            terms=tuple(terms),
            row_names=tuple(str(n) for n in row_names) if row_names is not None else None,
        )
        with self._registry_lock:
            self._stacks[str(name)] = entry

    def register_uncertain(self, name: str, layers: Sequence) -> None:
        """Register uncertain layers (for ``uncertainty`` requests)."""
        with self._registry_lock:
            self._uncertain[str(name)] = tuple(layers)

    def register_workload(self, name: str, workload) -> None:
        """Register a generated workload's program and YET under one name."""
        self.register_program(name, workload.program)
        self.register_yet(name, workload.yet)

    def _preset_workload(self, name: str, seed: int | None):
        from repro.workloads.generator import WorkloadGenerator
        from repro.workloads.presets import preset, preset_names

        if name not in preset_names():
            return None
        key = (name, seed)
        with self._registry_lock:
            if key not in self._preset_workloads:
                spec = preset(name)
                if seed is not None:
                    spec = spec.scaled(seed=seed)
                self._preset_workloads[key] = WorkloadGenerator(spec).generate()
                while len(self._preset_workloads) > self._max_preset_workloads:
                    self._preset_workloads.popitem(last=False)
            self._preset_workloads.move_to_end(key)
            return self._preset_workloads[key]

    def _resolve_program(
        self, name: str, seed: int | None
    ) -> tuple[ReinsuranceProgram, YearEventTable | None]:
        """(program, companion YET) for a registered or preset name."""
        with self._registry_lock:
            if name in self._programs:
                return self._programs[name], self._yets.get(name)
        workload = self._preset_workload(name, seed)
        if workload is not None:
            return workload.program, workload.yet
        raise RequestValidationError(
            f"unknown program {name!r}: not registered and not a workload preset",
            field="program",
        )

    def _resolve_yet(
        self, request: AnalysisRequest, companion: YearEventTable | None
    ) -> YearEventTable:
        if request.yet is not None:
            with self._registry_lock:
                if request.yet in self._yets:
                    return self._yets[request.yet]
            workload = self._preset_workload(request.yet, request.seed)
            if workload is not None:
                return workload.yet
            raise RequestValidationError(
                f"unknown YET {request.yet!r}: not registered and not a workload preset",
                field="yet",
            )
        if companion is None:
            raise RequestValidationError(
                "request names no YET and the program has none registered "
                "under the same name",
                field="yet",
            )
        return companion

    # ------------------------------------------------------------------ #
    # Plan cache plumbing
    # ------------------------------------------------------------------ #
    def _cached_plan(
        self, key: tuple, builder, acct: _CacheAccounting, key_prefix: str
    ) -> tuple[ExecutionPlan, float]:
        """(plan, lowering seconds) — zero-ish seconds on a warm hit."""
        started = time.perf_counter()
        plan, hit = self.cache.get_or_build(key, builder)
        acct.record(hit, key_prefix)
        return plan, time.perf_counter() - started

    def _program_key(
        self, kind: str, programs: Sequence[ReinsuranceProgram], yet: YearEventTable,
        *extras: Any,
    ) -> tuple:
        return (
            kind,
            tuple(program_digest(program) for program in programs),
            yet_digest(yet),
            config_digest(self.engine.config),
            *extras,
        )

    def cache_stats(self) -> CacheStats:
        """Plan-cache counters for monitoring/benchmarks."""
        return self.cache.stats

    def result_cache_stats(self) -> ResultCacheStats | None:
        """Result-cache counters (``None`` when the cache is disabled)."""
        if self.result_cache is None:
            return None
        return self.result_cache.stats

    def close(self) -> None:
        """Release cached plans and any retained shared-memory workspaces."""
        self.cache.clear()
        if self.result_cache is not None:
            self.result_cache.clear()
        self.engine.release_workspaces()

    def __enter__(self) -> "RiskService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Request dispatch
    # ------------------------------------------------------------------ #
    def submit(
        self, request: AnalysisRequest | Mapping[str, Any] | str
    ) -> AnalysisResponse:
        """Validate, resolve and execute one request; returns the response.

        Accepts an :class:`AnalysisRequest`, a plain dict, or a JSON string
        (the three forms ``are request``/``are serve`` and Python callers
        use interchangeably).
        """
        return self.prepare(request).execute()

    def prepare(
        self, request: AnalysisRequest | Mapping[str, Any] | str
    ) -> PreparedSubmission:
        """Split a submission into its CPU-light and CPU-heavy halves.

        Validation, artifact resolution and the plan-cache lookup happen on
        the calling thread before this returns; the returned handle's
        :meth:`~PreparedSubmission.execute` runs the kernel pass (and, for
        the plain ``run`` kind, nothing else that touches the registries).
        The asyncio server keeps the light half on the event loop and ships
        ``execute`` to its executor pool.

        For kinds other than plain ``run`` (and for the result-cache path,
        whose delta lookups interleave with execution) the whole handler is
        deferred into ``execute``; every handler is thread-safe behind the
        registry/plan-cache/result-cache locks, so this is a scheduling
        distinction, not a correctness one.
        """
        if isinstance(request, str):
            request = AnalysisRequest.from_json(request)
        elif isinstance(request, Mapping):
            request = AnalysisRequest.from_dict(request)
        else:
            request.validate()

        started = time.perf_counter()
        acct = _CacheAccounting()

        if request.kind == "run" and not request.workers and not (
            self.result_cache is not None and request.result_cache
        ):
            req = request
            program, companion = self._resolve_program(req.program, req.seed)
            yet = self._resolve_yet(req, companion)
            key = self._program_key("run", [program], yet, req.shards)
            plan, lower_seconds = self._cached_plan(
                key,
                lambda: PlanBuilder.from_program(program, yet, n_shards=req.shards),
                acct,
                key[1][0][:12],
            )

            def execute_run() -> AnalysisResponse:
                executed = time.perf_counter()
                result = self.engine.run_plan(plan)
                execute_seconds = time.perf_counter() - executed
                response = AnalysisResponse(
                    request=req,
                    results=(result,),
                    quotes=self._quotes_for(req, [program], [result]),
                    timings={"lower": lower_seconds, "execute": execute_seconds},
                )
                return self._finalize(req, response, acct, started)

            return PreparedSubmission(request=req, _execute=execute_run)

        handler = {
            "run": self._handle_run,
            "run_many": self._handle_run_many,
            "run_stacked": self._handle_run_stacked,
            "sweep": self._handle_sweep,
            "uncertainty": self._handle_uncertainty,
        }[request.kind]
        req = request

        def execute_deferred() -> AnalysisResponse:
            return self._finalize(req, handler(req, acct), acct, started)

        return PreparedSubmission(request=req, _execute=execute_deferred)

    def _finalize(
        self,
        request: AnalysisRequest,
        response: AnalysisResponse,
        acct: _CacheAccounting,
        started: float,
    ) -> AnalysisResponse:
        """Attach cache accounting, total wall time and backend identity."""
        cache = None
        if acct.looked_up:
            cache = CacheInfo(
                hit=acct.misses == 0,
                hits=acct.hits,
                misses=acct.misses,
                key=acct.key,
            )
        timings = dict(response.timings)
        timings["total"] = time.perf_counter() - started
        return AnalysisResponse(
            request=request,
            results=response.results,
            quotes=response.quotes,
            bands=response.bands,
            cache=cache,
            timings=timings,
            backend=self.engine.backend_name,
            details=response.details,
        )

    # ------------------------------------------------------------------ #
    # Kind handlers (return partially-filled responses; submit finalises)
    # ------------------------------------------------------------------ #
    def _quotes_for(
        self, request: AnalysisRequest, programs: Sequence[ReinsuranceProgram],
        results: Sequence[EngineResult],
    ) -> tuple[ProgramQuote, ...]:
        if not request.quote:
            return ()
        return tuple(
            price_program(
                program,
                result.ylt,
                volatility_loading=self.volatility_loading,
                expense_ratio=self.expense_ratio,
            )
            for program, result in zip(programs, results)
        )

    def _handle_run(
        self, request: AnalysisRequest, acct: _CacheAccounting
    ) -> AnalysisResponse:
        program, companion = self._resolve_program(request.program, request.seed)
        yet = self._resolve_yet(request, companion)
        if request.workers:
            # Fleet execution: the shards are lowered and cached on the
            # workers (digest-keyed), so the local plan and result caches
            # are deliberately bypassed — the merged result is bit-identical
            # to the local run either way.
            executed = time.perf_counter()
            result = self.engine.run_distributed(
                program, yet, workers=request.workers, n_shards=request.shards
            )
            execute_seconds = time.perf_counter() - executed
            return AnalysisResponse(
                request=request,
                results=(result,),
                quotes=self._quotes_for(request, [program], [result]),
                timings={"lower": 0.0, "execute": execute_seconds},
                details={"fleet": dict(result.details.get("fleet", {}))},
            )
        key = self._program_key("run", [program], yet, request.shards)
        if self.result_cache is not None and request.result_cache:
            return self._run_with_result_cache(request, program, yet, key, acct)
        plan, lower_seconds = self._cached_plan(
            key,
            lambda: PlanBuilder.from_program(program, yet, n_shards=request.shards),
            acct,
            key[1][0][:12],
        )
        executed = time.perf_counter()
        result = self.engine.run_plan(plan)
        execute_seconds = time.perf_counter() - executed
        return AnalysisResponse(
            request=request,
            results=(result,),
            quotes=self._quotes_for(request, [program], [result]),
            timings={"lower": lower_seconds, "execute": execute_seconds},
        )

    # ------------------------------------------------------------------ #
    # Result-cache serving (the exact/append/row delta paths of `run`)
    # ------------------------------------------------------------------ #
    def _run_with_result_cache(
        self,
        request: AnalysisRequest,
        program: ReinsuranceProgram,
        yet: YearEventTable,
        plan_key: tuple,
        acct: _CacheAccounting,
    ) -> AnalysisResponse:
        cache = self.result_cache
        assert cache is not None
        started = time.perf_counter()
        pdig, ydig = plan_key[1][0], plan_key[2]
        # request.shards is scheduling, not semantics (merged results are
        # bit-identical for every shard count), but folding it into the
        # config component keeps entries one-to-one with plan-cache keys.
        rc_config = f"{plan_key[3]}|shards={request.shards}"
        row_digests = tuple(layer_digest(layer) for layer in program.layers)
        match = cache.lookup(
            program_digest=pdig,
            config_digest=rc_config,
            yet=yet,
            row_digests=row_digests,
        )

        if match.status == "exact":
            result = match.accumulator.finalize(
                self.engine.backend_name,
                wall_seconds=0.0,
                workload_shape=self._workload_shape_for(program, yet),
                details={"result_cache": {"status": "exact"}},
            )
            info = {"status": "exact", "repriced_trials": 0}
            return self._result_cache_response(
                request, program, result, info, time.perf_counter() - started, 0.0
            )
        if match.status == "append":
            return self._serve_append_delta(
                request, program, yet, plan_key, acct, match, rc_config, row_digests
            )
        if match.status == "rows":
            return self._serve_row_delta(
                request, program, yet, plan_key, acct, match, rc_config, row_digests
            )

        return self._run_full_and_store(
            request, program, yet, plan_key, acct, rc_config, row_digests,
            {"status": "miss"},
        )

    def _run_full_and_store(
        self,
        request: AnalysisRequest,
        program: ReinsuranceProgram,
        yet: YearEventTable,
        plan_key: tuple,
        acct: _CacheAccounting,
        rc_config: str,
        row_digests: tuple,
        info: dict,
    ) -> AnalysisResponse:
        """Cold full run of the whole program, stored for later deltas."""
        cache = self.result_cache
        assert cache is not None
        plan, lower_seconds = self._cached_plan(
            plan_key,
            lambda: PlanBuilder.from_program(program, yet, n_shards=request.shards),
            acct,
            plan_key[1][0][:12],
        )
        executed = time.perf_counter()
        result = self.engine.run_plan(plan)
        execute_seconds = time.perf_counter() - executed
        accumulator = ResultAccumulator.for_plan(plan)
        accumulator.add_result(result, plan.trials)
        cache.store(
            program_digest=plan_key[1][0],
            yet_digest=plan_key[2],
            config_digest=rc_config,
            accumulator=accumulator,
            row_digests=row_digests,
            plan_key=plan_key,
        )
        return self._result_cache_response(
            request, program, result, info, lower_seconds, execute_seconds
        )

    def _serve_append_delta(
        self,
        request: AnalysisRequest,
        program: ReinsuranceProgram,
        yet: YearEventTable,
        plan_key: tuple,
        acct: _CacheAccounting,
        match: ResultCacheMatch,
        rc_config: str,
        row_digests: tuple,
    ) -> AnalysisResponse:
        """Price only the appended trial range, merge over the cached blocks.

        Bit-identical to a cold monolithic run by the accumulator algebra:
        the cached blocks are the old trials' columns verbatim, and per-trial
        reductions are trial-local, so pricing the appended range and
        merging is pure column placement.
        """
        cache = self.result_cache
        assert cache is not None
        accumulator = match.accumulator  # extended over [0, yet.n_trials)
        plan, lower_seconds = self._cached_plan(
            plan_key,
            lambda: PlanBuilder.from_program(program, yet, n_shards=request.shards),
            acct,
            plan_key[1][0][:12],
        )
        # The fused stack is YET-independent; borrow the base entry's still-
        # warm plan stack so the delta pass skips the n_rows x catalog build.
        if plan.cached_stack is None and match.plan_key is not None:
            prior = self.cache.peek(match.plan_key)
            if prior is not None and prior.cached_stack is not None:
                plan.adopt_stack(prior.cached_stack)
        executed = time.perf_counter()
        repriced = 0
        for gap in accumulator.missing_ranges():
            accumulator.add_result(self.engine.run_plan(plan.restrict(gap)), gap)
            repriced += gap.size
        execute_seconds = time.perf_counter() - executed
        result = accumulator.finalize(
            self.engine.backend_name,
            wall_seconds=execute_seconds,
            workload_shape=plan.workload_shape(),
            details={"result_cache": {"status": "append", "repriced_trials": repriced}},
        )
        cache.store(
            program_digest=plan_key[1][0],
            yet_digest=plan_key[2],
            config_digest=rc_config,
            accumulator=accumulator,
            row_digests=row_digests,
            plan_key=plan_key,
        )
        info = {
            "status": "append",
            "repriced_trials": repriced,
            "cached_trials": yet.n_trials - repriced,
        }
        return self._result_cache_response(
            request, program, result, info, lower_seconds, execute_seconds
        )

    def _serve_row_delta(
        self,
        request: AnalysisRequest,
        program: ReinsuranceProgram,
        yet: YearEventTable,
        plan_key: tuple,
        acct: _CacheAccounting,
        match: ResultCacheMatch,
        rc_config: str,
        row_digests: tuple,
    ) -> AnalysisResponse:
        """Re-price only the changed stack rows, scatter over cached columns.

        Every kernel path computes stack rows independently (the fused-vs-
        per-layer conformance invariant), so the composed table equals a
        cold run of the full program bit for bit.
        """
        cache = self.result_cache
        assert cache is not None
        changed = list(match.changed_rows)
        sub_program = program.subset(changed)
        sub_key = self._program_key("run", [sub_program], yet, request.shards)
        plan, lower_seconds = self._cached_plan(
            sub_key,
            lambda: PlanBuilder.from_program(sub_program, yet, n_shards=request.shards),
            acct,
            sub_key[1][0][:12],
        )
        executed = time.perf_counter()
        delta_result = self.engine.run_plan(plan)
        execute_seconds = time.perf_counter() - executed
        base = match.accumulator
        # year_losses() returns the single block itself when one block spans
        # the domain — copy before scattering the re-priced rows in.
        losses = base.year_losses().copy()
        losses[changed] = delta_result.ylt.losses
        occ = base.max_occurrence_losses()
        delta_occ = delta_result.ylt.max_occurrence_losses
        if (occ is None) != (delta_occ is None):
            # The cached sibling and the delta run disagree on carrying
            # max-occurrence losses (e.g. the sibling predates occurrence
            # tracking); scattering would silently drop the field, breaking
            # bit-identity with a cold run.  Recompute the full program.
            return self._run_full_and_store(
                request, program, yet, plan_key, acct, rc_config, row_digests,
                {"status": "rows_fallback", "reason": "occurrence_mismatch"},
            )
        if occ is not None:
            occ = occ.copy()
            occ[changed] = delta_occ
        accumulator = ResultAccumulator(
            program.n_layers, TrialRange(0, yet.n_trials), row_names=program.layer_names
        )
        accumulator.add(PartialResult(TrialRange(0, yet.n_trials), losses, occ))
        result = accumulator.finalize(
            self.engine.backend_name,
            wall_seconds=execute_seconds,
            workload_shape=self._workload_shape_for(program, yet),
            details={"result_cache": {"status": "rows", "repriced_rows": changed}},
        )
        cache.store(
            program_digest=plan_key[1][0],
            yet_digest=plan_key[2],
            config_digest=rc_config,
            accumulator=accumulator,
            row_digests=row_digests,
            plan_key=plan_key,
        )
        info = {
            "status": "rows",
            "repriced_rows": changed,
            "cached_rows": program.n_layers - len(changed),
        }
        return self._result_cache_response(
            request, program, result, info, lower_seconds, execute_seconds
        )

    def _workload_shape_for(self, program: ReinsuranceProgram, yet: YearEventTable):
        from repro.parallel.device import WorkloadShape

        return WorkloadShape(
            n_trials=yet.n_trials,
            events_per_trial=max(yet.mean_events_per_trial, 1e-9),
            n_elts=max(int(round(program.mean_elts_per_layer)), 1),
            n_layers=program.n_layers,
        )

    def _result_cache_response(
        self,
        request: AnalysisRequest,
        program: ReinsuranceProgram,
        result: EngineResult,
        info: dict,
        lower_seconds: float,
        execute_seconds: float,
    ) -> AnalysisResponse:
        assert self.result_cache is not None
        info = dict(info)
        info["stats"] = self.result_cache.stats.to_dict()
        return AnalysisResponse(
            request=request,
            results=(result,),
            quotes=self._quotes_for(request, [program], [result]),
            timings={"lower": lower_seconds, "execute": execute_seconds},
            details={"result_cache": info},
        )

    def _batch_programs(
        self, request: AnalysisRequest
    ) -> tuple[List[ReinsuranceProgram], YearEventTable]:
        """The program list of a ``run_many``/``sweep`` request."""
        if request.programs:
            programs: List[ReinsuranceProgram] = []
            companion: YearEventTable | None = None
            for name in request.programs:
                program, program_yet = self._resolve_program(name, request.seed)
                programs.append(program)
                companion = companion if companion is not None else program_yet
            return programs, self._resolve_yet(request, companion)
        base, companion = self._resolve_program(request.program, request.seed)
        yet = self._resolve_yet(request, companion)
        return candidate_variants(base, request.variants), yet

    def _handle_run_many(
        self, request: AnalysisRequest, acct: _CacheAccounting
    ) -> AnalysisResponse:
        programs, yet = self._batch_programs(request)
        key = self._program_key(
            "run_many", programs, yet, request.dedupe, request.shards
        )
        plan, lower_seconds = self._cached_plan(
            key,
            lambda: PlanBuilder.from_programs(
                programs, yet, dedupe=request.dedupe, n_shards=request.shards
            ),
            acct,
            key[1][0][:12],
        )
        executed = time.perf_counter()
        results = tuple(plan.split_result(self.engine.run_plan(plan)))
        execute_seconds = time.perf_counter() - executed
        return AnalysisResponse(
            request=request,
            results=results,
            quotes=self._quotes_for(request, programs, results),
            timings={"lower": lower_seconds, "execute": execute_seconds},
        )

    def _handle_run_stacked(
        self, request: AnalysisRequest, acct: _CacheAccounting
    ) -> AnalysisResponse:
        entry = self._stacks.get(request.stack)
        if entry is None:
            raise RequestValidationError(
                f"unknown stack {request.stack!r}: register it with register_stack()",
                field="stack",
            )
        yet = self._resolve_yet(request, None)
        key = (
            "run_stacked",
            stack_digest(entry.stack),
            terms_digest(entry.terms),
            yet_digest(yet),
            config_digest(self.engine.config),
            request.shards,
        )
        plan, lower_seconds = self._cached_plan(
            key,
            lambda: PlanBuilder.from_stack(
                entry.stack,
                entry.terms,
                yet,
                row_names=entry.row_names,
                n_shards=request.shards,
            ),
            acct,
            key[1][:12],
        )
        executed = time.perf_counter()
        result = self.engine.run_plan(plan)
        execute_seconds = time.perf_counter() - executed
        return AnalysisResponse(
            request=request,
            results=(result,),
            timings={"lower": lower_seconds, "execute": execute_seconds},
        )

    def _handle_sweep(
        self, request: AnalysisRequest, acct: _CacheAccounting
    ) -> AnalysisResponse:
        from repro.portfolio.sweep import PortfolioSweepService

        programs, yet = self._batch_programs(request)
        lower_box = [0.0]

        def plan_factory(group, group_yet, dedupe, source, n_shards=0):
            key = self._program_key("sweep", group, group_yet, dedupe, n_shards)
            plan, seconds = self._cached_plan(
                key,
                lambda: PlanBuilder.from_programs(
                    group, group_yet, dedupe=dedupe, source=source, n_shards=n_shards
                ),
                acct,
                key[1][0][:12],
            )
            lower_box[0] += seconds
            return plan

        sweeper = PortfolioSweepService(
            engine=self.engine,
            volatility_loading=self.volatility_loading,
            expense_ratio=self.expense_ratio,
            plan_factory=plan_factory,
            price_quotes=request.quote,
        )
        executed = time.perf_counter()
        results: List[EngineResult] = []
        quotes: List[ProgramQuote] = []
        blocks: List[dict] = []
        for block in sweeper.sweep(
            programs,
            yet,
            max_rows_per_block=request.max_rows_per_block,
            dedupe=request.dedupe,
            shards=request.shards,
        ):
            results.extend(block.results)
            quotes.extend(block.quotes)
            blocks.append(
                {
                    "index": block.index,
                    "n_programs": block.n_programs,
                    "n_rows": block.n_rows,
                    "n_unique_rows": block.n_unique_rows,
                    "wall_seconds": block.wall_seconds,
                    "summary": block.summary(),
                }
            )
        execute_seconds = time.perf_counter() - executed - lower_box[0]
        return AnalysisResponse(
            request=request,
            results=tuple(results),
            quotes=tuple(quotes) if request.quote else (),
            timings={"lower": lower_box[0], "execute": max(execute_seconds, 0.0)},
            details={"blocks": blocks},
        )

    def _handle_uncertainty(
        self, request: AnalysisRequest, acct: _CacheAccounting
    ) -> AnalysisResponse:
        from repro.uncertainty.analysis import SecondaryUncertaintyAnalysis
        from repro.uncertainty.table import LossDistributionFamily, UncertainEventLossTable
        from repro.uncertainty.analysis import UncertainLayer

        registered = self._uncertain.get(request.program)
        if registered is not None:
            uncertain_layers = registered
            base_program = None
            companion = self._yets.get(request.program)
        else:
            base_program, companion = self._resolve_program(request.program, request.seed)
            try:
                family = LossDistributionFamily(request.family)
            except ValueError as exc:
                raise RequestValidationError(
                    f"unknown distribution family {request.family!r}", field="family"
                ) from exc
            uncertain_layers = tuple(
                UncertainLayer(
                    elts=[
                        UncertainEventLossTable.from_elt(
                            elt, cv=request.cv, family=family
                        )
                        for elt in layer.elts
                    ],
                    terms=layer.terms,
                    name=layer.name,
                )
                for layer in base_program.layers
            )
        yet = self._resolve_yet(request, companion)

        analysis = SecondaryUncertaintyAnalysis(
            uncertain_layers, config=self.engine.config, engine=self.engine
        )
        executed = time.perf_counter()
        bands = analysis.run_batched(
            yet,
            request.replications,
            rng=request.seed,
            return_periods=request.return_periods,
            tvar_levels=request.tvar_levels,
            method=request.method,
            replication_block=request.replication_block or None,
            trial_shards=request.shards,
        )
        # Price the expected (mean-loss) program through the cached plan
        # path: the expected program is rebuilt per request, but its content
        # digest is stable, so warm requests reuse the lowered plan.
        expected = analysis.expected_program()
        key = self._program_key("run", [expected], yet, request.shards)
        plan, lower_seconds = self._cached_plan(
            key,
            lambda: PlanBuilder.from_program(expected, yet, n_shards=request.shards),
            acct,
            key[1][0][:12],
        )
        result = self.engine.run_plan(plan)
        execute_seconds = time.perf_counter() - executed - lower_seconds
        quotes = ()
        if request.quote:
            quotes = (
                price_program(
                    expected,
                    result.ylt,
                    volatility_loading=self.volatility_loading,
                    expense_ratio=self.expense_ratio,
                    uncertainty=bands,
                ),
            )
        return AnalysisResponse(
            request=request,
            results=(result,),
            quotes=quotes,
            bands=bands,
            timings={"lower": lower_seconds, "execute": max(execute_seconds, 0.0)},
        )
