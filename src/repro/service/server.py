"""Async concurrent serving front end for the :class:`RiskService`.

``are serve`` without ``--listen`` is a blocking stdin NDJSON loop: one
request in flight at a time, one client.  This module is the concurrent
form — an asyncio TCP server speaking the same NDJSON protocol (plus a
minimal HTTP shim) that splits :meth:`RiskService.submit` at its natural
seam:

* the **CPU-light half** — validation, artifact resolution, the
  content-addressed plan-cache lookup — runs on the event loop via
  :meth:`RiskService.prepare` (microseconds warm, and the per-key build
  locks make concurrent cold misses safe);
* the **CPU-heavy half** — the kernel pass over the warm shared-memory
  workspaces — is dispatched to a bounded :class:`ThreadPoolExecutor`
  (``max_inflight`` workers) via :meth:`PreparedSubmission.execute`.
  The numpy gather/reduce kernels release the GIL, so executions overlap.

Admission control is a simple counted queue: at most ``max_inflight``
requests executing plus ``queue_depth`` waiting.  A request beyond that is
rejected *immediately* with a structured ``{"error": {"type":
"Overloaded"}}`` line — backpressure is explicit and cheap rather than
implicit and unbounded.

Protocol (one JSON document per line, responses in completion order):

* a request document may carry an ``"id"`` — it is echoed verbatim in the
  response line, so clients can pipeline many requests per connection and
  match answers;
* ``{"op": "stats"}`` answers inline (never queued/rejected) with
  ``served``/``rejected``/``errors`` counters and ``p50``/``p99``
  processing latencies (lowering + execution, excluding executor-slot
  wait — queue pressure shows up as ``pending`` instead);
  ``{"op": "ping"}`` answers ``{"ok": true}``;
  ``{"op": "shutdown"}`` begins a graceful drain;
* the HTTP shim auto-detects ``GET``/``POST``/``HEAD`` request lines on
  the same port: ``GET /stats`` returns the stats document, ``POST
  /submit`` answers one request document (``429`` when overloaded).

Graceful drain (SIGINT/SIGTERM or ``request_shutdown()``): stop accepting
connections, finish every in-flight request, answer it, disconnect idle
clients, tear down the executor.  Retained shared-memory workspaces are
owned by the service, whose ``close()`` unlinks them — a drained server
leaves /dev/shm clean.

Example::

    service = RiskService(EngineConfig(backend="vectorized"))
    with ServerThread(service, max_inflight=4) as handle:
        with ServeClient(handle.server.host, handle.server.port) as client:
            for i in range(8):                       # pipelined
                client.send({"kind": "run", "program": "bench", "id": i})
            answers = [client.recv() for _ in range(8)]

(the CLI equivalent is ``are serve --listen 127.0.0.1:9800 --max-inflight 4``).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Mapping

from repro.service.request import RequestValidationError
from repro.service.response import error_payload
from repro.service.service import RiskService

__all__ = ["Overloaded", "RiskServer", "ServeClient", "ServerThread", "ServerStats"]

#: Latency reservoir bound — old samples are folded away beyond this.
_MAX_LATENCY_SAMPLES = 65536


class Overloaded(RuntimeError):
    """Admission control rejected the request (its class name is the wire
    ``"type"`` of the structured rejection — ``{"error": {"type":
    "Overloaded"}}``)."""


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0.0 if empty)."""
    if not ordered:
        return 0.0
    rank = max(int(math.ceil(q * len(ordered))) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


class ServerStats:
    """Serving counters + latency reservoir (mutated on the loop thread only)."""

    __slots__ = ("served", "rejected", "errors", "_latencies")

    def __init__(self) -> None:
        self.served = 0
        self.rejected = 0
        self.errors = 0
        self._latencies: list[float] = []

    def record(self, seconds: float) -> None:
        self.served += 1
        self._latencies.append(float(seconds))
        if len(self._latencies) > _MAX_LATENCY_SAMPLES:
            # Keep the most recent half; the percentiles stay current.
            del self._latencies[: len(self._latencies) // 2]

    def to_dict(self) -> dict[str, Any]:
        ordered = sorted(self._latencies)
        return {
            "served": self.served,
            "rejected": self.rejected,
            "errors": self.errors,
            "p50_seconds": _percentile(ordered, 0.50),
            "p99_seconds": _percentile(ordered, 0.99),
        }

    def summary(self) -> str:
        stats = self.to_dict()
        return (
            f"served {stats['served']} | rejected {stats['rejected']} | "
            f"errors {stats['errors']} | "
            f"p50 {stats['p50_seconds'] * 1e3:.1f}ms | "
            f"p99 {stats['p99_seconds'] * 1e3:.1f}ms"
        )


def _with_id(payload: dict, request_id: Any) -> dict:
    if request_id is not None:
        payload["id"] = request_id
    return payload


def _looks_like_http(line: bytes) -> bool:
    return line.split(b" ", 1)[0] in (b"GET", b"POST", b"HEAD")


class RiskServer:
    """Asyncio TCP/NDJSON (+ HTTP shim) server over one warm RiskService.

    Parameters
    ----------
    service:
        The warm service to answer from.  The server never closes it — the
        caller owns its lifetime (and its /dev/shm workspaces).
    host, port:
        Listen address; port 0 binds an ephemeral port (read the bound one
        back from :attr:`port` after :meth:`start`).
    max_inflight:
        Executor width — requests executing concurrently.
    queue_depth:
        Requests allowed to wait beyond the executing ones before
        admission control rejects with ``Overloaded``.
    """

    def __init__(
        self,
        service: RiskService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 2,
        queue_depth: int = 16,
    ) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self.max_inflight = max(int(max_inflight), 1)
        self.queue_depth = max(int(queue_depth), 0)
        self.stats = ServerStats()
        self.started = threading.Event()
        self._pending = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._shutdown: asyncio.Event | None = None
        self._tasks: "set[asyncio.Task]" = set()
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._connections: "set[asyncio.StreamWriter]" = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listener and spin up the executor pool."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="are-serve"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        self.started.set()

    async def run(self, *, install_signal_handlers: bool = True) -> None:
        """Serve until a shutdown is requested, then drain gracefully."""
        if self._server is None:
            await self.start()
        assert self._loop is not None and self._shutdown is not None
        handled_signals: list[signal.Signals] = []
        if install_signal_handlers:
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                    self._loop.add_signal_handler(signum, self.request_shutdown)
                    handled_signals.append(signum)
        try:
            await self._shutdown.wait()
        finally:
            await self._drain()
            for signum in handled_signals:
                with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                    self._loop.remove_signal_handler(signum)

    def request_shutdown(self) -> None:
        """Begin a graceful drain (safe from signal handlers and threads)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return

        def _set() -> None:
            if self._shutdown is not None:
                self._shutdown.set()

        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(_set)

    async def _drain(self) -> None:
        # 1. Stop accepting new connections.
        if self._server is not None:
            self._server.close()
        # 2. Answer every admitted request (new lines are rejected by now).
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        # 3. Disconnect idle clients so their blocked readers see EOF, and
        #    let the handlers run to completion before the loop goes away.
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        if self._conn_tasks:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*list(self._conn_tasks), return_exceptions=True),
                    timeout=5.0,
                )
        # 4. …and only then wait for the listener (3.12+ waits on handlers).
        if self._server is not None:
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        handler = asyncio.current_task()
        if handler is not None:
            self._conn_tasks.add(handler)
            handler.add_done_callback(self._conn_tasks.discard)
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        conn_tasks: "set[asyncio.Task]" = set()
        try:
            line = await reader.readline()
            if line and _looks_like_http(line):
                await self._handle_http(line, reader, writer)
                return
            while line:
                text = line.decode("utf-8", "replace").strip()
                if text:
                    task = asyncio.ensure_future(
                        self._serve_line(text, writer, write_lock)
                    )
                    self._tasks.add(task)
                    conn_tasks.add(task)
                    task.add_done_callback(self._tasks.discard)
                    task.add_done_callback(conn_tasks.discard)
                line = await reader.readline()
            # EOF: finish this connection's in-flight answers before closing.
            while conn_tasks:
                await asyncio.gather(*list(conn_tasks), return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            # No wait_closed here: every answer already drained under the
            # write lock, and awaiting transport teardown can outlive the
            # loop (spurious CancelledError at shutdown).
            with contextlib.suppress(Exception):
                writer.close()

    async def _serve_line(
        self, text: str, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        request_id: Any = None
        try:
            document: Any = json.loads(text)
        except json.JSONDecodeError as exc:
            self.stats.errors += 1
            await self._write(writer, write_lock, error_payload(exc))
            return
        if isinstance(document, dict):
            request_id = document.pop("id", None)
            op = document.get("op")
            if op is not None:
                await self._write(
                    writer, write_lock, self._control(str(op), request_id)
                )
                return
        try:
            response, seconds = await self._submit(document)
        except Overloaded as exc:
            self.stats.rejected += 1
            await self._write(writer, write_lock, _with_id(error_payload(exc), request_id))
            return
        except Exception as exc:  # noqa: BLE001 - the loop must survive any request
            self.stats.errors += 1
            await self._write(writer, write_lock, _with_id(error_payload(exc), request_id))
            return
        payload = _with_id(response.to_dict(), request_id)
        await self._write(writer, write_lock, payload)
        self.stats.record(seconds)

    async def _submit(self, document: Any):
        """Admit, prepare on the loop, execute on the pool.

        Returns ``(response, seconds)`` where ``seconds`` is the processing
        latency — lowering plus kernel execution, clocked only while the
        request is actually being worked on.  Time spent waiting for an
        executor slot is excluded: queue pressure is already visible as
        ``pending`` in the stats payload, while the latency percentiles
        answer the question admission control cannot — whether serving
        concurrently made the *work itself* slower (lock contention).
        """
        assert self._loop is not None and self._shutdown is not None
        if self._shutdown.is_set():
            raise Overloaded("server is draining; request not admitted")
        if self._pending >= self.max_inflight + self.queue_depth:
            raise Overloaded(
                f"admission queue full ({self.max_inflight} in flight + "
                f"{self.queue_depth} queued); retry later"
            )
        self._pending += 1
        try:
            started = time.perf_counter()
            prepared = self.service.prepare(document)
            prepare_seconds = time.perf_counter() - started

            def _execute():
                t0 = time.perf_counter()
                response = prepared.execute()
                return response, time.perf_counter() - t0

            response, execute_seconds = await self._loop.run_in_executor(
                self._executor, _execute
            )
            return response, prepare_seconds + execute_seconds
        finally:
            self._pending -= 1

    def _control(self, op: str, request_id: Any) -> dict:
        if op == "stats":
            payload: dict[str, Any] = {
                "stats": self.stats.to_dict(),
                "pending": self._pending,
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
            }
        elif op == "ping":
            payload = {"ok": True}
        elif op == "shutdown":
            self.request_shutdown()
            payload = {"ok": True, "draining": True}
        else:
            payload = error_payload(
                RequestValidationError(f"unknown op {op!r}", field="op")
            )
        return _with_id(payload, request_id)

    async def _write(
        self, writer: asyncio.StreamWriter, lock: asyncio.Lock, payload: dict
    ) -> None:
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        async with lock:
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away mid-answer; nothing to do

    # ------------------------------------------------------------------ #
    # HTTP shim
    # ------------------------------------------------------------------ #
    async def _handle_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One-shot HTTP exchange: GET /stats or POST /submit, then close."""
        try:
            method, target, _ = first.decode("latin-1").split(" ", 2)
        except ValueError:
            await self._write_http(writer, 400, error_payload(ValueError("bad request line")))
            return
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"", b"\r\n", b"\n"):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                with contextlib.suppress(ValueError):
                    length = int(value.strip())
        body = await reader.readexactly(length) if length > 0 else b""

        if method in ("GET", "HEAD") and target.split("?", 1)[0] == "/stats":
            await self._write_http(writer, 200, self._control("stats", None))
            return
        if method == "POST" and target.split("?", 1)[0] == "/submit":
            request_id: Any = None
            try:
                document: Any = json.loads(body.decode("utf-8", "replace"))
                if isinstance(document, dict):
                    request_id = document.pop("id", None)
                response, seconds = await self._submit(document)
            except Overloaded as exc:
                self.stats.rejected += 1
                await self._write_http(writer, 429, _with_id(error_payload(exc), request_id))
                return
            except Exception as exc:  # noqa: BLE001
                self.stats.errors += 1
                await self._write_http(writer, 400, _with_id(error_payload(exc), request_id))
                return
            await self._write_http(writer, 200, _with_id(response.to_dict(), request_id))
            self.stats.record(seconds)
            return
        await self._write_http(
            writer, 404, error_payload(LookupError(f"no route {method} {target}"))
        )

    async def _write_http(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found", 429: "Too Many Requests"}
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"content-type: application/json\r\n"
            f"content-length: {len(data)}\r\n"
            f"connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + data)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass


class ServerThread:
    """Run a :class:`RiskServer` on a dedicated event-loop thread.

    For tests, benchmarks and in-process embedding next to blocking client
    code — the context manager guarantees the drain happened on exit::

        with ServerThread(service, max_inflight=4) as handle:
            client = ServeClient(handle.server.host, handle.server.port)
    """

    def __init__(self, service: RiskService, **kwargs: Any) -> None:
        self.server = RiskServer(service, **kwargs)
        self._thread: threading.Thread | None = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.server.run(install_signal_handlers=False)),
            name="are-server",
            daemon=True,
        )
        self._thread.start()
        if not self.server.started.wait(timeout=10.0):
            raise RuntimeError("server did not bind within 10s")
        return self

    def stop(self) -> None:
        self.server.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


class ServeClient:
    """Blocking NDJSON client for a :class:`RiskServer`.

    ``send``/``recv`` are split so callers can pipeline: queue many request
    lines, then collect the answers (match them by ``"id"`` — the server
    responds in completion order, not submission order).
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def send(self, document: Mapping[str, Any]) -> None:
        self._file.write((json.dumps(dict(document)) + "\n").encode("utf-8"))
        self._file.flush()

    def recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def request(self, document: Mapping[str, Any]) -> dict:
        self.send(document)
        return self.recv()

    def close(self) -> None:
        with contextlib.suppress(Exception):
            self._file.close()
        with contextlib.suppress(Exception):
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
