"""The uniform analysis-response envelope.

Every request kind returns the same shape: an :class:`AnalysisResponse`
wrapping the underlying engine artifacts — one or more
:class:`~repro.core.results.EngineResult`, optional
:class:`~repro.portfolio.pricing.ProgramQuote` objects, optional
secondary-uncertainty bands — plus the metadata a serving layer needs:
which backend answered, whether the plan cache was warm
(:class:`CacheInfo`), and where the time went (lowering vs execution).

``to_dict`` renders a JSON-compatible summary (metrics, timings, cache
counters — not the raw per-trial arrays) for the ``are serve`` NDJSON loop;
the full arrays stay reachable through ``results`` for in-process callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, TYPE_CHECKING

from repro.core.results import EngineResult
from repro.portfolio.pricing import ProgramQuote
from repro.service.request import AnalysisRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uncertainty.analysis import ReplicationSummary

__all__ = ["AnalysisResponse", "CacheInfo", "error_payload"]


def error_payload(exc: Exception) -> dict[str, Any]:
    """Structured error envelope shared by every serving surface.

    ``are serve`` (stdin and TCP), ``are request`` and the HTTP shim all
    answer a failed request with the same shape::

        {"error": {"message": ..., "type": ..., "field": ...?}}

    ``type`` is the exception class name (``"Overloaded"`` for admission
    rejections); ``field`` rides along for schema errors so callers can
    handle failures programmatically instead of parsing message strings.
    """
    error: dict[str, Any] = {"message": str(exc), "type": type(exc).__name__}
    field_name = getattr(exc, "field", None)
    if field_name is not None:
        error["field"] = field_name
    return {"error": error}


@dataclass(frozen=True)
class CacheInfo:
    """How the plan cache served one request.

    Attributes
    ----------
    hit:
        True when every plan the request needed came from the cache (a
        multi-block sweep is a hit only if *all* its blocks were cached).
    hits, misses:
        Cache lookups performed by this request.
    key:
        Hex prefix of the request's primary cache key (diagnostic).
    """

    hit: bool
    hits: int
    misses: int
    key: str = ""

    def summary(self) -> str:
        """``warm``/``cold`` plus the lookup counters."""
        label = "warm" if self.hit else "cold"
        return f"{label} ({self.hits} hits / {self.misses} misses)"


@dataclass(frozen=True)
class AnalysisResponse:
    """Uniform result envelope returned by :meth:`RiskService.submit`.

    Attributes
    ----------
    request:
        The (validated) request this response answers.
    results:
        The engine results, in request order — one for ``run``/``run_stacked``,
        one per program for ``run_many``/``sweep``, and the expected-program
        result for ``uncertainty``.
    quotes:
        Technical-premium quotes where the kind supports them (and the
        request asked for them); the ``uncertainty`` quote carries the
        replication bands.
    bands:
        Secondary-uncertainty metric distributions (``uncertainty`` only).
    cache:
        Plan-cache behaviour for this request (``None`` for kinds that do
        not consult the cache).
    timings:
        Seconds by stage: ``"lower"`` (digesting + plan lowering + stack
        build on a miss), ``"execute"`` (engine passes) and ``"total"``.
    backend:
        Name of the backend that executed the request.
    details:
        Kind-specific JSON-compatible extras (e.g. the per-block shapes of
        a sweep, or the ``"result_cache"`` payload of a result-cache-served
        ``run`` — see :attr:`result_cache`).
    """

    request: AnalysisRequest
    results: tuple[EngineResult, ...]
    quotes: tuple[ProgramQuote, ...] = ()
    bands: "Mapping[str, ReplicationSummary] | None" = None
    cache: CacheInfo | None = None
    timings: Mapping[str, float] = field(default_factory=dict)
    backend: str = ""
    details: Mapping[str, Any] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        """The request kind this response answers."""
        return self.request.kind

    @property
    def result(self) -> EngineResult:
        """The single engine result (ValueError when there are several)."""
        if len(self.results) != 1:
            raise ValueError(
                f"response carries {len(self.results)} results; index `results` directly"
            )
        return self.results[0]

    @property
    def total_seconds(self) -> float:
        """End-to-end service time of the request."""
        return float(self.timings.get("total", 0.0))

    @property
    def result_cache(self) -> Mapping[str, Any] | None:
        """How the result cache served this request (``None`` when unused).

        A mapping with ``"status"`` (``"exact"``/``"append"``/``"rows"``/
        ``"miss"``), the delta shape (``"repriced_trials"`` or
        ``"repriced_rows"``), and a ``"stats"`` counter snapshot; rides in
        :attr:`details` so it reaches ``are serve`` clients via ``to_dict``.
        """
        return self.details.get("result_cache") if self.details else None

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = [f"{self.kind} on {self.backend}"]
        if len(self.results) != 1:
            parts.append(f"{len(self.results)} results")
        if self.cache is not None:
            parts.append(self.cache.summary())
        result_cache = self.result_cache
        if result_cache is not None:
            parts.append(f"result-cache {result_cache.get('status', '?')}")
        parts.append(f"{self.total_seconds:.4f}s")
        return " | ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible summary (no per-trial arrays)."""
        payload: dict[str, Any] = {
            "kind": self.kind,
            "backend": self.backend,
            "timings": {name: float(value) for name, value in self.timings.items()},
            "results": [
                {
                    "n_layers": result.ylt.n_layers,
                    "n_trials": result.ylt.n_trials,
                    "wall_seconds": result.wall_seconds,
                    "portfolio_aal": float(result.ylt.portfolio_losses().mean()),
                }
                for result in self.results
            ],
            "quotes": [
                {
                    "program": quote.program_name,
                    "expected_loss": quote.total_expected_loss,
                    "premium": quote.total_premium,
                }
                for quote in self.quotes
            ],
            "tags": dict(self.request.tags),
        }
        if self.details:
            payload["details"] = dict(self.details)
        if self.cache is not None:
            payload["cache"] = {
                "hit": self.cache.hit,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "key": self.cache.key,
            }
        if self.bands is not None:
            payload["bands"] = {
                name: {
                    "mean": band.mean,
                    "std": band.std,
                    "low": band.low,
                    "high": band.high,
                }
                for name, band in self.bands.items()
            }
        return payload
