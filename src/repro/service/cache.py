"""Content-addressed LRU cache of lowered execution plans.

The expensive part of answering a pricing request is not the kernel pass —
it is everything *before* it: lowering the program to an
:class:`~repro.core.plan.ExecutionPlan`, building each layer's dense loss
matrix and stacking the term-netted rows into the fused
``(n_layers, catalog_size)`` matrix.  All of that work is a pure function of
the program contents, the YET and the plan-relevant config — exactly what
the content digests of :mod:`repro.service.digests` capture — so
:class:`PlanCache` memoizes it: the first request for a workload pays the
lowering ("cold"), every later request for the same content reuses the
cached plan together with its already-materialised stack ("warm").

A cached :class:`~repro.core.plan.ExecutionPlan` keeps its source layers and
YET alive; the cache is therefore bounded (LRU, ``maxsize`` entries) and the
eviction order is recency of use.  Eviction also releases any multicore
shared-memory workspace published for the plan (the workspace is finalized
when the plan object is garbage collected — see
:class:`~repro.core.multicore.MulticoreEngine`).

The cache is thread-safe: ``are serve`` answers requests from one process
but nothing stops a user from sharing a :class:`~repro.service.service.RiskService`
across threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Tuple

from repro.core.plan import ExecutionPlan

__all__ = ["CacheStats", "PlanCache"]


@dataclass(frozen=True)
class CacheStats:
    """Counters describing the cache's behaviour so far."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    maxsize: int = 0

    @property
    def requests(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        if not self.requests:
            return 0.0
        return self.hits / self.requests

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"plan-cache: {self.entries}/{self.maxsize} entries, "
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.evictions} evictions"
        )


class PlanCache:
    """LRU mapping of content-digest keys to lowered :class:`ExecutionPlan`.

    Keys are hashable tuples of content digests (built by
    :class:`~repro.service.service.RiskService` from
    :mod:`repro.service.digests`); values are plans whose lazily-built fused
    stack is cached on the plan object itself, so a hit skips both the
    lowering and the stack build.
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Hashable, ExecutionPlan]" = OrderedDict()
        self._lock = threading.Lock()
        # Per-key build locks: concurrent misses on the same key must run
        # the expensive lowering exactly once (see get_or_build).  Each
        # value is a [lock, waiter_count] pair; the entry is dropped when
        # the last waiter leaves.
        self._build_locks: dict[Hashable, list] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> ExecutionPlan | None:
        """The cached plan for ``key``, or ``None`` (counts a hit/miss)."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return plan

    def peek(self, key: Hashable) -> ExecutionPlan | None:
        """The cached plan for ``key`` without counting a hit/miss.

        Does not refresh the LRU order either — a diagnostic/auxiliary read
        (e.g. the result cache borrowing a prior plan's fused stack) must
        not distort the cache's recency or its monitoring counters.
        """
        with self._lock:
            return self._entries.get(key)

    def put(self, key: Hashable, plan: ExecutionPlan) -> None:
        """Insert (or refresh) a plan, evicting the least recently used."""
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_build(
        self, key: Hashable, builder: Callable[[], ExecutionPlan]
    ) -> Tuple[ExecutionPlan, bool]:
        """``(plan, was_hit)`` — build and insert via ``builder`` on a miss.

        Concurrent misses on the same key serialise on a per-key build lock
        so the expensive lowering runs exactly once: the first thread in
        builds and inserts, every other thread blocks on the key's lock and
        then reads the freshly inserted plan instead of re-running
        ``builder``.  (Misses on *different* keys still build in parallel.)
        """
        plan = self.get(key)
        if plan is not None:
            return plan, True
        with self._lock:
            entry = self._build_locks.get(key)
            if entry is None:
                entry = self._build_locks[key] = [threading.Lock(), 0]
            entry[1] += 1
        lock: threading.Lock = entry[0]
        try:
            with lock:
                plan = self.peek(key)
                if plan is None:
                    plan = builder()
                    self.put(key, plan)
        finally:
            with self._lock:
                entry[1] -= 1
                if entry[1] == 0:
                    self._build_locks.pop(key, None)
        return plan, False

    def clear(self) -> None:
        """Drop every cached plan (stats are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                maxsize=self.maxsize,
            )
