"""The declarative analysis-request schema.

An :class:`AnalysisRequest` is a plain, serializable description of one unit
of work for the :class:`~repro.service.service.RiskService` — the
request/response form of the engine's public workloads::

    kind="run"          one program over one YET          (engine.run)
    kind="run_many"     many programs / term variants     (engine.run_many)
    kind="run_stacked"  precomputed term-netted rows      (engine.run_stacked)
    kind="sweep"        streamed row-bounded quote sweep  (PortfolioSweepService)
    kind="uncertainty"  replication-banded metrics/quote  (SecondaryUncertaintyAnalysis)

Requests reference their inputs *by name*: a name resolves against the
service's artifact registry (programs, YETs, stacks registered by the
caller) and falls back to the built-in workload presets
(:mod:`repro.workloads.presets`), so a request is pure data — it travels as
a dict or JSON document (``to_dict``/``from_dict``, ``to_json``/``from_json``)
and two processes that registered the same artifacts mean the same thing by
the same request.

Validation is eager and total: :meth:`AnalysisRequest.validate` (called by
the service before dispatch) raises :class:`RequestValidationError` naming
the offending field, and ``from_dict`` rejects unknown keys outright so a
misspelled option can never be silently ignored.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Mapping

__all__ = ["AnalysisRequest", "REQUEST_KINDS", "RequestValidationError"]

#: The request kinds the service dispatches.
REQUEST_KINDS: tuple[str, ...] = (
    "run",
    "run_many",
    "run_stacked",
    "sweep",
    "uncertainty",
)

#: Sampling methods of the uncertainty kind.
UNCERTAINTY_METHODS: tuple[str, ...] = ("batched", "replay")


class RequestValidationError(ValueError):
    """An analysis request failed schema validation.

    Attributes
    ----------
    field:
        Name of the offending request field (``None`` for cross-field or
        document-level errors).
    """

    def __init__(self, message: str, field: str | None = None) -> None:
        super().__init__(message)
        self.field = field


def _error(message: str, field: str | None = None) -> RequestValidationError:
    prefix = f"invalid request field {field!r}: " if field else "invalid request: "
    return RequestValidationError(prefix + message, field=field)


@dataclass(frozen=True)
class AnalysisRequest:
    """One declarative unit of work for the :class:`RiskService`.

    Attributes
    ----------
    kind:
        One of :data:`REQUEST_KINDS`.
    program:
        Name of the subject program — a registered program or a workload
        preset (``run``, ``uncertainty``, and the variant-expansion form of
        ``run_many``/``sweep``).
    programs:
        Explicit program names for ``run_many``/``sweep`` (mutually
        exclusive with ``variants``).
    stack:
        Name of a registered stack (``run_stacked`` only).
    yet:
        Name of the Year Event Table to price over.  ``None`` uses the YET
        registered under (or generated alongside) the subject program's name.
    variants:
        Expand ``program`` into this many candidate-term variants
        (``run_many``/``sweep``): variant ``i`` scales the occurrence and
        aggregate retentions by ``1 + 0.25 i``, the real-time pricing
        scenario of the paper's Section IV.
    dedupe:
        Share identical ELT gathers across the batch/sweep rows.
    shards:
        Execute the lowered plan(s) as this many disjoint trial shards
        (``0`` = the engine config's ``trial_shards``).  The merged result
        is bit-identical for every shard count; sharding bounds the
        per-pass working set.  Cache keys include the shard count, since it
        is lowered into the plan.
    max_rows_per_block:
        Row bound of one sweep block (``0`` = a single block).
    replications, cv, family, method, replication_block:
        Options of the ``uncertainty`` kind: replication count, coefficient
        of variation wrapped around each ELT loss, conditional distribution
        family, ``"batched"``/``"replay"`` execution, and the streaming
        block size (``0`` = one fused pass).
    return_periods, tvar_levels:
        Metric axes of the ``uncertainty`` kind.
    seed:
        RNG seed of the ``uncertainty`` kind (``None`` = nondeterministic)
        and of preset workload generation (``None`` = the preset's seed).
    quote:
        Attach technical-premium :class:`~repro.portfolio.pricing.ProgramQuote`
        objects to the response where the kind supports them.
    result_cache:
        Let the service answer a ``run`` request from its delta-aware
        result cache (when the service has one).  Set ``False`` to force a
        full kernel pass for this request; the pass still populates the
        plan cache, but neither consults nor updates the result cache.
    workers:
        Fleet worker addresses (``"host:port"`` of ``are worker``
        processes) to distribute a ``run`` request across.  The shard
        merge is bit-identical to the local run; ``shards`` sets the fleet
        shard count (``0`` = two shards per worker).  Empty (the default)
        executes locally.  Distributed requests bypass the local plan and
        result caches — the warm state lives on the workers.
    tags:
        Free-form client metadata echoed back on the response.
    """

    kind: str
    program: str | None = None
    programs: tuple[str, ...] = ()
    stack: str | None = None
    yet: str | None = None
    variants: int = 0
    dedupe: bool = True
    shards: int = 0
    max_rows_per_block: int = 0
    replications: int = 64
    cv: float = 0.6
    family: str = "gamma"
    method: str = "batched"
    replication_block: int = 0
    return_periods: tuple[float, ...] = (100.0, 250.0)
    tvar_levels: tuple[float, ...] = (0.99,)
    seed: int | None = None
    quote: bool = True
    result_cache: bool = True
    workers: tuple[str, ...] = ()
    tags: Mapping[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> "AnalysisRequest":
        """Check the request schema; returns ``self`` for chaining."""
        if self.kind not in REQUEST_KINDS:
            raise _error(
                f"unknown kind {self.kind!r}; expected one of {REQUEST_KINDS}", "kind"
            )
        if self.variants < 0:
            raise _error(f"must be non-negative, got {self.variants}", "variants")
        if self.shards < 0:
            raise _error(f"must be non-negative, got {self.shards}", "shards")
        if self.max_rows_per_block < 0:
            raise _error(
                f"must be non-negative, got {self.max_rows_per_block}",
                "max_rows_per_block",
            )
        if self.replications <= 0:
            raise _error(f"must be positive, got {self.replications}", "replications")
        if self.replication_block < 0:
            raise _error(
                f"must be non-negative, got {self.replication_block}",
                "replication_block",
            )
        if self.cv < 0:
            raise _error(f"must be non-negative, got {self.cv}", "cv")
        if self.method not in UNCERTAINTY_METHODS:
            raise _error(
                f"unknown method {self.method!r}; expected one of {UNCERTAINTY_METHODS}",
                "method",
            )
        if any(rp <= 0 for rp in self.return_periods):
            raise _error("return periods must be positive", "return_periods")
        if any(not 0.0 < level < 1.0 for level in self.tvar_levels):
            raise _error("TVaR levels must lie in (0, 1)", "tvar_levels")
        if self.workers:
            if self.kind != "run":
                raise _error(
                    f"kind {self.kind!r} does not support distributed workers",
                    "workers",
                )
            for address in self.workers:
                host, sep, port = str(address).rpartition(":")
                if not sep or not host or not port.isdigit():
                    raise _error(
                        f"worker address must be HOST:PORT, got {address!r}",
                        "workers",
                    )

        if self.kind in ("run", "uncertainty"):
            if not self.program:
                raise _error(f"kind {self.kind!r} requires a program name", "program")
            if self.programs:
                raise _error(
                    f"kind {self.kind!r} takes a single program, not programs",
                    "programs",
                )
        if self.kind in ("run_many", "sweep"):
            if bool(self.programs) == bool(self.program and self.variants > 0):
                raise _error(
                    f"kind {self.kind!r} needs either explicit program names or "
                    "a subject program plus variants > 0",
                    "programs",
                )
        if self.kind == "run_stacked":
            if not self.stack:
                raise _error("kind 'run_stacked' requires a stack name", "stack")
            if not self.yet:
                raise _error(
                    "kind 'run_stacked' requires an explicit YET name "
                    "(a stack has no preset to derive one from)",
                    "yet",
                )
        elif self.stack:
            raise _error(f"kind {self.kind!r} does not take a stack", "stack")
        return self

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-compatible; tuples become lists)."""
        payload = asdict(self)
        payload["programs"] = list(self.programs)
        payload["return_periods"] = list(self.return_periods)
        payload["tvar_levels"] = list(self.tvar_levels)
        payload["workers"] = list(self.workers)
        payload["tags"] = dict(self.tags)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnalysisRequest":
        """Build and validate a request from a plain dict.

        Unknown keys raise :class:`RequestValidationError` — a misspelled
        option must fail loudly, not fall back to a default.
        """
        if not isinstance(payload, Mapping):
            raise _error(f"expected a mapping, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise _error(f"unknown fields {unknown}; expected a subset of {sorted(known)}")
        if "kind" not in payload:
            raise _error("missing required field 'kind'", "kind")
        data = dict(payload)
        for name in ("programs", "return_periods", "tvar_levels", "workers"):
            if name in data:
                value = data[name]
                if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
                    raise _error(f"must be a list, got {value!r}", name)
                data[name] = tuple(value)
        try:
            request = cls(**data)
        except TypeError as exc:
            raise _error(str(exc)) from exc
        return request.validate()

    def to_json(self, indent: int | None = None) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "AnalysisRequest":
        """Parse and validate a JSON request document."""
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise _error(f"not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def replace(self, **overrides: Any) -> "AnalysisRequest":
        """A copy of this request with the given fields replaced."""
        return replace(self, **overrides)
