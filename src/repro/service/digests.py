"""Content digests for the plan cache.

The :class:`~repro.service.cache.PlanCache` is *content-addressed*: a cache
key is built from SHA-256 digests of everything that determines what an
:class:`~repro.core.plan.ExecutionPlan` (and its fused loss stack) *is* —

* the program's terms and ELT contents (:func:`program_digest`),
* the Year Event Table (:func:`yet_digest`),
* a synthetic stack's rows and terms (:func:`stack_digest`,
  :func:`terms_digest`), and
* the plan-relevant :class:`~repro.core.config.EngineConfig` fields
  (:func:`config_digest`, see :data:`PLAN_RELEVANT_CONFIG_FIELDS`).

Two requests that describe the same computation therefore hash to the same
key even when they were built from *different* Python objects (e.g. the
expected program a banded quote reconstructs per request), and any change to
a term, an ELT record, the YET or a relevant config field changes the key —
the cache can never serve a stale plan.

Digesting a large array is not free, so the per-object digests of the two
heavyweight immutable inputs — Event Loss Tables and Year Event Tables — are
memoized by object identity in a :class:`weakref.WeakKeyDictionary`: the
bytes are hashed once per object lifetime, and repeated requests against the
same tables pay only a dictionary lookup.  The memo relies on the library's
convention that ELTs and YETs are immutable after construction (mutating one
in place would require clearing the memo via :func:`clear_digest_memo`).
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import EngineConfig
from repro.financial.terms import FinancialTerms, LayerTerms
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.yet.table import YearEventTable

__all__ = [
    "PLAN_RELEVANT_CONFIG_FIELDS",
    "array_digest",
    "clear_digest_memo",
    "config_digest",
    "elt_digest",
    "layer_digest",
    "program_digest",
    "stack_digest",
    "terms_digest",
    "yet_digest",
]

#: EngineConfig fields that participate in the plan-cache key: everything
#: that changes the lowered plan, the kernel path taken over it, or the
#: recorded outputs.  Cosmetic fields (``record_phases``) and fields of other
#: backends are deliberately excluded so that toggling them does not evict
#: warm plans.
PLAN_RELEVANT_CONFIG_FIELDS: tuple[str, ...] = (
    "backend",
    "fused_layers",
    "use_aggregate_shortcut",
    "record_max_occurrence",
    "elt_representation",
    "trial_shards",
    "chunk_events",
    "n_workers",
    "scheduling",
    "oversubscription",
    "start_method",
    "shared_memory",
    "threads_per_block",
    "gpu_chunk_size",
    "gpu_optimised",
)

# Identity-memoized digests of immutable heavyweight inputs (ELTs, YETs,
# stacks).  WeakKeyDictionary: the memo must never keep an object alive.
_MEMO: "weakref.WeakKeyDictionary[object, str]" = weakref.WeakKeyDictionary()


def clear_digest_memo() -> None:
    """Drop every memoized per-object digest (after in-place mutation)."""
    _MEMO.clear()


def _hexdigest(parts: Iterable[bytes]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.hexdigest()


def array_digest(array: np.ndarray) -> str:
    """SHA-256 of an array's dtype, shape and raw bytes."""
    array = np.ascontiguousarray(array)
    return _hexdigest(
        (
            array.dtype.str.encode(),
            repr(array.shape).encode(),
            array.tobytes(),
        )
    )


def _financial_terms_bytes(terms: FinancialTerms) -> bytes:
    return repr((terms.retention, terms.limit, terms.share, terms.fx_rate)).encode()


def _layer_terms_bytes(terms: LayerTerms) -> bytes:
    return repr(
        (
            terms.occurrence_retention,
            terms.occurrence_limit,
            terms.aggregate_retention,
            terms.aggregate_limit,
        )
    ).encode()


def elt_digest(elt) -> str:
    """Content digest of one Event Loss Table (memoized per object)."""
    cached = _MEMO.get(elt)
    if cached is not None:
        return cached
    digest = _hexdigest(
        (
            b"elt",
            repr(int(elt.catalog_size)).encode(),
            np.ascontiguousarray(elt.event_ids).tobytes(),
            np.ascontiguousarray(elt.losses).tobytes(),
            _financial_terms_bytes(elt.terms),
        )
    )
    _MEMO[elt] = digest
    return digest


def layer_digest(layer: Layer) -> str:
    """Content digest of one layer: its ELT contents, terms and name."""
    return _hexdigest(
        (
            b"layer",
            layer.name.encode(),
            _layer_terms_bytes(layer.terms),
            *(elt_digest(elt).encode() for elt in layer.elts),
        )
    )


def program_digest(program: ReinsuranceProgram | Layer) -> str:
    """Content digest of a whole program (layer digests + program name)."""
    program = ReinsuranceProgram.wrap(program)
    return _hexdigest(
        (
            b"program",
            program.name.encode(),
            *(layer_digest(layer).encode() for layer in program.layers),
        )
    )


def yet_digest(yet: YearEventTable) -> str:
    """Content digest of a Year Event Table (memoized per object)."""
    cached = _MEMO.get(yet)
    if cached is not None:
        return cached
    digest = _hexdigest(
        (
            b"yet",
            repr(int(yet.n_trials)).encode(),
            np.ascontiguousarray(yet.event_ids).tobytes(),
            np.ascontiguousarray(yet.trial_offsets).tobytes(),
        )
    )
    _MEMO[yet] = digest
    return digest


def stack_digest(stack: np.ndarray) -> str:
    """Content digest of a precomputed loss stack.

    Not memoized: ndarrays are unhashable (so they cannot key the weak memo)
    and hashing even a wide stack is milliseconds — negligible next to the
    kernel pass it guards.
    """
    return array_digest(stack)


def terms_digest(terms: Sequence[LayerTerms]) -> str:
    """Content digest of a sequence of layer terms (``run_stacked`` rows)."""
    return _hexdigest((b"terms", *(_layer_terms_bytes(t) for t in terms)))


def config_digest(config: EngineConfig) -> str:
    """Digest of the plan-relevant engine-config fields."""
    parts = [b"config"]
    for name in PLAN_RELEVANT_CONFIG_FIELDS:
        parts.append(f"{name}={getattr(config, name)!s}".encode())
    return _hexdigest(parts)
