"""Content digests for the plan cache.

The :class:`~repro.service.cache.PlanCache` is *content-addressed*: a cache
key is built from SHA-256 digests of everything that determines what an
:class:`~repro.core.plan.ExecutionPlan` (and its fused loss stack) *is* —

* the program's terms and ELT contents (:func:`program_digest`),
* the Year Event Table (:func:`yet_digest`),
* a synthetic stack's rows and terms (:func:`stack_digest`,
  :func:`terms_digest`), and
* the plan-relevant :class:`~repro.core.config.EngineConfig` fields
  (:func:`config_digest`, see :data:`PLAN_RELEVANT_CONFIG_FIELDS`).

Two requests that describe the same computation therefore hash to the same
key even when they were built from *different* Python objects (e.g. the
expected program a banded quote reconstructs per request), and any change to
a term, an ELT record, the YET or a relevant config field changes the key —
the cache can never serve a stale plan.

Digesting a large array is not free, so the per-object digests of the two
heavyweight immutable inputs — Event Loss Tables and Year Event Tables — are
memoized by object identity in a :class:`weakref.WeakKeyDictionary`: the
bytes are hashed once per object lifetime, and repeated requests against the
same tables pay only a dictionary lookup.  The memo relies on the library's
convention that ELTs and YETs are immutable after construction (mutating one
in place would require clearing the memo via :func:`clear_digest_memo`).
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import EngineConfig
from repro.financial.terms import FinancialTerms, LayerTerms
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.yet.table import YearEventTable

__all__ = [
    "PLAN_RELEVANT_CONFIG_FIELDS",
    "array_digest",
    "clear_digest_memo",
    "config_digest",
    "elt_digest",
    "layer_digest",
    "plan_relevant_config",
    "program_digest",
    "stack_digest",
    "terms_digest",
    "yet_digest",
    "yet_prefix_digest",
]

#: EngineConfig fields that participate in the plan-cache key: everything
#: that changes the lowered plan, the kernel path taken over it, or the
#: recorded outputs.  Cosmetic fields (``record_phases``) and fields of other
#: backends are deliberately excluded so that toggling them does not evict
#: warm plans.
PLAN_RELEVANT_CONFIG_FIELDS: tuple[str, ...] = (
    "backend",
    "fused_layers",
    "use_aggregate_shortcut",
    "record_max_occurrence",
    "elt_representation",
    "trial_shards",
    "chunk_events",
    "n_workers",
    "scheduling",
    "oversubscription",
    "start_method",
    "shared_memory",
    "threads_per_block",
    "gpu_chunk_size",
    "gpu_optimised",
    "dtype",
    "native_threads",
)

# Identity-memoized digests of immutable heavyweight inputs (ELTs, YETs,
# stacks).  WeakKeyDictionary: the memo must never keep an object alive.
_MEMO: "weakref.WeakKeyDictionary[object, str]" = weakref.WeakKeyDictionary()

# Per-YET memo of prefix digests ({prefix length: digest}).  The result
# cache computes a prefix digest on every delta lookup against the same
# (immutable) table object; hashing megabytes of prefix bytes per request
# would dwarf the delta kernel pass itself.
_PREFIX_MEMO: "weakref.WeakKeyDictionary[YearEventTable, dict]" = (
    weakref.WeakKeyDictionary()
)


def clear_digest_memo() -> None:
    """Drop every memoized per-object digest (after in-place mutation)."""
    _MEMO.clear()
    _PREFIX_MEMO.clear()


def _hexdigest(parts: Iterable[bytes]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        # Length-prefix every part: concatenating variable-length fields
        # without a frame is ambiguous (b"ab" + b"c" hashes like b"a" +
        # b"bc"), so a crafted boundary shift could collide two distinct
        # inputs.  An 8-byte big-endian length per part makes the framing
        # injective.
        digest.update(len(part).to_bytes(8, "big"))
        digest.update(part)
    return digest.hexdigest()


def array_digest(array: np.ndarray) -> str:
    """SHA-256 of an array's dtype, shape and raw bytes."""
    array = np.ascontiguousarray(array)
    return _hexdigest(
        (
            array.dtype.str.encode(),
            repr(array.shape).encode(),
            array.tobytes(),
        )
    )


def _financial_terms_bytes(terms: FinancialTerms) -> bytes:
    return repr((terms.retention, terms.limit, terms.share, terms.fx_rate)).encode()


def _layer_terms_bytes(terms: LayerTerms) -> bytes:
    return repr(
        (
            terms.occurrence_retention,
            terms.occurrence_limit,
            terms.aggregate_retention,
            terms.aggregate_limit,
        )
    ).encode()


def elt_digest(elt) -> str:
    """Content digest of one Event Loss Table (memoized per object)."""
    cached = _MEMO.get(elt)
    if cached is not None:
        return cached
    digest = _hexdigest(
        (
            b"elt",
            repr(int(elt.catalog_size)).encode(),
            np.ascontiguousarray(elt.event_ids).tobytes(),
            np.ascontiguousarray(elt.losses).tobytes(),
            _financial_terms_bytes(elt.terms),
        )
    )
    _MEMO[elt] = digest
    return digest


def layer_digest(layer: Layer) -> str:
    """Content digest of one layer: its ELT contents, terms and name."""
    return _hexdigest(
        (
            b"layer",
            layer.name.encode(),
            _layer_terms_bytes(layer.terms),
            *(elt_digest(elt).encode() for elt in layer.elts),
        )
    )


def program_digest(program: ReinsuranceProgram | Layer) -> str:
    """Content digest of a whole program (layer digests + program name)."""
    program = ReinsuranceProgram.wrap(program)
    return _hexdigest(
        (
            b"program",
            program.name.encode(),
            *(layer_digest(layer).encode() for layer in program.layers),
        )
    )


def _yet_parts(
    n_trials: int,
    catalog_size: int,
    event_ids: np.ndarray,
    trial_offsets: np.ndarray,
    timestamps: np.ndarray | None,
) -> tuple[bytes, ...]:
    """The framed byte parts of a YET digest.

    Covers *every* field of the table: the trial count, the catalog size
    (two YETs sharing events but indexing catalogs of different width must
    never share a key) and the timestamps — both their presence and their
    bytes — alongside the event ids and offsets.
    """
    return (
        b"yet",
        repr(int(n_trials)).encode(),
        repr(int(catalog_size)).encode(),
        np.ascontiguousarray(event_ids).tobytes(),
        np.ascontiguousarray(trial_offsets).tobytes(),
        b"ts" if timestamps is not None else b"no-ts",
        np.ascontiguousarray(timestamps).tobytes() if timestamps is not None else b"",
    )


def yet_digest(yet: YearEventTable) -> str:
    """Content digest of a Year Event Table (memoized per object)."""
    cached = _MEMO.get(yet)
    if cached is not None:
        return cached
    digest = _hexdigest(
        _yet_parts(
            yet.n_trials, yet.catalog_size, yet.event_ids, yet.trial_offsets, yet.timestamps
        )
    )
    _MEMO[yet] = digest
    return digest


def yet_prefix_digest(yet: YearEventTable, n_trials: int) -> str:
    """Digest of the first ``n_trials`` trials of ``yet``.

    Equals :func:`yet_digest` of ``yet.slice_trials(0, n_trials)`` without
    materialising the slice: a prefix of a YET keeps its offsets verbatim
    (they already start at 0), so the sliced columns are pure views.  This
    is how the :class:`~repro.service.result_cache.ResultCache` recognises
    an **append-trials delta** — a submitted YET whose first ``n`` trials
    are byte-identical to a YET it already holds results for.
    """
    if not 0 <= n_trials <= yet.n_trials:
        raise ValueError(
            f"prefix length {n_trials} outside [0, {yet.n_trials}]"
        )
    if n_trials == yet.n_trials:
        return yet_digest(yet)
    memo = _PREFIX_MEMO.get(yet)
    if memo is None:
        memo = _PREFIX_MEMO[yet] = {}
    cached = memo.get(n_trials)
    if cached is not None:
        return cached
    stop = int(yet.trial_offsets[n_trials])
    digest = _hexdigest(
        _yet_parts(
            n_trials,
            yet.catalog_size,
            yet.event_ids[:stop],
            yet.trial_offsets[: n_trials + 1],
            yet.timestamps[:stop] if yet.timestamps is not None else None,
        )
    )
    memo[n_trials] = digest
    return digest


def stack_digest(stack: np.ndarray) -> str:
    """Content digest of a precomputed loss stack.

    Not memoized: ndarrays are unhashable (so they cannot key the weak memo)
    and hashing even a wide stack is milliseconds — negligible next to the
    kernel pass it guards.
    """
    return array_digest(stack)


def terms_digest(terms: Sequence[LayerTerms]) -> str:
    """Content digest of a sequence of layer terms (``run_stacked`` rows)."""
    return _hexdigest((b"terms", *(_layer_terms_bytes(t) for t in terms)))


def plan_relevant_config(config: EngineConfig) -> dict:
    """The plan-relevant config fields as a plain ``{name: value}`` dict.

    The wire form of :func:`config_digest`'s input: the distributed
    coordinator ships exactly these fields with each shard request, and the
    worker applies them over its own base config
    (``EngineConfig.replace(**fields)``) — anything the digest covers, and
    only that, determines the numbers a worker produces, so agreeing on
    these fields is what makes the fleet's merge bit-identical.
    """
    return {name: getattr(config, name) for name in PLAN_RELEVANT_CONFIG_FIELDS}


def config_digest(config: EngineConfig) -> str:
    """Digest of the plan-relevant engine-config fields."""
    parts = [b"config"]
    for name in PLAN_RELEVANT_CONFIG_FIELDS:
        parts.append(f"{name}={getattr(config, name)!s}".encode())
    return _hexdigest(parts)
