"""Pluggable Year-Event-Table store backends for the distributed fleet.

A fleet coordinator never ships a whole YET with every shard request;
workers fetch trial columns *by reference* from a store both sides can
reach.  This module defines the store contract and two backends:

* :class:`LocalDirYetStore` — a directory of :func:`~repro.yet.io.save_yet_store`
  store directories, one per key.  The shared-filesystem deployment: the
  coordinator ``put``\\ s once, every worker on the same filesystem (or NFS
  mount) memory-maps the store through :class:`~repro.yet.io.YetShardReader`
  and materialises only the shards it prices.
* :class:`InMemoryYetStore` — an object-store-style mapping of key to table,
  fed either with live tables or with the :func:`~repro.yet.io.yet_to_bytes`
  wire blobs the coordinator ships when no filesystem is shared.  This is
  also the worker-side artifact cache: the first request for a digest ships
  the bytes, every later request resolves the digest against the cache.

Both backends hand out **shard sources** — objects with the
:class:`~repro.yet.io.YetShardReader` shard interface (``n_trials``,
``shard(trials)``, ``shard_ranges``, ``iter_shards``, context-manager
lifecycle) — so the engine's shard loop and the worker protocol are
indifferent to where the trial columns actually live.  ``shard`` bounds
errors follow the reader's ``0 <= start <= stop <= n`` contract exactly.

Store *references* are small JSON-compatible dicts (``{"kind": ...}``)
that travel on the control channel; :func:`resolve_yet_ref` turns one back
into a shard source on the worker.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Iterator, List, Mapping, Tuple

from repro.parallel.partitioner import TrialRange, shard_partition
from repro.yet.io import (
    YetShardReader,
    save_yet_store,
    shard_count_for_budget,
    yet_from_bytes,
    yet_to_bytes,
)
from repro.yet.table import YearEventTable

__all__ = [
    "YetStore",
    "LocalDirYetStore",
    "InMemoryYetStore",
    "TableShardSource",
    "resolve_yet_ref",
]


def _validate_key(key: str) -> str:
    """Reject keys that cannot serve as a single path component / digest."""
    if not key or any(ch in key for ch in ("/", "\\", "\x00")) or key in (".", ".."):
        raise ValueError(f"invalid YET store key {key!r}")
    return key


class TableShardSource:
    """The :class:`~repro.yet.io.YetShardReader` shard interface over an
    in-memory :class:`~repro.yet.table.YearEventTable`.

    What :meth:`InMemoryYetStore.open` hands out: the engine's shard loop
    and the worker protocol see the same surface whether the columns come
    from a memory-mapped store directory or a resident table.  ``shard``
    enforces the reader's ``0 <= start <= stop <= n`` bounds contract with
    the same :class:`IndexError` shape.
    """

    def __init__(self, yet: YearEventTable) -> None:
        self._yet: YearEventTable | None = yet
        self.catalog_size = yet.catalog_size

    # ------------------------------------------------------------------ #
    # Shape accessors (mirror YetShardReader)
    # ------------------------------------------------------------------ #
    def _require_open(self) -> YearEventTable:
        if self._yet is None:
            raise ValueError("table shard source is closed")
        return self._yet

    @property
    def n_trials(self) -> int:
        return self._require_open().n_trials

    @property
    def n_occurrences(self) -> int:
        return self._require_open().n_occurrences

    @property
    def mean_events_per_trial(self) -> float:
        return self._require_open().mean_events_per_trial

    @property
    def event_bytes(self) -> int:
        return self._require_open().event_bytes

    def shard_count_for_budget(self, max_shard_bytes: int) -> int:
        return shard_count_for_budget(self.event_bytes, max_shard_bytes)

    # ------------------------------------------------------------------ #
    # Shard access
    # ------------------------------------------------------------------ #
    def shard(self, trials: TrialRange) -> YearEventTable:
        """Materialise one trial shard (locally indexed, like the reader)."""
        yet = self._require_open()
        if not 0 <= trials.start <= trials.stop <= yet.n_trials:
            raise IndexError(
                f"shard range [{trials.start}, {trials.stop}) outside "
                f"0 <= start <= stop <= {yet.n_trials}"
            )
        return yet.slice_trials(trials.start, trials.stop)

    def shard_ranges(self, n_shards: int) -> List[TrialRange]:
        return shard_partition(self.n_trials, n_shards)

    def iter_shards(self, n_shards: int) -> Iterator[Tuple[TrialRange, YearEventTable]]:
        for trials in self.shard_ranges(n_shards):
            yield trials, self.shard(trials)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._yet = None

    def __enter__(self) -> "TableShardSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._yet is None else f"n_trials={self._yet.n_trials}"
        return f"TableShardSource({state})"


class YetStore(ABC):
    """Abstract keyed store of Year Event Tables.

    Keys are opaque single-component strings — in the distributed protocol
    they are the content digests from :func:`repro.service.digests.yet_digest`,
    which makes every store automatically deduplicating and immutable.
    """

    @abstractmethod
    def put(self, key: str, yet: YearEventTable) -> Mapping[str, Any]:
        """Store a table under ``key``; returns the JSON-able reference."""

    @abstractmethod
    def open(self, key: str):
        """A shard source over the stored table (``KeyError`` if absent)."""

    @abstractmethod
    def contains(self, key: str) -> bool:
        """Whether ``key`` is present."""

    @abstractmethod
    def ref(self, key: str) -> Mapping[str, Any]:
        """The JSON-able reference a worker resolves via :func:`resolve_yet_ref`."""

    def __contains__(self, key: str) -> bool:
        return self.contains(key)


class LocalDirYetStore(YetStore):
    """A root directory of per-key YET store directories (shared-filesystem)."""

    kind = "local_dir"

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / _validate_key(key)

    def put(self, key: str, yet: YearEventTable) -> Mapping[str, Any]:
        target = self._path(key)
        if not self.contains(key):
            save_yet_store(yet, target)
        return self.ref(key)

    def open(self, key: str) -> YetShardReader:
        target = self._path(key)
        if not self.contains(key):
            raise KeyError(f"no YET stored under key {key!r} in {self.root}")
        return YetShardReader(target)

    def contains(self, key: str) -> bool:
        return (self._path(key) / "yet_store.json").exists()

    def ref(self, key: str) -> Mapping[str, Any]:
        return {"kind": self.kind, "path": str(self._path(key).resolve())}

    def keys(self) -> List[str]:
        """Stored keys, sorted (directories with a manifest only)."""
        return sorted(
            p.name for p in self.root.iterdir() if (p / "yet_store.json").exists()
        )


class InMemoryYetStore(YetStore):
    """An object-store-style in-memory mapping of key to table.

    Doubles as the worker-side artifact cache for tables shipped inline
    over the wire (:meth:`put_bytes` / :meth:`get_bytes` round-trip through
    :func:`~repro.yet.io.yet_to_bytes`).
    """

    kind = "inline"

    def __init__(self) -> None:
        self._tables: dict[str, YearEventTable] = {}

    def put(self, key: str, yet: YearEventTable) -> Mapping[str, Any]:
        self._tables[_validate_key(key)] = yet
        return self.ref(key)

    def put_bytes(self, key: str, payload: bytes) -> Mapping[str, Any]:
        """Store a table from its :func:`~repro.yet.io.yet_to_bytes` form."""
        return self.put(key, yet_from_bytes(payload))

    def get_bytes(self, key: str) -> bytes:
        """The stored table in wire form (``KeyError`` if absent)."""
        return yet_to_bytes(self._tables[_validate_key(key)])

    def open(self, key: str) -> TableShardSource:
        return TableShardSource(self._tables[_validate_key(key)])

    def contains(self, key: str) -> bool:
        return key in self._tables

    def ref(self, key: str) -> Mapping[str, Any]:
        return {"kind": self.kind, "digest": _validate_key(key)}

    def keys(self) -> List[str]:
        return sorted(self._tables)

    def __len__(self) -> int:
        return len(self._tables)


def resolve_yet_ref(ref: Mapping[str, Any], inline_store: InMemoryYetStore | None = None):
    """Turn a store reference back into a shard source.

    ``{"kind": "local_dir", "path": ...}`` opens a
    :class:`~repro.yet.io.YetShardReader` on the referenced store directory;
    ``{"kind": "inline", "digest": ...}`` resolves against ``inline_store``
    (the worker's artifact cache) and raises ``KeyError`` when the digest
    has not been shipped yet — the signal the worker protocol translates
    into a *missing artifact* reply so the coordinator ships the bytes and
    retries.
    """
    kind = ref.get("kind")
    if kind == LocalDirYetStore.kind:
        return YetShardReader(ref["path"])
    if kind == InMemoryYetStore.kind:
        if inline_store is None:
            raise KeyError(
                f"inline YET reference {ref.get('digest')!r} but no inline store"
            )
        return inline_store.open(str(ref["digest"]))
    raise ValueError(f"unknown YET store reference kind {kind!r}")
