"""Year Event Table (YET) substrate.

The YET is "a database of pre-simulated occurrences of events from a catalog
of stochastic events" (Section II-A).  Each record — a *trial* — is one
alternative realisation of a contractual year: an ordered sequence of
``(event id, timestamp)`` pairs.  Using a pre-simulated table rather than
sampling on the fly gives every analysis a consistent view of the simulated
years, which is why the industry distributes YETs as data artefacts.

* :mod:`repro.yet.table` — the flattened CSR-style container
  (:class:`YearEventTable`),
* :mod:`repro.yet.simulator` — :class:`YETSimulator`, which samples trials
  from a catalog's occurrence rates and seasonality,
* :mod:`repro.yet.io` — a simple ``.npz`` serialization format, plus the
  memory-mapped store-directory format :class:`YetShardReader` prices
  out-of-core, one trial shard resident at a time.
"""

from repro.yet.io import YetShardReader, load_yet, save_yet, save_yet_store
from repro.yet.simulator import YETSimulator
from repro.yet.table import YearEventTable

__all__ = [
    "YearEventTable",
    "YETSimulator",
    "YetShardReader",
    "save_yet",
    "save_yet_store",
    "load_yet",
]
