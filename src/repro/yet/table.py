"""The Year Event Table container.

Storage layout follows the paper's basic implementation (Section III-B):

* "a vector consisting of all ``E_{i,k}``" — :attr:`YearEventTable.event_ids`,
  the event ids of every trial concatenated,
* "a vector ... indicating trial boundaries" — :attr:`YearEventTable.trial_offsets`,
  CSR-style offsets of length ``n_trials + 1``,
* plus the occurrence timestamps (fraction of the contractual year in
  ``[0, 1)``), kept sorted in ascending order within each trial.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.utils.arrays import segment_lengths, validate_offsets

__all__ = ["YearEventTable"]


class YearEventTable:
    """Flattened, trial-indexed table of pre-simulated event occurrences.

    Parameters
    ----------
    event_ids:
        Concatenated event ids of all trials (int32/int64).
    trial_offsets:
        CSR offsets, ``len == n_trials + 1``; trial ``i`` owns
        ``event_ids[trial_offsets[i]:trial_offsets[i+1]]``.
    timestamps:
        Occurrence times as fractions of the year, same length as
        ``event_ids``; must be non-decreasing within each trial.  Optional —
        some workloads only need the event sequence.
    catalog_size:
        Size of the catalog the event ids refer to.
    """

    def __init__(
        self,
        event_ids: np.ndarray,
        trial_offsets: np.ndarray,
        catalog_size: int,
        timestamps: np.ndarray | None = None,
    ) -> None:
        self.event_ids = np.ascontiguousarray(event_ids, dtype=np.int64)
        if self.event_ids.ndim != 1:
            raise ValueError("event_ids must be one-dimensional")
        self.trial_offsets = validate_offsets(
            np.asarray(trial_offsets), self.event_ids.shape[0], "trial_offsets"
        )
        if catalog_size <= 0:
            raise ValueError(f"catalog_size must be positive, got {catalog_size}")
        self.catalog_size = int(catalog_size)
        if self.event_ids.size and (
            self.event_ids.min() < 0 or self.event_ids.max() >= self.catalog_size
        ):
            raise ValueError("event ids must lie in [0, catalog_size)")

        if timestamps is None:
            self.timestamps = None
        else:
            ts = np.ascontiguousarray(timestamps, dtype=np.float64)
            if ts.shape != self.event_ids.shape:
                raise ValueError(
                    f"timestamps shape {ts.shape} does not match event_ids "
                    f"shape {self.event_ids.shape}"
                )
            if ts.size and (ts.min() < 0.0 or ts.max() > 1.0):
                raise ValueError("timestamps must lie in [0, 1]")
            self.timestamps = ts

    # ------------------------------------------------------------------ #
    # Shape accessors
    # ------------------------------------------------------------------ #
    @property
    def n_trials(self) -> int:
        """Number of trials (simulated contractual years)."""
        return int(self.trial_offsets.shape[0] - 1)

    @property
    def n_occurrences(self) -> int:
        """Total number of event occurrences across all trials."""
        return int(self.event_ids.shape[0])

    @property
    def events_per_trial(self) -> np.ndarray:
        """Number of events in each trial."""
        return segment_lengths(self.trial_offsets)

    @property
    def mean_events_per_trial(self) -> float:
        """Average trial length (the paper's ``|E_t|_av`` parameter)."""
        if self.n_trials == 0:
            return 0.0
        return self.n_occurrences / self.n_trials

    @property
    def event_bytes(self) -> int:
        """Bytes of the per-occurrence columns (event ids + timestamps).

        The quantity a per-shard byte budget divides
        (:func:`~repro.yet.io.shard_count_for_budget`); excludes the tiny
        offsets vector, matching :attr:`YetShardReader.event_bytes`.
        """
        total = self.event_ids.nbytes
        if self.timestamps is not None:
            total += self.timestamps.nbytes
        return int(total)

    @property
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the stored arrays."""
        total = self.event_ids.nbytes + self.trial_offsets.nbytes
        if self.timestamps is not None:
            total += self.timestamps.nbytes
        return int(total)

    def __len__(self) -> int:
        return self.n_trials

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"YearEventTable(n_trials={self.n_trials}, "
            f"mean_events_per_trial={self.mean_events_per_trial:.1f}, "
            f"catalog_size={self.catalog_size})"
        )

    # ------------------------------------------------------------------ #
    # Trial access
    # ------------------------------------------------------------------ #
    def trial(self, index: int) -> np.ndarray:
        """Event ids of trial ``index`` (a view into the flat array)."""
        if not 0 <= index < self.n_trials:
            raise IndexError(f"trial index {index} out of range [0, {self.n_trials})")
        start, stop = self.trial_offsets[index], self.trial_offsets[index + 1]
        return self.event_ids[start:stop]

    def trial_timestamps(self, index: int) -> np.ndarray:
        """Timestamps of trial ``index`` (zeros if no timestamps stored)."""
        if not 0 <= index < self.n_trials:
            raise IndexError(f"trial index {index} out of range [0, {self.n_trials})")
        start, stop = self.trial_offsets[index], self.trial_offsets[index + 1]
        if self.timestamps is None:
            return np.zeros(int(stop - start), dtype=np.float64)
        return self.timestamps[start:stop]

    def iter_trials(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Iterate over (trial index, event id array) pairs."""
        for index in range(self.n_trials):
            yield index, self.trial(index)

    def trial_records(self, index: int) -> list[Tuple[int, float]]:
        """Trial as a list of (event id, timestamp) tuples, the paper's ``T_i``."""
        events = self.trial(index)
        times = self.trial_timestamps(index)
        return [(int(e), float(t)) for e, t in zip(events, times)]

    # ------------------------------------------------------------------ #
    # Slicing / partitioning (used by the parallel backends)
    # ------------------------------------------------------------------ #
    def trial_window(self, start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(event_ids, local_offsets)`` of trials ``[start, stop)``.

        The event ids are a zero-copy view into the flat array; the offsets
        are rebased to the window (``local_offsets[0] == 0``).  This is the
        form the shard-loop schedulers feed to the kernels: per-trial
        reductions are trial-local, so pricing a window produces exactly the
        columns a whole-table run would produce for those trials.
        """
        if not 0 <= start <= stop <= self.n_trials:
            raise IndexError(
                f"invalid trial window [{start}, {stop}) for {self.n_trials} trials"
            )
        lo = int(self.trial_offsets[start])
        return self.event_ids[lo : int(self.trial_offsets[stop])], (
            self.trial_offsets[start : stop + 1] - lo
        )

    def slice_trials(self, start: int, stop: int) -> "YearEventTable":
        """A new YET containing trials ``start:stop`` (copies the slice)."""
        if not 0 <= start <= stop <= self.n_trials:
            raise IndexError(f"invalid trial slice [{start}, {stop}) for {self.n_trials} trials")
        lo = int(self.trial_offsets[start])
        hi = int(self.trial_offsets[stop])
        offsets = self.trial_offsets[start : stop + 1] - lo
        timestamps = None if self.timestamps is None else self.timestamps[lo:hi]
        return YearEventTable(
            self.event_ids[lo:hi].copy(),
            offsets.copy(),
            self.catalog_size,
            None if timestamps is None else timestamps.copy(),
        )

    @classmethod
    def from_trials(
        cls,
        trials: Sequence[Sequence[int]],
        catalog_size: int,
        timestamps: Sequence[Sequence[float]] | None = None,
    ) -> "YearEventTable":
        """Build a YET from per-trial lists of event ids (convenience for tests)."""
        lengths = [len(trial) for trial in trials]
        offsets = np.zeros(len(trials) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        flat_events = np.concatenate(
            [np.asarray(trial, dtype=np.int64) for trial in trials]
        ) if trials and sum(lengths) else np.zeros(0, dtype=np.int64)
        flat_times = None
        if timestamps is not None:
            if [len(t) for t in timestamps] != lengths:
                raise ValueError("timestamps must have the same per-trial lengths as trials")
            flat_times = np.concatenate(
                [np.asarray(t, dtype=np.float64) for t in timestamps]
            ) if timestamps and sum(lengths) else np.zeros(0, dtype=np.float64)
        return cls(flat_events, offsets, catalog_size, flat_times)
