"""Serialization of Year Event Tables — whole-table and out-of-core.

YETs are large, immutable data artefacts that are generated once and reused by
many analyses, so being able to persist and reload them matters in practice.
Two on-disk forms are supported:

* a single compressed ``.npz`` file (:func:`save_yet` / :func:`load_yet`)
  holding the flat arrays plus a small metadata vector — compact, loads the
  whole table into RAM, round-trips exactly;
* a **store directory** (:func:`save_yet_store`) of raw ``.npy`` members plus
  a tiny JSON manifest, which :class:`YetShardReader` opens with
  memory-mapped event columns.  The reader materialises one *trial shard* at
  a time: only the shard's slice of the event ids (and timestamps) is copied
  into resident memory, so a table far larger than RAM can be priced shard
  by shard — the out-of-core leg of the engine's
  :meth:`~repro.core.engine.AggregateRiskEngine.run_sharded` path.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Iterator, List, Tuple

import numpy as np

from repro.parallel.partitioner import TrialRange, shard_partition
from repro.yet.table import YearEventTable

__all__ = [
    "save_yet",
    "load_yet",
    "yet_to_bytes",
    "yet_from_bytes",
    "save_yet_store",
    "shard_count_for_budget",
    "YetShardReader",
]

_FORMAT_VERSION = 1

#: Manifest name of the store-directory format.
_STORE_MANIFEST = "yet_store.json"


def save_yet(yet: YearEventTable, path: str | os.PathLike) -> Path:
    """Save a YET to ``path`` (``.npz`` appended if missing). Returns the path."""
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_suffix(target.suffix + ".npz")
    meta = np.array([_FORMAT_VERSION, yet.catalog_size, 1 if yet.timestamps is not None else 0],
                    dtype=np.int64)
    arrays = {
        "meta": meta,
        "event_ids": yet.event_ids,
        "trial_offsets": yet.trial_offsets,
    }
    if yet.timestamps is not None:
        arrays["timestamps"] = yet.timestamps
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(target, **arrays)
    return target


def load_yet(path: str | os.PathLike) -> YearEventTable:
    """Load a YET previously written by :func:`save_yet`."""
    source = Path(path)
    if not source.exists() and source.suffix != ".npz":
        source = source.with_suffix(source.suffix + ".npz")
    if not source.exists():
        raise FileNotFoundError(f"no such YET file: {path}")
    with np.load(source) as data:
        meta = data["meta"]
        version = int(meta[0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported YET format version {version}")
        catalog_size = int(meta[1])
        has_timestamps = bool(meta[2])
        event_ids = data["event_ids"]
        trial_offsets = data["trial_offsets"]
        timestamps = data["timestamps"] if has_timestamps else None
    return YearEventTable(event_ids, trial_offsets, catalog_size, timestamps)


def yet_to_bytes(yet: YearEventTable) -> bytes:
    """Encode a YET as one in-memory ``.npz`` blob (see :func:`yet_from_bytes`).

    The exact member layout of :func:`save_yet`, written to a buffer instead
    of a file — the form the distributed protocol ships when a worker has no
    shared filesystem to fetch a store directory from.
    """
    meta = np.array(
        [_FORMAT_VERSION, yet.catalog_size, 1 if yet.timestamps is not None else 0],
        dtype=np.int64,
    )
    arrays = {"meta": meta, "event_ids": yet.event_ids, "trial_offsets": yet.trial_offsets}
    if yet.timestamps is not None:
        arrays["timestamps"] = yet.timestamps
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def yet_from_bytes(payload: bytes) -> YearEventTable:
    """Decode a YET encoded by :func:`yet_to_bytes`."""
    with np.load(io.BytesIO(payload)) as data:
        meta = data["meta"]
        version = int(meta[0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported YET format version {version}")
        catalog_size = int(meta[1])
        has_timestamps = bool(meta[2])
        event_ids = data["event_ids"]
        trial_offsets = data["trial_offsets"]
        timestamps = data["timestamps"] if has_timestamps else None
    return YearEventTable(event_ids, trial_offsets, catalog_size, timestamps)


def shard_count_for_budget(event_bytes: int, max_shard_bytes: int) -> int:
    """Smallest shard count keeping one shard's event columns within a budget.

    ``ceil(event_bytes / max_shard_bytes)``, floored at one shard.  Shards
    are nearly equal in *trials*, not bytes, so a skewed table can exceed
    the budget on its densest shard; the estimate targets the mean.  The
    one shared implementation behind both
    :meth:`YetShardReader.shard_count_for_budget` and the in-memory
    ``max_shard_bytes`` branch of
    :meth:`~repro.core.engine.AggregateRiskEngine.run_sharded`.
    """
    if max_shard_bytes <= 0:
        raise ValueError(f"max_shard_bytes must be positive, got {max_shard_bytes}")
    if event_bytes <= 0:
        return 1
    return max(1, -(-int(event_bytes) // int(max_shard_bytes)))


def save_yet_store(yet: YearEventTable, path: str | os.PathLike) -> Path:
    """Save a YET as a store directory for out-of-core shard reading.

    The directory holds one raw ``.npy`` file per flat array plus a JSON
    manifest; raw ``.npy`` members (unlike zip-packed ``.npz`` ones) can be
    memory-mapped, which is what lets :class:`YetShardReader` touch only the
    pages of the shard being priced.  Returns the directory path.
    """
    target = Path(path)
    target.mkdir(parents=True, exist_ok=True)
    np.save(target / "event_ids.npy", yet.event_ids)
    np.save(target / "trial_offsets.npy", yet.trial_offsets)
    if yet.timestamps is not None:
        np.save(target / "timestamps.npy", yet.timestamps)
    manifest = {
        "format_version": _FORMAT_VERSION,
        "catalog_size": yet.catalog_size,
        "n_trials": yet.n_trials,
        "n_occurrences": yet.n_occurrences,
        "has_timestamps": yet.timestamps is not None,
    }
    (target / _STORE_MANIFEST).write_text(json.dumps(manifest, indent=2) + "\n")
    return target


class YetShardReader:
    """Memory-mapped trial-shard reader over a YET store directory.

    The trial offsets (``n_trials + 1`` int64 — tiny) are loaded eagerly;
    the event ids and timestamps stay memory-mapped, and
    :meth:`shard` copies exactly one shard's columns into a fresh in-memory
    :class:`~repro.yet.table.YearEventTable`.  Total resident memory over a
    full sweep is therefore bounded by one shard (plus whatever the caller
    accumulates), not by the table.

    Use as a context manager, or :meth:`close` explicitly; iterating shards
    after ``close`` raises.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        manifest_path = self.path / _STORE_MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"no YET store at {self.path} (missing {_STORE_MANIFEST}; "
                "write one with save_yet_store)"
            )
        manifest = json.loads(manifest_path.read_text())
        version = int(manifest["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported YET store version {version}")
        self.catalog_size = int(manifest["catalog_size"])
        self._has_timestamps = bool(manifest["has_timestamps"])
        self.trial_offsets = np.load(self.path / "trial_offsets.npy")
        self._event_ids: np.ndarray | None = np.load(
            self.path / "event_ids.npy", mmap_mode="r"
        )
        self._timestamps: np.ndarray | None = (
            np.load(self.path / "timestamps.npy", mmap_mode="r")
            if self._has_timestamps
            else None
        )

    # ------------------------------------------------------------------ #
    # Shape accessors
    # ------------------------------------------------------------------ #
    @property
    def n_trials(self) -> int:
        """Number of trials in the stored table."""
        return int(self.trial_offsets.shape[0] - 1)

    @property
    def n_occurrences(self) -> int:
        """Total number of stored event occurrences."""
        return int(self.trial_offsets[-1])

    @property
    def mean_events_per_trial(self) -> float:
        """Average trial length of the stored table."""
        if self.n_trials == 0:
            return 0.0
        return self.n_occurrences / self.n_trials

    @property
    def event_bytes(self) -> int:
        """Bytes of event columns a whole-table load would make resident."""
        per_event = 8 + (8 if self._has_timestamps else 0)
        return self.n_occurrences * per_event

    def shard_count_for_budget(self, max_shard_bytes: int) -> int:
        """Smallest shard count keeping one shard's columns within a byte budget.

        Delegates to the module-level :func:`shard_count_for_budget` with
        the stored table's event-column bytes.
        """
        return shard_count_for_budget(self.event_bytes, max_shard_bytes)

    # ------------------------------------------------------------------ #
    # Shard access
    # ------------------------------------------------------------------ #
    def _require_open(self) -> np.ndarray:
        if self._event_ids is None:
            raise ValueError(f"YET store reader for {self.path} is closed")
        return self._event_ids

    def shard(self, trials: TrialRange) -> YearEventTable:
        """Materialise one trial shard as an in-memory YET.

        The returned table is indexed locally (trial 0 = ``trials.start``);
        the shard's global placement travels alongside it through the
        :class:`~repro.parallel.partitioner.TrialRange`.
        """
        event_ids = self._require_open()
        if not 0 <= trials.start <= trials.stop <= self.n_trials:
            # stop == n_trials is valid (the range is trials [start, stop),
            # so stop may equal the trial count) — report the bound as
            # inclusive, not as [0, n_trials).
            raise IndexError(
                f"shard range [{trials.start}, {trials.stop}) outside "
                f"0 <= start <= stop <= {self.n_trials}"
            )
        lo = int(self.trial_offsets[trials.start])
        hi = int(self.trial_offsets[trials.stop])
        offsets = self.trial_offsets[trials.start : trials.stop + 1] - lo
        # np.array (not asarray): a slice of a memmap is still a view on the
        # file mapping, so an explicit copy is required for the returned
        # table to be genuinely in-memory — independent of close() and of
        # the store file's lifetime.
        timestamps = (
            np.array(self._timestamps[lo:hi]) if self._timestamps is not None else None
        )
        return YearEventTable(
            np.array(event_ids[lo:hi]),
            offsets,
            self.catalog_size,
            timestamps,
        )

    def shard_ranges(self, n_shards: int) -> List[TrialRange]:
        """At most ``n_shards`` contiguous non-empty trial ranges covering the table."""
        return shard_partition(self.n_trials, n_shards)

    def iter_shards(
        self, n_shards: int
    ) -> Iterator[Tuple[TrialRange, YearEventTable]]:
        """Yield ``(trial range, in-memory shard YET)`` pairs in trial order.

        Each shard is materialised lazily as the caller advances, so at most
        one shard's columns are resident at a time.
        """
        for trials in self.shard_ranges(n_shards):
            yield trials, self.shard(trials)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop the memory maps (idempotent)."""
        self._event_ids = None
        self._timestamps = None

    def __enter__(self) -> "YetShardReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"YetShardReader(path={str(self.path)!r}, n_trials={self.n_trials}, "
            f"n_occurrences={self.n_occurrences})"
        )
