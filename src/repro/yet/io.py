"""Serialization of Year Event Tables.

YETs are large, immutable data artefacts that are generated once and reused by
many analyses, so being able to persist and reload them matters in practice.
The format is a single compressed ``.npz`` file holding the flat arrays plus a
small metadata vector; it round-trips exactly.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.yet.table import YearEventTable

__all__ = ["save_yet", "load_yet"]

_FORMAT_VERSION = 1


def save_yet(yet: YearEventTable, path: str | os.PathLike) -> Path:
    """Save a YET to ``path`` (``.npz`` appended if missing). Returns the path."""
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_suffix(target.suffix + ".npz")
    meta = np.array([_FORMAT_VERSION, yet.catalog_size, 1 if yet.timestamps is not None else 0],
                    dtype=np.int64)
    arrays = {
        "meta": meta,
        "event_ids": yet.event_ids,
        "trial_offsets": yet.trial_offsets,
    }
    if yet.timestamps is not None:
        arrays["timestamps"] = yet.timestamps
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(target, **arrays)
    return target


def load_yet(path: str | os.PathLike) -> YearEventTable:
    """Load a YET previously written by :func:`save_yet`."""
    source = Path(path)
    if not source.exists() and source.suffix != ".npz":
        source = source.with_suffix(source.suffix + ".npz")
    if not source.exists():
        raise FileNotFoundError(f"no such YET file: {path}")
    with np.load(source) as data:
        meta = data["meta"]
        version = int(meta[0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported YET format version {version}")
        catalog_size = int(meta[1])
        has_timestamps = bool(meta[2])
        event_ids = data["event_ids"]
        trial_offsets = data["trial_offsets"]
        timestamps = data["timestamps"] if has_timestamps else None
    return YearEventTable(event_ids, trial_offsets, catalog_size, timestamps)
