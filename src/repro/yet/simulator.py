"""Year Event Table simulation.

Real YETs are produced once by the catastrophe-model vendor and shipped as
data; here we simulate them from a catalog:

1. the number of occurrences in each trial is drawn from a frequency model
   (Poisson over the catalog's total annual rate by default, negative binomial
   for clustered years),
2. the identity of each occurrence is drawn from the catalog's per-event rate
   distribution (independent occurrences given the count),
3. each occurrence receives a timestamp in ``[0, 1)`` drawn from the peril's
   seasonality profile (uniform when no profile is supplied), and
4. occurrences within a trial are sorted by timestamp, matching the paper's
   definition of a trial as a time-ordered set of (event, time) tuples.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.catalog.events import EventCatalog
from repro.catalog.frequency import FrequencyModel, PoissonFrequency
from repro.catalog.peril import Peril, PerilProfile
from repro.utils.rng import RNGLike, derive_rng
from repro.utils.validation import ensure_positive
from repro.yet.table import YearEventTable

__all__ = ["YETSimulator"]


class YETSimulator:
    """Samples Year Event Tables from an event catalog."""

    def __init__(
        self,
        catalog: EventCatalog,
        frequency_model: FrequencyModel | None = None,
        peril_profiles: Mapping[Peril, PerilProfile] | None = None,
        min_events_per_trial: int = 0,
        max_events_per_trial: int | None = None,
    ) -> None:
        if catalog.size == 0:
            raise ValueError("cannot simulate a YET from an empty catalog")
        self.catalog = catalog
        self.frequency_model = frequency_model or PoissonFrequency(catalog.total_annual_rate)
        self.peril_profiles = dict(peril_profiles) if peril_profiles else {}
        if min_events_per_trial < 0:
            raise ValueError("min_events_per_trial must be non-negative")
        if max_events_per_trial is not None and max_events_per_trial < max(min_events_per_trial, 1):
            raise ValueError("max_events_per_trial must be >= max(min_events_per_trial, 1)")
        self.min_events_per_trial = int(min_events_per_trial)
        self.max_events_per_trial = max_events_per_trial
        self._event_probabilities = catalog.occurrence_probabilities()

    # ------------------------------------------------------------------ #
    # Timestamp sampling
    # ------------------------------------------------------------------ #
    def _sample_timestamps(self, event_ids: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Sample within-year occurrence times honouring peril seasonality."""
        n = event_ids.shape[0]
        times = rng.random(n)
        if not self.peril_profiles:
            return times
        peril_codes = self.catalog.peril_codes[event_ids]
        for code, peril in enumerate(self.catalog.peril_order):
            profile = self.peril_profiles.get(peril)
            if profile is None or profile.season_concentration <= 0.0:
                continue
            mask = peril_codes == code
            count = int(mask.sum())
            if count == 0:
                continue
            # Wrapped-normal seasonality: peak at season_peak with a spread
            # inversely proportional to the concentration.
            spread = 1.0 / (2.0 * np.sqrt(profile.season_concentration))
            sampled = rng.normal(profile.season_peak, spread, size=count)
            times[mask] = np.mod(sampled, 1.0)
        return times

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        n_trials: int,
        rng: RNGLike = None,
        with_timestamps: bool = True,
    ) -> YearEventTable:
        """Simulate a YET with ``n_trials`` trials.

        Parameters
        ----------
        n_trials:
            Number of trials (simulated contractual years).
        rng:
            Seed or generator.
        with_timestamps:
            Whether to sample and store occurrence timestamps (disable for
            benchmark workloads where only the event sequence matters).
        """
        ensure_positive(n_trials, "n_trials")
        generator = derive_rng(rng)

        counts = self.frequency_model.clipped_counts(
            int(n_trials),
            generator,
            min_events=self.min_events_per_trial,
            max_events=self.max_events_per_trial,
        )
        offsets = np.zeros(n_trials + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])

        event_ids = generator.choice(
            self.catalog.size, size=total, p=self._event_probabilities
        ).astype(np.int64)

        timestamps = None
        if with_timestamps:
            timestamps = self._sample_timestamps(event_ids, generator)
            # Sort each trial by timestamp: the YET is defined as time-ordered.
            for i in range(n_trials):
                start, stop = offsets[i], offsets[i + 1]
                if stop - start > 1:
                    order = np.argsort(timestamps[start:stop], kind="stable")
                    event_ids[start:stop] = event_ids[start:stop][order]
                    timestamps[start:stop] = timestamps[start:stop][order]

        return YearEventTable(event_ids, offsets, self.catalog.size, timestamps)

    def simulate_fixed_length(
        self,
        n_trials: int,
        events_per_trial: int,
        rng: RNGLike = None,
        with_timestamps: bool = False,
    ) -> YearEventTable:
        """Simulate a YET where every trial has exactly ``events_per_trial`` events.

        The paper's performance experiments fix the trial length (e.g. "1
        million trials, each trial comprising 1000 events"); this helper
        produces exactly that shape while still drawing event identities from
        the catalog's rate distribution.
        """
        ensure_positive(n_trials, "n_trials")
        ensure_positive(events_per_trial, "events_per_trial")
        generator = derive_rng(rng)
        total = int(n_trials) * int(events_per_trial)
        offsets = np.arange(0, total + 1, events_per_trial, dtype=np.int64)
        event_ids = generator.choice(
            self.catalog.size, size=total, p=self._event_probabilities
        ).astype(np.int64)
        timestamps = None
        if with_timestamps:
            timestamps = generator.random(total)
            matrix_t = timestamps.reshape(n_trials, events_per_trial)
            matrix_e = event_ids.reshape(n_trials, events_per_trial)
            order = np.argsort(matrix_t, axis=1, kind="stable")
            rows = np.arange(n_trials)[:, None]
            timestamps = matrix_t[rows, order].reshape(-1)
            event_ids = matrix_e[rows, order].reshape(-1)
        return YearEventTable(event_ids, offsets, self.catalog.size, timestamps)
