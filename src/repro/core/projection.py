"""Full-scale runtime projections.

The benchmark harness executes proportionally scaled workloads (a laptop
cannot hold, let alone stream, the paper's 15-billion-lookup configuration in
pure Python within a benchmark session).  To compare against the paper's
*absolute* numbers, this module provides simple analytical projections of the
full-scale runtimes:

* :class:`CPUCostModel` — a latency/bandwidth model of the single-core C++
  engine the paper measured (the analysis is dominated by dependent random
  loads into the ELT direct access tables), plus the multi-core projection via
  :func:`~repro.parallel.scheduling.memory_bound_speedup_model`;
* the GPU projections come directly from
  :class:`~repro.parallel.device.KernelCostModel`.

All constants are calibration inputs, documented as such; the claim checked in
EXPERIMENTS.md is that the *relative* ordering and rough factors between the
implementations match the paper, not that a laptop-calibrated model predicts a
2012 testbed to the second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.parallel.device import GPUSpec, KernelConfig, KernelCostModel, WorkloadShape
from repro.parallel.scheduling import memory_bound_speedup_model
from repro.utils.validation import ensure_positive

__all__ = ["CPUCostModel", "project_summary"]


@dataclass(frozen=True)
class CPUCostModel:
    """Analytical single-core CPU time model for the aggregate analysis.

    Attributes
    ----------
    ns_per_elt_lookup:
        Average cost of one random lookup into a multi-gigabyte direct access
        table (a last-level-cache miss on the paper's i7-2600).
    ns_per_event_overhead:
        Per-event cost of the event fetch and loop bookkeeping.
    ns_per_term_op:
        Per-event-per-ELT cost of the financial-term arithmetic plus the
        per-event layer-term arithmetic.
    memory_bound_fraction, single_core_bandwidth_share:
        Parameters of the multi-core saturation model (see
        :func:`repro.parallel.scheduling.memory_bound_speedup_model`).
    """

    ns_per_elt_lookup: float = 20.0
    ns_per_event_overhead: float = 12.0
    ns_per_term_op: float = 1.5
    memory_bound_fraction: float = 0.78
    single_core_bandwidth_share: float = 0.45

    def __post_init__(self) -> None:
        ensure_positive(self.ns_per_elt_lookup, "ns_per_elt_lookup")
        ensure_positive(self.ns_per_event_overhead, "ns_per_event_overhead")
        ensure_positive(self.ns_per_term_op, "ns_per_term_op")

    def sequential_seconds(self, shape: WorkloadShape) -> float:
        """Projected single-core runtime of the basic algorithm."""
        lookups = shape.total_lookups
        events = shape.total_events * shape.n_layers
        seconds = (
            lookups * self.ns_per_elt_lookup
            + events * self.ns_per_event_overhead
            + lookups * self.ns_per_term_op
            + events * self.ns_per_term_op * 2.0
        ) * 1e-9
        return float(seconds)

    def multicore_seconds(self, shape: WorkloadShape, n_cores: int) -> float:
        """Projected runtime on ``n_cores`` under memory-bandwidth saturation."""
        speedup = memory_bound_speedup_model(
            n_cores, self.memory_bound_fraction, self.single_core_bandwidth_share
        )
        return self.sequential_seconds(shape) / speedup

    def phase_fractions(self, shape: WorkloadShape) -> Dict[str, float]:
        """Projected share of runtime per phase (the Fig. 6b breakdown)."""
        lookups = shape.total_lookups
        events = shape.total_events * shape.n_layers
        parts = {
            "event_fetch": events * self.ns_per_event_overhead,
            "elt_lookup": lookups * self.ns_per_elt_lookup,
            "financial_terms": lookups * self.ns_per_term_op,
            "layer_terms": events * self.ns_per_term_op * 2.0,
        }
        total = sum(parts.values())
        return {name: value / total for name, value in parts.items()}


def project_summary(
    shape: WorkloadShape,
    n_cores: int = 8,
    cpu_model: CPUCostModel | None = None,
    gpu_spec: GPUSpec | None = None,
    basic_gpu_config: KernelConfig | None = None,
    optimised_gpu_config: KernelConfig | None = None,
) -> Dict[str, float]:
    """Projected full-scale runtimes of the four implementations (Fig. 6a).

    Returns a mapping with keys ``sequential_cpu``, ``multicore_cpu``,
    ``basic_gpu`` and ``optimised_gpu`` (seconds).
    """
    cpu = cpu_model if cpu_model is not None else CPUCostModel()
    gpu = KernelCostModel(gpu_spec if gpu_spec is not None else GPUSpec())
    basic_cfg = basic_gpu_config if basic_gpu_config is not None else KernelConfig(
        threads_per_block=256, chunk_size=1, optimised=False
    )
    opt_cfg = optimised_gpu_config if optimised_gpu_config is not None else KernelConfig(
        threads_per_block=64, chunk_size=4, optimised=True
    )
    return {
        "sequential_cpu": cpu.sequential_seconds(shape),
        "multicore_cpu": cpu.multicore_seconds(shape, n_cores),
        "basic_gpu": gpu.estimate(shape, basic_cfg).seconds,
        "optimised_gpu": gpu.estimate(shape, opt_cfg).seconds,
    }
