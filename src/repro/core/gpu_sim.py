"""Simulated-GPU backend.

The backend executes the aggregate analysis *functionally* — block by block,
with the same chunked kernel the optimised GPU implementation uses — and, for
every layer, asks the :class:`~repro.parallel.device.SimulatedGPU` cost model
how long the corresponding kernel launch would take on a Tesla-C2075-class
device.  The engine result therefore carries two times:

* ``wall_seconds`` — the measured wall-clock time of the NumPy execution on
  the host (useful for comparing against the other Python backends), and
* ``modeled_seconds`` — the modelled device time (the quantity compared
  against the paper's Figures 4, 5 and 6a).

``EngineConfig.threads_per_block`` determines how many trials form one
simulated CUDA block; ``EngineConfig.gpu_chunk_size`` is the number of events
staged per thread per chunk iteration; ``EngineConfig.gpu_optimised`` selects
the basic (global-memory) or optimised (shared-memory, chunked) kernel.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.config import EngineConfig
from repro.core.kernels import layer_trial_losses, layer_trial_losses_chunked
from repro.core.results import EngineResult
from repro.parallel.device import KernelConfig, KernelEstimate, SimulatedGPU, WorkloadShape
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.utils.timing import PhaseTimer, Timer
from repro.yet.table import YearEventTable
from repro.ylt.table import YearLossTable

__all__ = ["GPUSimulatedEngine"]


class GPUSimulatedEngine:
    """Functional execution on the simulated many-core device."""

    name = "gpu"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig(backend="gpu")
        self.device = SimulatedGPU(self.config.gpu_spec)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def kernel_config(self) -> KernelConfig:
        """The kernel launch configuration implied by the engine config."""
        return KernelConfig(
            threads_per_block=self.config.threads_per_block,
            chunk_size=self.config.gpu_chunk_size,
            optimised=self.config.gpu_optimised,
        )

    def run(self, program: ReinsuranceProgram | Layer, yet: YearEventTable) -> EngineResult:
        """Run the aggregate analysis for every layer of ``program`` over ``yet``."""
        program = ReinsuranceProgram.wrap(program)
        config = self.config
        kernel_config = self.kernel_config()
        timer = PhaseTimer(enabled=config.record_phases)
        wall = Timer().start()

        n_trials = yet.n_trials
        losses = np.zeros((program.n_layers, n_trials), dtype=np.float64)
        max_occ = (
            np.zeros((program.n_layers, n_trials), dtype=np.float64)
            if config.record_max_occurrence
            else None
        )
        estimates: List[KernelEstimate] = []

        threads = config.threads_per_block
        for layer_index, layer in enumerate(program.layers):
            matrix = layer.loss_matrix()
            # Functional execution: process the trials one simulated CUDA
            # block at a time.  Each block covers `threads_per_block` trials;
            # within the block the chunked kernel stages `chunk_size` events
            # per thread per iteration, i.e. threads * chunk_size flattened
            # events per chunked gather.
            for block_start in range(0, n_trials, threads):
                block_stop = min(block_start + threads, n_trials)
                lo = int(yet.trial_offsets[block_start])
                hi = int(yet.trial_offsets[block_stop])
                event_ids = yet.event_ids[lo:hi]
                offsets = yet.trial_offsets[block_start : block_stop + 1] - lo
                if config.gpu_optimised:
                    year_losses, trial_max = layer_trial_losses_chunked(
                        matrix,
                        event_ids,
                        offsets,
                        layer.terms,
                        chunk_events=threads * config.gpu_chunk_size,
                        use_shortcut=config.use_aggregate_shortcut,
                        record_max_occurrence=config.record_max_occurrence,
                        timer=timer,
                    )
                else:
                    year_losses, trial_max = layer_trial_losses(
                        matrix,
                        event_ids,
                        offsets,
                        layer.terms,
                        use_shortcut=config.use_aggregate_shortcut,
                        record_max_occurrence=config.record_max_occurrence,
                        timer=timer,
                    )
                losses[layer_index, block_start:block_stop] = year_losses
                if max_occ is not None and trial_max is not None:
                    max_occ[layer_index, block_start:block_stop] = trial_max

            layer_shape = WorkloadShape(
                n_trials=n_trials,
                events_per_trial=max(yet.mean_events_per_trial, 1e-9),
                n_elts=layer.n_elts,
                n_layers=1,
            )
            estimates.append(self.device.estimate(layer_shape, kernel_config))

        wall_seconds = wall.stop()
        shape = WorkloadShape(
            n_trials=n_trials,
            events_per_trial=max(yet.mean_events_per_trial, 1e-9),
            n_elts=max(int(round(program.mean_elts_per_layer)), 1),
            n_layers=program.n_layers,
        )
        return EngineResult(
            ylt=YearLossTable(losses, program.layer_names, max_occ),
            backend=self.name,
            wall_seconds=wall_seconds,
            workload_shape=shape,
            phase_breakdown=timer.breakdown() if config.record_phases else None,
            modeled=tuple(estimates),
            modeled_seconds=float(sum(est.seconds for est in estimates)),
            details={
                "threads_per_block": config.threads_per_block,
                "chunk_size": config.gpu_chunk_size,
                "optimised": config.gpu_optimised,
                "device": self.device.spec.name,
                "fused_layers": False,
            },
        )

    # ------------------------------------------------------------------ #
    # Model-only estimation (used by the full-scale projections)
    # ------------------------------------------------------------------ #
    def estimate_only(self, shape: WorkloadShape) -> KernelEstimate:
        """Modelled kernel time for a workload shape without executing it."""
        return self.device.estimate(shape, self.kernel_config())
