"""Simulated-GPU backend.

The backend executes the aggregate analysis *functionally* — block by block,
with the same chunked kernel the optimised GPU implementation uses — and, for
every layer, asks the :class:`~repro.parallel.device.SimulatedGPU` cost model
how long the corresponding kernel launch would take on a Tesla-C2075-class
device.  The engine result therefore carries two times:

* ``wall_seconds`` — the measured wall-clock time of the NumPy execution on
  the host (useful for comparing against the other Python backends), and
* ``modeled_seconds`` — the modelled device time (the quantity compared
  against the paper's Figures 4, 5 and 6a).

``EngineConfig.threads_per_block`` determines how many trials form one
simulated CUDA block; ``EngineConfig.gpu_chunk_size`` is the number of events
staged per thread per chunk iteration; ``EngineConfig.gpu_optimised`` selects
the basic (global-memory) or optimised (shared-memory, chunked) kernel.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.config import EngineConfig
from repro.core.kernels import layer_trial_losses, layer_trial_losses_chunked
from repro.core.results import EngineResult
from repro.parallel.device import KernelConfig, KernelEstimate, SimulatedGPU, WorkloadShape
from repro.utils.timing import PhaseTimer, Timer

__all__ = ["GPUSimulatedEngine"]


def _launch_block(layer, event_ids, offsets, config: EngineConfig, timer: PhaseTimer):
    """One simulated kernel launch: a block of trials for one layer."""
    if config.gpu_optimised:
        return layer_trial_losses_chunked(
            layer.loss_matrix(),
            event_ids,
            offsets,
            layer.terms,
            chunk_events=config.threads_per_block * config.gpu_chunk_size,
            use_shortcut=config.use_aggregate_shortcut,
            record_max_occurrence=config.record_max_occurrence,
            timer=timer,
        )
    return layer_trial_losses(
        layer.loss_matrix(),
        event_ids,
        offsets,
        layer.terms,
        use_shortcut=config.use_aggregate_shortcut,
        record_max_occurrence=config.record_max_occurrence,
        timer=timer,
    )


class GPUSimulatedEngine:
    """Functional execution on the simulated many-core device."""

    name = "gpu"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig(backend="gpu")
        self.device = SimulatedGPU(self.config.gpu_spec)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def kernel_config(self) -> KernelConfig:
        """The kernel launch configuration implied by the engine config."""
        return KernelConfig(
            threads_per_block=self.config.threads_per_block,
            chunk_size=self.config.gpu_chunk_size,
            optimised=self.config.gpu_optimised,
        )

    def run_plan(self, plan) -> EngineResult:
        """Execute an :class:`~repro.core.plan.ExecutionPlan` tile by tile.

        The plan's iteration space maps directly onto the device model: one
        simulated CUDA block is ``threads_per_block`` trials x 1 row, in
        the launch order of the paper's per-layer kernel loop.  The plan is
        executed shard by shard like every backend (each shard launches its
        own block grid); per-trial results are trial-local, so the shard and
        block decomposition never moves a bit.  Synthetic plans (precomputed
        stack rows without source layers) are not supported by the device
        model.
        """
        if not plan.has_layers:
            raise ValueError(
                "backend 'gpu' has no stacked execution path; "
                "use one of the fused backends (vectorized, chunked, multicore)"
            )
        from repro.core.plan import finalize_plan_result
        from repro.core.results import PartialResult, ResultAccumulator
        from repro.parallel.partitioner import chunk_partition

        config = self.config
        kernel_config = self.kernel_config()
        timer = PhaseTimer(enabled=config.record_phases)
        wall = Timer().start()
        yet = plan.yet
        threads = config.threads_per_block

        shards = plan.shard_ranges(plan.n_shards or config.trial_shards)
        accumulator = ResultAccumulator.for_plan(plan)
        for trials in shards:
            losses = np.zeros((plan.n_rows, trials.size), dtype=np.float64)
            max_occ = (
                np.zeros((plan.n_rows, trials.size), dtype=np.float64)
                if config.record_max_occurrence
                else None
            )
            for row in range(plan.n_rows):
                for block in chunk_partition(trials.size, threads):
                    start = trials.start + block.start
                    stop = trials.start + block.stop
                    event_ids, offsets = yet.trial_window(start, stop)
                    year_losses, trial_max = _launch_block(
                        plan.layers[row], event_ids, offsets, config, timer
                    )
                    losses[row, block.start : block.stop] = year_losses
                    if max_occ is not None and trial_max is not None:
                        max_occ[row, block.start : block.stop] = trial_max
            accumulator.add(PartialResult(trials, losses, max_occ))

        estimates: List[KernelEstimate] = [
            self.device.estimate(
                WorkloadShape(
                    n_trials=plan.n_trials,
                    events_per_trial=max(yet.mean_events_per_trial, 1e-9),
                    n_elts=layer.n_elts,
                    n_layers=1,
                ),
                kernel_config,
            )
            for layer in plan.layers
        ]
        return finalize_plan_result(
            plan,
            self.name,
            accumulator.year_losses(),
            accumulator.max_occurrence_losses(),
            wall.stop(),
            {
                "threads_per_block": config.threads_per_block,
                "chunk_size": config.gpu_chunk_size,
                "optimised": config.gpu_optimised,
                "device": self.device.spec.name,
                "fused_layers": False,
                "trial_shards": len(shards),
            },
            phase_breakdown=timer.breakdown() if config.record_phases else None,
            modeled=tuple(estimates),
            modeled_seconds=float(sum(est.seconds for est in estimates)),
        )

    # ------------------------------------------------------------------ #
    # Model-only estimation (used by the full-scale projections)
    # ------------------------------------------------------------------ #
    def estimate_only(self, shape: WorkloadShape) -> KernelEstimate:
        """Modelled kernel time for a workload shape without executing it."""
        return self.device.estimate(shape, self.kernel_config())
