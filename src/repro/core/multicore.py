"""Multi-core (multi-process) backend: the OpenMP analogue.

The paper's multi-core engine runs one OpenMP thread per trial with the ELT
direct access tables shared in the process's address space.  The Python
analogue uses worker *processes* (to sidestep the GIL) over *blocks* of
trials.  How the read-only inputs reach the workers depends on the transport:

* under ``fork`` the Year Event Table and the fused loss stack are inherited
  by reference (zero-copy on Linux);
* under ``spawn``/``forkserver`` the plan scheduler publishes the stack and
  the YET columns through :class:`~repro.parallel.shared_memory.SharedArray`
  segments, so each worker *attaches* a zero-copy NumPy view instead of
  unpickling ``n_rows x catalog_size`` doubles per run (the pickling
  transport remains available as the ``EngineConfig.shared_memory="off"``
  baseline).

``EngineConfig.n_workers`` plays the role of the paper's "number of cores"
(Fig. 3a) and ``EngineConfig.oversubscription`` with dynamic scheduling plays
the role of "threads per core" (Fig. 3b): the trial range is over-decomposed
into ``oversubscription x n_workers`` chunks that idle workers pull from the
pool's queue.

:meth:`MulticoreEngine.run_plan` schedules the unified
:class:`~repro.core.plan.ExecutionPlan` IR by mapping its trial tiles over
the worker pool; it is the backend's *only* entry point — the pre-plan
per-backend ``run`` dispatch was removed once the plan-vs-legacy
conformance window closed.

For serving workloads the backend can additionally *retain* the published
workspace across runs (``retain_workspaces``): re-executing the same plan
object — which is exactly what the
:class:`~repro.service.service.RiskService` plan cache produces — reuses
the shared segments instead of copying the stack and YET columns back into
``/dev/shm`` per request.  A retained workspace is closed when its plan is
garbage collected, when retention is switched off, or via
:meth:`MulticoreEngine.release_workspaces`; the module-level ``atexit``
guard in :mod:`repro.parallel.shared_memory` backstops process exit.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence

import numpy as np

from repro.core.config import EngineConfig
from repro.core.kernels import layer_trial_losses, layer_trial_losses_batch
from repro.core.plan import ExecutionPlan, finalize_plan_result
from repro.core.results import EngineResult, PartialResult, ResultAccumulator
from repro.financial.terms import LayerTerms, LayerTermsVectors
from repro.elt.combined import LayerLossMatrix
from repro.parallel.executor import ParallelConfig, TrialBlockExecutor
from repro.parallel.partitioner import TrialRange
from repro.parallel.shared_memory import SharedArrayDescriptor, SharedWorkspace
from repro.utils.timing import Timer

__all__ = ["MulticoreEngine", "MulticoreContext"]


@dataclass
class MulticoreContext:
    """Read-only data shared with the worker processes.

    Attributes
    ----------
    event_ids, trial_offsets:
        The YET's flattened arrays.
    matrices:
        One dense loss matrix per layer (per-layer path; ``None`` when the
        fused stack is used instead).
    terms:
        One :class:`LayerTerms` per layer (per-layer path; empty when the
        fused stack carries ``terms_vectors`` instead).
    use_shortcut, record_max_occurrence:
        Engine options forwarded to the kernel.
    stack:
        Precomputed fused ``(n_rows, catalog_size)`` loss stack
        (:func:`~repro.core.kernels.build_layer_loss_stack`); when present
        each worker prices *all* rows of its trial block through the fused
        batch kernel instead of looping over the layers.
    terms_vectors:
        Structure-of-arrays layer terms; always set together with ``stack``.
    row_map:
        Optional plan-row -> stack-row dedup mapping (see
        :class:`~repro.core.plan.ExecutionPlan`).
    attachments:
        Worker-side keep-alive handles for shared-memory views; ``None``
        when the arrays were inherited or pickled.
    """

    event_ids: np.ndarray
    trial_offsets: np.ndarray
    matrices: Sequence[LayerLossMatrix] | None
    terms: Sequence[LayerTerms]
    use_shortcut: bool
    record_max_occurrence: bool
    stack: np.ndarray | None = None
    terms_vectors: LayerTermsVectors | None = None
    row_map: np.ndarray | None = None
    attachments: Any = None


class _SharedPlanContext:
    """Picklable worker initializer: attach the plan's shared arrays.

    The parent publishes the fused stack and the YET columns as shared
    segments; each worker calls this factory once (in the pool initializer)
    to attach zero-copy views and assemble its :class:`MulticoreContext`.
    Only the compact descriptors and the small term vectors travel through
    the pickle channel.
    """

    def __init__(
        self,
        descriptors: Mapping[str, SharedArrayDescriptor],
        terms_vectors: LayerTermsVectors,
        row_map: np.ndarray | None,
        use_shortcut: bool,
        record_max_occurrence: bool,
    ) -> None:
        self.descriptors = dict(descriptors)
        self.terms_vectors = terms_vectors
        self.row_map = row_map
        self.use_shortcut = use_shortcut
        self.record_max_occurrence = record_max_occurrence

    def __call__(self) -> MulticoreContext:
        attachments = SharedWorkspace.attach_all(self.descriptors)
        return MulticoreContext(
            event_ids=attachments["event_ids"].array,
            trial_offsets=attachments["trial_offsets"].array,
            matrices=None,
            terms=(),
            use_shortcut=self.use_shortcut,
            record_max_occurrence=self.record_max_occurrence,
            stack=attachments["stack"].array,
            terms_vectors=self.terms_vectors,
            row_map=self.row_map,
            attachments=attachments,
        )


def _analyse_block(context: MulticoreContext, block: TrialRange) -> tuple[int, np.ndarray, np.ndarray | None]:
    """Worker-side task: analyse one block of trials for every layer.

    Returns ``(start_trial, losses, max_occurrence)`` where ``losses`` has
    shape ``(n_rows, block_size)``.
    """
    start, stop = block.start, block.stop
    lo = int(context.trial_offsets[start])
    hi = int(context.trial_offsets[stop])
    event_ids = context.event_ids[lo:hi]
    offsets = context.trial_offsets[start : stop + 1] - lo

    if context.stack is not None:
        losses, max_occ = layer_trial_losses_batch(
            (),
            event_ids,
            offsets,
            context.terms_vectors,
            use_shortcut=context.use_shortcut,
            record_max_occurrence=context.record_max_occurrence,
            stack=context.stack,
            row_map=context.row_map,
        )
        return block.start, losses, max_occ

    n_layers = len(context.matrices)
    losses = np.zeros((n_layers, block.size), dtype=np.float64)
    max_occ = (
        np.zeros((n_layers, block.size), dtype=np.float64)
        if context.record_max_occurrence
        else None
    )
    for layer_index, (matrix, terms) in enumerate(zip(context.matrices, context.terms)):
        year_losses, trial_max = layer_trial_losses(
            matrix,
            event_ids,
            offsets,
            terms,
            use_shortcut=context.use_shortcut,
            record_max_occurrence=context.record_max_occurrence,
        )
        losses[layer_index] = year_losses
        if max_occ is not None and trial_max is not None:
            max_occ[layer_index] = trial_max
    return block.start, losses, max_occ


class MulticoreEngine:
    """Multi-process backend partitioning trials over worker processes."""

    name = "multicore"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig(backend="multicore")
        #: Keep published workspaces alive across runs (warm-engine serving).
        self.retain_workspaces = False
        self._retained: "weakref.WeakKeyDictionary[ExecutionPlan, SharedWorkspace]" = (
            weakref.WeakKeyDictionary()
        )
        # Concurrent serving runs executions on a thread pool; without a lock
        # two threads could both miss the lookup and publish (and leak) a
        # second /dev/shm workspace for the same plan.
        self._retained_lock = threading.Lock()

    def _parallel_config(self) -> ParallelConfig:
        config = self.config
        return ParallelConfig(
            n_workers=config.n_workers,
            policy=config.scheduling,
            oversubscription=config.oversubscription,
            start_method=config.start_method,
        )

    def _uses_shared_memory(self) -> bool:
        """Whether the plan scheduler publishes its arrays via shared memory."""
        config = self.config
        if config.n_workers == 1:
            # The executor's serial fast path runs in-process: there is no
            # transport at all, so copying the arrays into /dev/shm would be
            # pure overhead (and tmpfs pressure) even under "on".
            return False
        if config.shared_memory == "on":
            return True
        if config.shared_memory == "off":
            return False
        # auto: fork inherits the parent's address space for free; any other
        # start method would pickle the arrays once per worker.
        return config.start_method != "fork"

    # ------------------------------------------------------------------ #
    # Workspace retention (warm-engine serving)
    # ------------------------------------------------------------------ #
    def _acquire_workspace(self, plan: ExecutionPlan, stack: np.ndarray) -> tuple[SharedWorkspace, bool, bool]:
        """(workspace, this run owns its teardown, it was reused).

        Without retention the caller publishes and closes per run.  With
        retention the workspace is stored against the plan object: a second
        execution of the same plan attaches to the already-published
        segments, and a ``weakref.finalize`` on the plan guarantees the
        segments are unlinked no later than the plan's own death.
        """
        if self.retain_workspaces:
            with self._retained_lock:
                workspace = self._retained.get(plan)
                if workspace is not None:
                    return workspace, False, True
                workspace = SharedWorkspace()
                workspace.add("stack", stack)
                workspace.add("event_ids", plan.yet.event_ids)
                workspace.add("trial_offsets", plan.yet.trial_offsets)
                self._retained[plan] = workspace
                weakref.finalize(plan, workspace.close)
                return workspace, False, False
        workspace = SharedWorkspace()
        workspace.add("stack", stack)
        workspace.add("event_ids", plan.yet.event_ids)
        workspace.add("trial_offsets", plan.yet.trial_offsets)
        return workspace, True, False

    def release_workspaces(self) -> None:
        """Close every workspace retained across runs (idempotent)."""
        with self._retained_lock:
            workspaces = list(self._retained.values())
            self._retained.clear()
        for workspace in workspaces:
            workspace.close()

    # ------------------------------------------------------------------ #
    # Plan scheduler
    # ------------------------------------------------------------------ #
    def run_plan(self, plan: ExecutionPlan) -> EngineResult:
        """Execute an :class:`~repro.core.plan.ExecutionPlan` across workers.

        The plan's trial shards are each decomposed into the configured
        worker schedule; all blocks of all shards run through one pool, and
        every block's result is accumulated as a
        :class:`~repro.core.results.PartialResult` (a worker block *is* a
        trial shard — disjoint by construction), so the assembled result is
        bit-identical for any worker count, scheduling policy or shard
        count.
        """
        config = self.config
        wall = Timer().start()

        fused = config.fused_layers or not plan.has_layers
        use_shm = fused and self._uses_shared_memory()
        parallel_config = self._parallel_config()

        shards = plan.shard_ranges(plan.n_shards or config.trial_shards)

        workspace: SharedWorkspace | None = None
        owns_workspace = False
        workspace_reused = False
        try:
            if fused:
                stack = plan.stack()
                if use_shm:
                    # Publish the big read-only arrays once; workers attach
                    # zero-copy views instead of unpickling them per worker.
                    # Under retention a re-executed plan reuses the segments
                    # published by its first run.
                    workspace, owns_workspace, workspace_reused = self._acquire_workspace(
                        plan, stack
                    )
                    executor = TrialBlockExecutor(
                        parallel_config,
                        context_factory=_SharedPlanContext(
                            workspace.descriptors(),
                            plan.terms,
                            plan.row_map,
                            config.use_aggregate_shortcut,
                            config.record_max_occurrence,
                        ),
                    )
                else:
                    context = MulticoreContext(
                        event_ids=plan.yet.event_ids,
                        trial_offsets=plan.yet.trial_offsets,
                        matrices=None,
                        terms=(),
                        use_shortcut=config.use_aggregate_shortcut,
                        record_max_occurrence=config.record_max_occurrence,
                        stack=stack,
                        terms_vectors=plan.terms,
                        row_map=plan.row_map,
                    )
                    executor = TrialBlockExecutor(parallel_config, context=context)
            else:
                context = MulticoreContext(
                    event_ids=plan.yet.event_ids,
                    trial_offsets=plan.yet.trial_offsets,
                    matrices=[layer.loss_matrix() for layer in plan.layers],
                    terms=[layer.terms for layer in plan.layers],
                    use_shortcut=config.use_aggregate_shortcut,
                    record_max_occurrence=config.record_max_occurrence,
                )
                executor = TrialBlockExecutor(parallel_config, context=context)

            # Each shard is decomposed into the configured worker schedule;
            # the flattened block list runs through one pool (one worker
            # start-up for the whole plan, however many shards it has).
            blocks: List[TrialRange] = []
            for trials in shards:
                schedule = executor.schedule_for(trials.size)
                blocks.extend(
                    TrialRange(trials.start + block.start, trials.start + block.stop)
                    for block in schedule.blocks
                )
            block_results: List[tuple[int, np.ndarray, np.ndarray | None]] = executor.run(
                _analyse_block, work_items=blocks
            )
        finally:
            # A worker dying mid-block must not leak the shared segments:
            # the owner unlinks them on every exit path (an atexit guard in
            # shared_memory.py backstops even this).  Retained workspaces
            # are closed by release_workspaces() or the plan's finalizer.
            if workspace is not None and owns_workspace:
                workspace.close()

        accumulator = ResultAccumulator.for_plan(plan)
        for start, block_losses, block_max in block_results:
            accumulator.add(
                PartialResult(
                    TrialRange(start, start + block_losses.shape[1]),
                    block_losses,
                    block_max,
                )
            )
        details: Dict[str, Any] = {
            "n_workers": config.n_workers,
            "scheduling": str(config.scheduling),
            "oversubscription": config.oversubscription,
            "n_blocks": len(blocks),
            "fused_layers": fused,
            "shared_memory": use_shm,
            "workspace_reused": workspace_reused,
            "trial_shards": len(shards),
        }
        return finalize_plan_result(
            plan,
            self.name,
            accumulator.year_losses(),
            accumulator.max_occurrence_losses(),
            wall.stop(),
            details,
        )
