"""Multi-core (multi-process) backend: the OpenMP analogue.

The paper's multi-core engine runs one OpenMP thread per trial with the ELT
direct access tables shared in the process's address space.  The Python
analogue uses worker *processes* (to sidestep the GIL) over *blocks* of
trials, with the Year Event Table and every layer's dense loss matrix shared
by ``fork`` inheritance (zero-copy on Linux) or rebuilt from shared memory
descriptors under ``spawn``.

``EngineConfig.n_workers`` plays the role of the paper's "number of cores"
(Fig. 3a) and ``EngineConfig.oversubscription`` with dynamic scheduling plays
the role of "threads per core" (Fig. 3b): the trial range is over-decomposed
into ``oversubscription x n_workers`` chunks that idle workers pull from the
pool's queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.config import EngineConfig
from repro.core.kernels import (
    build_layer_loss_stack,
    layer_trial_losses,
    layer_trial_losses_batch,
)
from repro.core.results import EngineResult
from repro.financial.terms import LayerTerms, LayerTermsVectors
from repro.elt.combined import LayerLossMatrix
from repro.parallel.device import WorkloadShape
from repro.parallel.executor import ParallelConfig, TrialBlockExecutor
from repro.parallel.partitioner import TrialRange
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.utils.timing import Timer
from repro.yet.table import YearEventTable
from repro.ylt.table import YearLossTable

__all__ = ["MulticoreEngine", "MulticoreContext"]


@dataclass
class MulticoreContext:
    """Read-only data shared with the worker processes.

    Attributes
    ----------
    event_ids, trial_offsets:
        The YET's flattened arrays.
    matrices:
        One dense loss matrix per layer (per-layer path; ``None`` when the
        fused stack is used instead).
    terms:
        One :class:`LayerTerms` per layer (per-layer path; empty when the
        fused stack carries ``terms_vectors`` instead).
    use_shortcut, record_max_occurrence:
        Engine options forwarded to the kernel.
    stack:
        Precomputed fused ``(n_layers, catalog_size)`` loss stack
        (:func:`~repro.core.kernels.build_layer_loss_stack`); when present
        each worker prices *all* layers of its trial block through the fused
        batch kernel instead of looping over the layers.
    terms_vectors:
        Structure-of-arrays layer terms; always set together with ``stack``.
    """

    event_ids: np.ndarray
    trial_offsets: np.ndarray
    matrices: Sequence[LayerLossMatrix] | None
    terms: Sequence[LayerTerms]
    use_shortcut: bool
    record_max_occurrence: bool
    stack: np.ndarray | None = None
    terms_vectors: LayerTermsVectors | None = None


def _analyse_block(context: MulticoreContext, block: TrialRange) -> tuple[int, np.ndarray, np.ndarray | None]:
    """Worker-side task: analyse one block of trials for every layer.

    Returns ``(start_trial, losses, max_occurrence)`` where ``losses`` has
    shape ``(n_layers, block_size)``.
    """
    start, stop = block.start, block.stop
    lo = int(context.trial_offsets[start])
    hi = int(context.trial_offsets[stop])
    event_ids = context.event_ids[lo:hi]
    offsets = context.trial_offsets[start : stop + 1] - lo

    if context.stack is not None:
        losses, max_occ = layer_trial_losses_batch(
            (),
            event_ids,
            offsets,
            context.terms_vectors,
            use_shortcut=context.use_shortcut,
            record_max_occurrence=context.record_max_occurrence,
            stack=context.stack,
        )
        return block.start, losses, max_occ

    n_layers = len(context.matrices)
    losses = np.zeros((n_layers, block.size), dtype=np.float64)
    max_occ = (
        np.zeros((n_layers, block.size), dtype=np.float64)
        if context.record_max_occurrence
        else None
    )
    for layer_index, (matrix, terms) in enumerate(zip(context.matrices, context.terms)):
        year_losses, trial_max = layer_trial_losses(
            matrix,
            event_ids,
            offsets,
            terms,
            use_shortcut=context.use_shortcut,
            record_max_occurrence=context.record_max_occurrence,
        )
        losses[layer_index] = year_losses
        if max_occ is not None and trial_max is not None:
            max_occ[layer_index] = trial_max
    return block.start, losses, max_occ


class MulticoreEngine:
    """Multi-process backend partitioning trials over worker processes."""

    name = "multicore"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig(backend="multicore")

    def run(self, program: ReinsuranceProgram | Layer, yet: YearEventTable) -> EngineResult:
        """Run the aggregate analysis for every layer of ``program`` over ``yet``."""
        program = ReinsuranceProgram.wrap(program)
        config = self.config
        wall = Timer().start()

        # Preprocessing: build the dense matrices (and, fused, the stacked
        # term-netted loss matrix) once in the parent so that forked workers
        # inherit them without copying.  The fused stack is also what a
        # ``spawn`` pool pickles: at n_layers x catalog_size doubles it is the
        # smaller and already term-netted representation, so workers skip the
        # per-gather financial-term arithmetic entirely.
        matrices = [layer.loss_matrix() for layer in program.layers]
        terms = [layer.terms for layer in program.layers]
        if config.fused_layers:
            context = MulticoreContext(
                event_ids=yet.event_ids,
                trial_offsets=yet.trial_offsets,
                matrices=None,
                terms=(),
                use_shortcut=config.use_aggregate_shortcut,
                record_max_occurrence=config.record_max_occurrence,
                stack=build_layer_loss_stack(matrices),
                terms_vectors=LayerTermsVectors.from_terms(terms),
            )
        else:
            context = MulticoreContext(
                event_ids=yet.event_ids,
                trial_offsets=yet.trial_offsets,
                matrices=matrices,
                terms=terms,
                use_shortcut=config.use_aggregate_shortcut,
                record_max_occurrence=config.record_max_occurrence,
            )

        parallel_config = ParallelConfig(
            n_workers=config.n_workers,
            policy=config.scheduling,
            oversubscription=config.oversubscription,
            start_method=config.start_method,
        )
        executor = TrialBlockExecutor(parallel_config, context=context)
        schedule = executor.schedule_for(yet.n_trials)
        block_results: List[tuple[int, np.ndarray, np.ndarray | None]] = executor.run(
            _analyse_block, work_items=list(schedule.blocks)
        )

        n_trials = yet.n_trials
        losses = np.zeros((program.n_layers, n_trials), dtype=np.float64)
        max_occ = (
            np.zeros((program.n_layers, n_trials), dtype=np.float64)
            if config.record_max_occurrence
            else None
        )
        for start, block_losses, block_max in block_results:
            size = block_losses.shape[1]
            losses[:, start : start + size] = block_losses
            if max_occ is not None and block_max is not None:
                max_occ[:, start : start + size] = block_max

        wall_seconds = wall.stop()
        shape = WorkloadShape(
            n_trials=n_trials,
            events_per_trial=max(yet.mean_events_per_trial, 1e-9),
            n_elts=max(int(round(program.mean_elts_per_layer)), 1),
            n_layers=program.n_layers,
        )
        return EngineResult(
            ylt=YearLossTable(losses, program.layer_names, max_occ),
            backend=self.name,
            wall_seconds=wall_seconds,
            workload_shape=shape,
            details={
                "n_workers": config.n_workers,
                "scheduling": str(config.scheduling),
                "oversubscription": config.oversubscription,
                "n_blocks": schedule.n_blocks,
                "fused_layers": config.fused_layers,
            },
        )

    def run_stacked(
        self,
        stack: np.ndarray,
        terms: Sequence[LayerTerms] | LayerTermsVectors,
        yet: YearEventTable,
        layer_names: Sequence[str] | None = None,
    ) -> EngineResult:
        """Price precomputed term-netted stack rows across worker processes.

        Same contract as :meth:`VectorizedEngine.run_stacked`: the stack is
        shared with the workers (fork inheritance or shared memory) and each
        worker prices every row for its block of trials through the fused
        batch kernel — the same worker task the fused program path uses, so
        results are independent of the worker count and block schedule.
        """
        config = self.config
        wall = Timer().start()
        stack = np.ascontiguousarray(stack, dtype=np.float64)
        vectors = terms if isinstance(terms, LayerTermsVectors) else LayerTermsVectors.from_terms(terms)
        context = MulticoreContext(
            event_ids=yet.event_ids,
            trial_offsets=yet.trial_offsets,
            matrices=None,
            terms=(),
            use_shortcut=config.use_aggregate_shortcut,
            record_max_occurrence=config.record_max_occurrence,
            stack=stack,
            terms_vectors=vectors,
        )
        parallel_config = ParallelConfig(
            n_workers=config.n_workers,
            policy=config.scheduling,
            oversubscription=config.oversubscription,
            start_method=config.start_method,
        )
        executor = TrialBlockExecutor(parallel_config, context=context)
        schedule = executor.schedule_for(yet.n_trials)
        block_results: List[tuple[int, np.ndarray, np.ndarray | None]] = executor.run(
            _analyse_block, work_items=list(schedule.blocks)
        )

        n_trials = yet.n_trials
        n_rows = stack.shape[0]
        losses = np.zeros((n_rows, n_trials), dtype=np.float64)
        max_occ = (
            np.zeros((n_rows, n_trials), dtype=np.float64)
            if config.record_max_occurrence
            else None
        )
        for start, block_losses, block_max in block_results:
            size = block_losses.shape[1]
            losses[:, start : start + size] = block_losses
            if max_occ is not None and block_max is not None:
                max_occ[:, start : start + size] = block_max

        wall_seconds = wall.stop()
        shape = WorkloadShape(
            n_trials=n_trials,
            events_per_trial=max(yet.mean_events_per_trial, 1e-9),
            n_elts=1,
            n_layers=n_rows,
        )
        return EngineResult(
            ylt=YearLossTable(losses, layer_names, max_occ),
            backend=self.name,
            wall_seconds=wall_seconds,
            workload_shape=shape,
            details={
                "n_workers": config.n_workers,
                "scheduling": str(config.scheduling),
                "oversubscription": config.oversubscription,
                "n_blocks": schedule.n_blocks,
                "fused_layers": True,
                "stacked": True,
            },
        )
