"""Native compiled-kernel backend.

:class:`NativeEngine` is the sixth backend under the unified ``run_plan``
scheduler interface: the same shard-loop + accumulate shape as
:class:`~repro.core.vectorized.VectorizedEngine`, but with the fused hot
path — stacked gather, occurrence terms, trial-local segment sum/max,
aggregate clip — executed by the in-repo C kernel
(``core/native/_kernels.c``), compiled on demand and called through ctypes.
The C kernel replicates NumPy's floating-point evaluation order (pairwise
summation included), so for ``dtype="float64"`` the backend is
**bit-identical** to the vectorized backend on every path the golden
conformance suite checks, and disjoint trial shards merge exactly.

``EngineConfig.dtype="float32"`` opts into a single-precision loss stack:
the random gather — the dominant memory traffic — moves half the bytes,
while every gathered value is widened to double before terms and
reductions.  Results are then bit-identical to running the float64 pipeline
on the f32-quantised stack (and agree with the full-precision run to about
1e-7 relative, the quantisation error).

Configurations the C kernel does not cover fall back to the shared NumPy
kernels *by construction* (not by approximation):

* ``use_aggregate_shortcut=False`` — the cumulative aggregate pass runs
  through :func:`~repro.core.kernels.layer_trial_losses_batch`;
* ``fused_layers=False`` — the per-layer ablation loop of the vectorized
  backend (``dtype`` only affects the stacked gather path; the reference
  ablations always compute in float64);
* no C compiler on the machine — the whole plan runs through the
  vectorized NumPy path, with a one-time warning and
  ``details["native_fallback"] = True`` (for ``float32`` the fallback
  gathers from the same quantised stack, so a machine without a compiler
  still reproduces the native tier's bits).
"""

from __future__ import annotations

import threading
import warnings

import numpy as np

from repro.core.config import EngineConfig
from repro.core.kernels import layer_trial_losses_batch
from repro.core.native.build import NativeBuildError, NativeKernels, load_kernels
from repro.core.phases import PHASE_EVENT_FETCH, PHASE_LAYER_TERMS
from repro.core.plan import ExecutionPlan, finalize_plan_result
from repro.core.results import EngineResult, PartialResult, ResultAccumulator
from repro.core.vectorized import _per_layer_losses
from repro.utils.timing import PhaseTimer, Timer

__all__ = ["NativeEngine"]

_fallback_warned = False
_fallback_lock = threading.Lock()


def _warn_fallback_once(reason: str) -> None:
    """Warn about the NumPy fallback once per process, not once per run."""
    global _fallback_warned
    with _fallback_lock:
        if _fallback_warned:
            return
        _fallback_warned = True
    warnings.warn(
        f"native backend: {reason}; running on the vectorized NumPy path "
        "(results are identical, only slower)",
        RuntimeWarning,
        stacklevel=3,
    )


class NativeEngine:
    """C fused-kernel backend with a byte-for-byte NumPy fallback."""

    name = "native"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig(backend="native")

    # ------------------------------------------------------------------ #
    # Kernel acquisition
    # ------------------------------------------------------------------ #
    def _kernels(self) -> tuple[NativeKernels | None, str | None]:
        """The loaded kernel library, or ``(None, reason)`` on fallback.

        Resolved per run (the loader memoises per content-hash), so editing
        the C source between runs rebuilds without restarting the process.
        """
        try:
            return load_kernels(), None
        except NativeBuildError as exc:
            reason = str(exc)
            _warn_fallback_once(reason)
            return None, reason

    # ------------------------------------------------------------------ #
    # Plan scheduler
    # ------------------------------------------------------------------ #
    def run_plan(self, plan: ExecutionPlan) -> EngineResult:
        """Execute an :class:`~repro.core.plan.ExecutionPlan`, one pass per shard."""
        config = self.config
        timer = PhaseTimer(enabled=config.record_phases)
        wall = Timer().start()

        fused = config.fused_layers or not plan.has_layers
        wants_kernel = fused and config.use_aggregate_shortcut
        kernels: NativeKernels | None = None
        fallback_reason: str | None = None
        if wants_kernel:
            kernels, fallback_reason = self._kernels()
        use_kernel = kernels is not None

        float32 = config.dtype == "float32" and fused
        # The NumPy paths consume a float64 stack; under dtype="float32"
        # they read the quantised values (widened back to f64) so fallback
        # and ablation runs reproduce the C tier's bits.
        numpy_stack: np.ndarray | None = None
        if fused and not use_kernel:
            numpy_stack = (
                plan.stack_f32(timer).astype(np.float64)
                if float32
                else plan.stack(timer)
            )

        shards = plan.shard_ranges(plan.n_shards or config.trial_shards)
        accumulator = ResultAccumulator.for_plan(plan)
        for trials in shards:
            if fused:
                with timer.phase(PHASE_EVENT_FETCH):
                    event_ids, offsets = plan.yet.trial_window(trials.start, trials.stop)
                if use_kernel:
                    stack = plan.stack_f32(timer) if float32 else plan.stack(timer)
                    vectors = plan.terms
                    with timer.phase(PHASE_LAYER_TERMS):
                        losses, max_occ = kernels.fused_rows(
                            stack,
                            event_ids,
                            offsets,
                            vectors.occurrence_retentions,
                            vectors.occurrence_limits,
                            vectors.aggregate_retentions,
                            vectors.aggregate_limits,
                            row_map=plan.row_map,
                            record_max_occurrence=config.record_max_occurrence,
                            n_threads=config.native_threads,
                        )
                else:
                    losses, max_occ = layer_trial_losses_batch(
                        (),
                        event_ids,
                        offsets,
                        plan.terms,
                        use_shortcut=config.use_aggregate_shortcut,
                        record_max_occurrence=config.record_max_occurrence,
                        timer=timer,
                        stack=numpy_stack,
                        row_map=plan.row_map,
                    )
            else:
                losses, max_occ = _per_layer_losses(plan, trials, config, timer)
            accumulator.add(PartialResult(trials, losses, max_occ))

        details = {
            "fused_layers": fused,
            "trial_shards": len(shards),
            "native_kernel": use_kernel,
            "dtype": config.dtype if fused else "float64",
        }
        if use_kernel:
            details["native_threads"] = (
                config.native_threads if config.native_threads > 0 else kernels.max_threads()
            )
            details["native_openmp"] = kernels.openmp
        elif wants_kernel:
            details["native_fallback"] = True
            details["native_fallback_reason"] = fallback_reason
        return finalize_plan_result(
            plan,
            self.name,
            accumulator.year_losses(),
            accumulator.max_occurrence_losses(),
            wall.stop(),
            details,
            phase_breakdown=timer.breakdown() if config.record_phases else None,
        )
