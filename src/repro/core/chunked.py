"""Chunked backend: the CPU analogue of the optimised GPU kernel.

The vectorized backend materialises an ``(n_rows, shard_events)`` gather
buffer; for the paper's full-scale workload (15 ELTs x 10^9 events) that is
120 GB — exactly the kind of working set the optimised GPU kernel avoids by
staging fixed-size chunks through shared memory.  This backend applies the
same idea on the CPU: the flattened event stream is processed in
trial-aligned chunks of about ``EngineConfig.chunk_events`` occurrences,
bounding the temporary buffer to ``n_rows x chunk_events`` doubles (and, as
a pleasant side effect, keeping it inside the last-level cache for realistic
chunk sizes).  Chunks are cut at trial boundaries only, so the streamed
result is bit-identical to the unchunked gather for any chunk size.

With ``EngineConfig.fused_layers`` (the default) the chunking happens inside
the fused multi-layer kernel: all plan rows are gathered from the stacked
``(n_rows, catalog_size)`` loss matrix chunk by chunk and the per-trial
reductions are computed as each chunk is processed.  The streaming
accumulation needs the telescoped aggregate shortcut; the
``use_aggregate_shortcut=False`` ablation falls back to the per-layer loop
(or, for synthetic stacks, to one unchunked cumulative pass).

:meth:`ChunkedEngine.run_plan` schedules the unified
:class:`~repro.core.plan.ExecutionPlan` IR in shard-loop + accumulate form
(see :mod:`repro.core.results`): each trial shard is streamed through event
chunks independently and the per-shard partials merge exactly, so
``trial_shards`` composes with ``chunk_events`` — the shard bounds what is
resident, the chunk bounds what is gathered.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import EngineConfig
from repro.core.kernels import layer_trial_losses_batch, layer_trial_losses_chunked
from repro.core.plan import ExecutionPlan, finalize_plan_result
from repro.core.results import EngineResult, PartialResult, ResultAccumulator
from repro.parallel.partitioner import TrialRange
from repro.utils.timing import PhaseTimer, Timer

__all__ = ["ChunkedEngine"]


class ChunkedEngine:
    """NumPy backend streaming each trial shard through fixed-size event chunks."""

    name = "chunked"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig(backend="chunked")

    # ------------------------------------------------------------------ #
    # Plan scheduler
    # ------------------------------------------------------------------ #
    def run_plan(self, plan: ExecutionPlan) -> EngineResult:
        """Execute an :class:`~repro.core.plan.ExecutionPlan`, streaming events."""
        config = self.config
        timer = PhaseTimer(enabled=config.record_phases)
        wall = Timer().start()

        # Fused streaming needs the telescoped shortcut; programs fall back
        # to the per-layer chunked loop without it, while a synthetic stack
        # (no per-layer matrices to fall back to) is priced by the fused
        # kernel in one unchunked cumulative pass instead.
        synthetic = not plan.has_layers
        fused = synthetic or (config.fused_layers and config.use_aggregate_shortcut)
        chunk_events = (
            config.chunk_events if (not fused or config.use_aggregate_shortcut) else None
        )

        shards = plan.shard_ranges(plan.n_shards or config.trial_shards)
        accumulator = ResultAccumulator.for_plan(plan)
        for trials in shards:
            if fused:
                event_ids, offsets = plan.yet.trial_window(trials.start, trials.stop)
                losses, max_occ = layer_trial_losses_batch(
                    (),
                    event_ids,
                    offsets,
                    plan.terms,
                    use_shortcut=config.use_aggregate_shortcut,
                    record_max_occurrence=config.record_max_occurrence,
                    timer=timer,
                    chunk_events=chunk_events,
                    stack=plan.stack(timer),
                    row_map=plan.row_map,
                )
            else:
                losses, max_occ = _per_layer_chunked_losses(plan, trials, config, timer)
            accumulator.add(PartialResult(trials, losses, max_occ))

        return finalize_plan_result(
            plan,
            self.name,
            accumulator.year_losses(),
            accumulator.max_occurrence_losses(),
            wall.stop(),
            {
                "chunk_events": chunk_events,
                "fused_layers": fused,
                "trial_shards": len(shards),
            },
            phase_breakdown=timer.breakdown() if config.record_phases else None,
        )


def _per_layer_chunked_losses(
    plan: ExecutionPlan, trials: TrialRange, config: EngineConfig, timer: PhaseTimer
) -> tuple[np.ndarray, np.ndarray | None]:
    """Per-row chunked loop: the ``fused_layers=False`` / cumulative ablation."""
    event_ids, offsets = plan.yet.trial_window(trials.start, trials.stop)
    losses = np.zeros((plan.n_rows, trials.size), dtype=np.float64)
    max_occ = (
        np.zeros((plan.n_rows, trials.size), dtype=np.float64)
        if config.record_max_occurrence
        else None
    )
    for row, layer in enumerate(plan.layers):
        year_losses, trial_max = layer_trial_losses_chunked(
            layer.loss_matrix(),
            event_ids,
            offsets,
            layer.terms,
            chunk_events=config.chunk_events,
            use_shortcut=config.use_aggregate_shortcut,
            record_max_occurrence=config.record_max_occurrence,
            timer=timer,
        )
        losses[row] = year_losses
        if max_occ is not None and trial_max is not None:
            max_occ[row] = trial_max
    return losses, max_occ
