"""Engine result containers and the mergeable partial-result algebra.

The paper scales the aggregate analysis by partitioning the Year Event Table
over trials (its map step); this module supplies the matching *reduce* step:

* :class:`EngineResult` — the monolithic output of one run (unchanged shape);
* :class:`PartialResult` — the year-loss block of one disjoint trial shard;
* :class:`ResultAccumulator` — collects partials (in any order, from any
  process) and reassembles the monolithic result *exactly*: trial shards are
  disjoint and every per-trial reduction in the kernels is trial-local, so
  merging is pure column placement — no arithmetic — and the merged output
  is bit-identical to a monolithic run of the same plan;
* :class:`MetricState` — the small mergeable summary (count / sum / sum of
  squares / max per layer row) that streaming consumers can keep without the
  blocks.

Every backend's plan scheduler is written in shard-loop + accumulate form on
top of these types, which is what makes ``EngineConfig.trial_shards``,
``plan.shard(n)`` and the out-of-core
:meth:`~repro.core.engine.AggregateRiskEngine.run_sharded` path one
mechanism rather than three.
"""

from __future__ import annotations

import io
import json
import os
import struct
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterator, List, Mapping, Sequence

import numpy as np

from repro.parallel.device import KernelEstimate, WorkloadShape
from repro.parallel.partitioner import TrialRange
from repro.utils.timing import TimingBreakdown
from repro.ylt.table import YearLossTable

__all__ = ["EngineResult", "MetricState", "PartialResult", "ResultAccumulator"]

#: Magic + version of the :meth:`PartialResult.to_bytes` wire format.
_WIRE_MAGIC = b"ARPT"
_WIRE_VERSION = 1
#: Header: magic, u8 version, u8 flags (bit 0: max-occurrence block present).
_WIRE_HEADER = struct.Struct(">4sBB")
#: Big-endian u64 — trial-range endpoints and block-length prefixes.
_WIRE_U64 = struct.Struct(">Q")


@dataclass(frozen=True)
class EngineResult:
    """Output of one aggregate-analysis run.

    Attributes
    ----------
    ylt:
        The Year Loss Table (one row per layer).
    backend:
        Name of the backend that produced the result.
    wall_seconds:
        Measured wall-clock time of the analysis stage (excludes workload
        generation; includes the backend's own data-structure preparation,
        matching the paper's "analysis stage" timing).
    workload_shape:
        Shape of the analysed workload (trials, events/trial, ELTs, layers).
    phase_breakdown:
        Per-phase timing (Fig. 6b) when phase recording was enabled.
    modeled:
        Per-layer simulated-device estimates (GPU backend only).
    modeled_seconds:
        Sum of the modelled kernel times (GPU backend only; ``None`` otherwise).
    details:
        Backend-specific extras (e.g. scheduling information).
    """

    ylt: YearLossTable
    backend: str
    wall_seconds: float
    workload_shape: WorkloadShape
    phase_breakdown: TimingBreakdown | None = None
    modeled: Sequence[KernelEstimate] = field(default_factory=tuple)
    modeled_seconds: float | None = None
    details: Mapping[str, Any] = field(default_factory=dict)

    @property
    def n_trials(self) -> int:
        """Number of trials analysed."""
        return self.ylt.n_trials

    @property
    def n_layers(self) -> int:
        """Number of layers analysed."""
        return self.ylt.n_layers

    @property
    def trials_per_second(self) -> float:
        """Throughput of the run in (layer, trial) pairs per second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.n_trials * self.n_layers / self.wall_seconds

    def for_layer_subset(
        self,
        indices: Sequence[int],
        extra_details: Mapping[str, Any] | None = None,
    ) -> "EngineResult":
        """A result restricted to the given layer rows.

        Used by :meth:`~repro.core.engine.AggregateRiskEngine.run_many` to
        split a batched multi-program run back into per-program results.  The
        wall time of the shared run is carried over unchanged (the layers
        were priced together; their costs are not separable), and the
        workload shape keeps every dimension except the layer count.
        """
        idx = [int(i) for i in indices]
        if not idx:
            raise ValueError("at least one layer index is required")
        for i in idx:
            if not 0 <= i < self.ylt.n_layers:
                raise IndexError(f"layer index {i} out of range [0, {self.ylt.n_layers})")
        max_occ = self.ylt.max_occurrence_losses
        ylt = YearLossTable(
            self.ylt.losses[idx],
            [self.ylt.layer_names[i] for i in idx],
            max_occ[idx] if max_occ is not None else None,
        )
        details = dict(self.details)
        if extra_details:
            details.update(extra_details)
        modeled = self.modeled
        modeled_seconds = self.modeled_seconds
        if len(modeled) == self.ylt.n_layers:
            modeled = tuple(modeled[i] for i in idx)
            if modeled_seconds is not None:
                modeled_seconds = float(sum(est.seconds for est in modeled))
        return replace(
            self,
            ylt=ylt,
            workload_shape=replace(self.workload_shape, n_layers=len(idx)),
            modeled=modeled,
            modeled_seconds=modeled_seconds,
            details=details,
        )

    def with_extra_details(self, **extra: Any) -> "EngineResult":
        """A copy of this result with ``extra`` merged into ``details``.

        Used by the sequential backend's plan scheduler, which delegates to
        its reference execution loop and then stamps the plan provenance
        onto the result.
        """
        details = dict(self.details)
        details.update(extra)
        return replace(self, details=details)

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        text = (
            f"backend={self.backend} layers={self.n_layers} trials={self.n_trials} "
            f"wall={self.wall_seconds:.4f}s"
        )
        if self.modeled_seconds is not None:
            text += f" modeled={self.modeled_seconds:.3f}s"
        return text


@dataclass(frozen=True)
class MetricState:
    """Mergeable per-layer summary statistics of accumulated year losses.

    The state a streaming consumer can keep when the blocks themselves are
    discarded: per layer row, the trial count, the sum and sum of squares of
    the year losses, and the largest year loss.  Merging two states over
    disjoint shards is exact for ``n_trials`` and ``max_loss`` and adds the
    (deterministically accumulated) sums; quantile metrics (PML, TVaR) need
    the actual blocks — see
    :func:`~repro.ylt.metrics.compute_risk_metrics_from_blocks`.
    """

    n_trials: int
    total: np.ndarray
    total_sq: np.ndarray
    max_loss: np.ndarray

    @classmethod
    def from_losses(cls, losses: np.ndarray) -> "MetricState":
        """The state of one ``(n_rows, n_trials)`` year-loss block."""
        block = np.asarray(losses, dtype=np.float64)
        if block.ndim != 2:
            raise ValueError(f"losses must be 2-D, got shape {block.shape}")
        if block.shape[1] == 0:
            zeros = np.zeros(block.shape[0], dtype=np.float64)
            return cls(0, zeros, zeros.copy(), zeros.copy())
        return cls(
            n_trials=int(block.shape[1]),
            total=block.sum(axis=1),
            total_sq=(block * block).sum(axis=1),
            max_loss=block.max(axis=1),
        )

    def merge(self, other: "MetricState") -> "MetricState":
        """The state of the union of two disjoint shards."""
        if self.total.shape != other.total.shape:
            raise ValueError(
                f"cannot merge metric states over {self.total.shape[0]} and "
                f"{other.total.shape[0]} rows"
            )
        return MetricState(
            n_trials=self.n_trials + other.n_trials,
            total=self.total + other.total,
            total_sq=self.total_sq + other.total_sq,
            max_loss=np.maximum(self.max_loss, other.max_loss),
        )

    def mean(self) -> np.ndarray:
        """Per-row mean year loss (the AAL) over the accumulated trials."""
        if self.n_trials == 0:
            raise ValueError("no trials accumulated")
        return self.total / self.n_trials

    def std(self, ddof: int = 1) -> np.ndarray:
        """Per-row standard deviation of the accumulated year losses."""
        if self.n_trials <= ddof:
            return np.zeros_like(self.total)
        mean = self.mean()
        variance = (self.total_sq - self.n_trials * mean * mean) / (self.n_trials - ddof)
        return np.sqrt(np.maximum(variance, 0.0))


@dataclass(frozen=True)
class PartialResult:
    """The year-loss block of one trial shard.

    Attributes
    ----------
    trials:
        The (globally indexed) trial range the block covers.
    losses:
        ``(n_rows, trials.size)`` year losses — the shard's columns of the
        monolithic Year Loss Table, bit for bit.
    max_occurrence:
        Matching per-trial maximum occurrence losses, or ``None`` when the
        run did not record them.
    details:
        Free-form provenance (e.g. which worker or process produced it).
    """

    trials: TrialRange
    losses: np.ndarray
    max_occurrence: np.ndarray | None = None
    details: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        losses = np.asarray(self.losses, dtype=np.float64)
        if losses.ndim != 2:
            raise ValueError(f"losses must be 2-D (n_rows, n_trials), got shape {losses.shape}")
        if losses.shape[1] != self.trials.size:
            raise ValueError(
                f"losses cover {losses.shape[1]} trials but the range "
                f"[{self.trials.start}, {self.trials.stop}) holds {self.trials.size}"
            )
        object.__setattr__(self, "losses", losses)
        if self.max_occurrence is not None:
            occ = np.asarray(self.max_occurrence, dtype=np.float64)
            if occ.shape != losses.shape:
                raise ValueError(
                    f"max_occurrence shape {occ.shape} does not match losses "
                    f"shape {losses.shape}"
                )
            object.__setattr__(self, "max_occurrence", occ)

    @property
    def n_rows(self) -> int:
        """Number of layer rows in the block."""
        return int(self.losses.shape[0])

    @property
    def n_trials(self) -> int:
        """Number of trials the block covers."""
        return self.trials.size

    @classmethod
    def from_result(
        cls, result: EngineResult, trials: TrialRange | None = None
    ) -> "PartialResult":
        """Wrap a shard-restricted run's :class:`EngineResult` as a partial.

        ``trials`` defaults to the plan trial range the schedulers record in
        ``result.details["plan"]["trial_range"]`` — the global coordinates of
        a plan produced by :meth:`~repro.core.plan.ExecutionPlan.shard`.
        """
        if trials is None:
            plan_details = result.details.get("plan") if result.details else None
            recorded = plan_details.get("trial_range") if plan_details else None
            if recorded is None:
                raise ValueError(
                    "result does not record a plan trial range; pass trials explicitly"
                )
            trials = TrialRange(int(recorded[0]), int(recorded[1]))
        return cls(
            trials=trials,
            losses=result.ylt.losses,
            max_occurrence=result.ylt.max_occurrence_losses,
            details={"backend": result.backend, "wall_seconds": result.wall_seconds},
        )

    # ------------------------------------------------------------------ #
    # Serialization (raw .npy members + a JSON-compatible manifest entry,
    # the idiom of repro.yet.io.save_yet_store)
    # ------------------------------------------------------------------ #
    def save(self, directory: str | os.PathLike, stem: str) -> dict:
        """Write the block's arrays under ``directory`` as raw ``.npy`` files.

        Returns the JSON-compatible manifest entry :meth:`load` needs to
        read the block back: the trial range, the member file names and
        whether a maximum-occurrence member exists.  Raw ``.npy`` members
        (not a zipped ``.npz``) keep the blocks independently readable and
        memory-mappable, mirroring the YET store layout.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        losses_name = f"{stem}.losses.npy"
        np.save(target / losses_name, self.losses)
        entry = {
            "trials": [self.trials.start, self.trials.stop],
            "losses": losses_name,
            "max_occurrence": None,
        }
        if self.max_occurrence is not None:
            occ_name = f"{stem}.max_occurrence.npy"
            np.save(target / occ_name, self.max_occurrence)
            entry["max_occurrence"] = occ_name
        return entry

    @classmethod
    def load(cls, directory: str | os.PathLike, entry: Mapping[str, Any]) -> "PartialResult":
        """Read a block previously written by :meth:`save`."""
        source = Path(directory)
        start, stop = (int(v) for v in entry["trials"])
        occ_name = entry.get("max_occurrence")
        return cls(
            trials=TrialRange(start, stop),
            losses=np.load(source / str(entry["losses"])),
            max_occurrence=np.load(source / str(occ_name)) if occ_name else None,
        )

    # ------------------------------------------------------------------ #
    # Wire format (the distributed worker protocol's payload): the same
    # ``.npy`` blocks save/load writes to disk, packed into one buffer
    # behind a fixed header so a socket peer can frame and validate it.
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Encode the block for the wire (see :meth:`from_bytes`).

        Layout: a ``b"ARPT"`` magic + version + flags header, the trial
        range as two big-endian u64s, a length-prefixed JSON provenance
        blob (:attr:`details`, JSON-compatible values only), then one
        length-prefixed ``.npy`` block per array — the identical bytes
        :meth:`save` would write to disk, so the two serializations cannot
        drift apart.
        """
        flags = 1 if self.max_occurrence is not None else 0
        out = io.BytesIO()
        out.write(_WIRE_HEADER.pack(_WIRE_MAGIC, _WIRE_VERSION, flags))
        out.write(_WIRE_U64.pack(self.trials.start))
        out.write(_WIRE_U64.pack(self.trials.stop))
        details_blob = json.dumps(dict(self.details), sort_keys=True).encode("utf-8")
        out.write(_WIRE_U64.pack(len(details_blob)))
        out.write(details_blob)
        for array in (self.losses, self.max_occurrence):
            if array is None:
                continue
            block = io.BytesIO()
            np.save(block, array)
            blob = block.getvalue()
            out.write(_WIRE_U64.pack(len(blob)))
            out.write(blob)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "PartialResult":
        """Decode a block encoded by :meth:`to_bytes`.

        Validates the magic, version, and array contract on the way in:
        the losses must decode as a 2-D float64 block whose width matches
        the framed trial range, and the maximum-occurrence block (when the
        flags say one follows) must match its shape — a truncated or
        corrupted payload fails loudly rather than producing a plausible
        but wrong block.
        """
        view = memoryview(payload)
        offset = 0

        def take(n: int, what: str) -> memoryview:
            nonlocal offset
            if offset + n > len(view):
                raise ValueError(
                    f"truncated PartialResult payload: {what} needs {n} bytes "
                    f"at offset {offset}, only {len(view) - offset} remain"
                )
            chunk = view[offset : offset + n]
            offset += n
            return chunk

        magic, version, flags = _WIRE_HEADER.unpack(take(_WIRE_HEADER.size, "header"))
        if magic != _WIRE_MAGIC:
            raise ValueError(f"bad PartialResult magic {bytes(magic)!r}")
        if version != _WIRE_VERSION:
            raise ValueError(f"unsupported PartialResult wire version {version}")
        start = _WIRE_U64.unpack(take(_WIRE_U64.size, "trial start"))[0]
        stop = _WIRE_U64.unpack(take(_WIRE_U64.size, "trial stop"))[0]
        trials = TrialRange(int(start), int(stop))

        def take_block(what: str) -> bytes:
            length = _WIRE_U64.unpack(take(_WIRE_U64.size, f"{what} length"))[0]
            return bytes(take(int(length), what))

        details = json.loads(take_block("details").decode("utf-8"))
        losses = np.load(io.BytesIO(take_block("losses block")), allow_pickle=False)
        if losses.ndim != 2 or losses.dtype != np.float64:
            raise ValueError(
                f"losses block must be 2-D float64, got shape {losses.shape} "
                f"dtype {losses.dtype}"
            )
        if losses.shape[1] != trials.size:
            raise ValueError(
                f"losses block covers {losses.shape[1]} trials but the framed "
                f"range [{trials.start}, {trials.stop}) holds {trials.size}"
            )
        max_occurrence = None
        if flags & 1:
            max_occurrence = np.load(
                io.BytesIO(take_block("max-occurrence block")), allow_pickle=False
            )
            if max_occurrence.shape != losses.shape:
                raise ValueError(
                    f"max-occurrence block shape {max_occurrence.shape} does not "
                    f"match losses shape {losses.shape}"
                )
        if offset != len(view):
            raise ValueError(
                f"PartialResult payload has {len(view) - offset} trailing bytes"
            )
        return cls(
            trials=trials,
            losses=losses,
            max_occurrence=max_occurrence,
            details=details,
        )

    def origin(self) -> str:
        """Human-readable provenance of the block, from :attr:`details`.

        Prefers the distributed worker name, then the shard/process label,
        then the producing backend; falls back to ``"unattributed"`` so the
        overlap diagnostics below always have something to say.
        """
        for key in ("worker", "source", "shard", "backend"):
            value = self.details.get(key) if self.details else None
            if value:
                return f"{key}={value}"
        return "unattributed"


class ResultAccumulator:
    """Exact reduction of disjoint trial-shard partials into one result.

    Parameters
    ----------
    n_rows:
        Number of layer rows every partial must carry.
    trials:
        The full trial domain being covered — a :class:`TrialRange`, or an
        ``int`` shorthand for ``[0, n)``.
    row_names:
        Layer names of the assembled Year Loss Table (optional).

    Partials may arrive in any order (shards complete out of order under
    dynamic scheduling, and distributed callers merge whole accumulators);
    overlapping ranges are rejected at :meth:`add` time.  Because the
    kernels' per-trial reductions are trial-local, reassembly is pure column
    placement and the merged result is bit-identical to a monolithic run —
    the invariant the sharded conformance suite pins down.
    """

    def __init__(
        self,
        n_rows: int,
        trials: TrialRange | int,
        row_names: Sequence[str] | None = None,
    ) -> None:
        if n_rows <= 0:
            raise ValueError(f"n_rows must be positive, got {n_rows}")
        self.n_rows = int(n_rows)
        self.trials = TrialRange(0, int(trials)) if isinstance(trials, int) else trials
        self.row_names: tuple[str, ...] | None = (
            tuple(str(name) for name in row_names) if row_names is not None else None
        )
        self._partials: List[PartialResult] = []
        self._wall_seconds = 0.0

    @classmethod
    def for_plan(cls, plan) -> "ResultAccumulator":
        """An accumulator spanning an :class:`~repro.core.plan.ExecutionPlan`."""
        return cls(plan.n_rows, plan.trials, row_names=plan.row_names)

    # ------------------------------------------------------------------ #
    # Accumulation
    # ------------------------------------------------------------------ #
    def add(self, partial: PartialResult) -> "ResultAccumulator":
        """Add one shard block (any order; overlaps and misfits rejected)."""
        if partial.n_rows != self.n_rows:
            raise ValueError(
                f"partial has {partial.n_rows} rows, accumulator expects {self.n_rows}"
            )
        if partial.trials.start < self.trials.start or partial.trials.stop > self.trials.stop:
            raise ValueError(
                f"partial range [{partial.trials.start}, {partial.trials.stop}) "
                f"({partial.origin()}) outside the accumulated domain "
                f"[{self.trials.start}, {self.trials.stop})"
            )
        for existing in self._partials:
            if (
                partial.trials.start < existing.trials.stop
                and existing.trials.start < partial.trials.stop
            ):
                # Name both ranges AND where each block came from: when a
                # fleet of workers disagrees about shard ownership, the pair
                # of origins is what identifies the double assignment.
                raise ValueError(
                    f"partial range [{partial.trials.start}, {partial.trials.stop}) "
                    f"({partial.origin()}) overlaps accumulated range "
                    f"[{existing.trials.start}, {existing.trials.stop}) "
                    f"({existing.origin()})"
                )
        self._partials.append(partial)
        return self

    def add_result(
        self, result: EngineResult, trials: TrialRange | None = None
    ) -> "ResultAccumulator":
        """Add a shard-restricted run's result (see :meth:`PartialResult.from_result`)."""
        self._wall_seconds += result.wall_seconds
        return self.add(PartialResult.from_result(result, trials))

    def merge(self, other: "ResultAccumulator") -> "ResultAccumulator":
        """Fold another accumulator over the same domain into this one.

        The merge is exact by construction: blocks are moved, never combined
        arithmetically, so merging accumulators built on different processes
        (or machines) yields the same bits as accumulating locally.
        """
        if other.n_rows != self.n_rows or other.trials != self.trials:
            raise ValueError(
                "can only merge accumulators over the same rows and trial domain"
            )
        for partial in other._partials:
            self.add(partial)
        self._wall_seconds += other._wall_seconds
        return self

    def extended(self, trials: TrialRange | int) -> "ResultAccumulator":
        """A new accumulator over a superdomain carrying the same blocks.

        The delta-recomputation entry point: when a YET gains appended
        trials, the cached accumulator's blocks stay valid verbatim (trial
        shards are globally indexed and per-trial reductions are
        trial-local), so extending is pure re-domiciling —
        :meth:`missing_ranges` of the extension is exactly the appended
        range, and pricing only that range then merging reproduces a cold
        monolithic run bit for bit.
        """
        domain = TrialRange(0, int(trials)) if isinstance(trials, int) else trials
        if domain.start > self.trials.start or domain.stop < self.trials.stop:
            raise ValueError(
                f"extended domain [{domain.start}, {domain.stop}) does not "
                f"contain the accumulated domain [{self.trials.start}, {self.trials.stop})"
            )
        extended = ResultAccumulator(self.n_rows, domain, row_names=self.row_names)
        for partial in self._partials:
            extended.add(partial)
        return extended

    # ------------------------------------------------------------------ #
    # Coverage
    # ------------------------------------------------------------------ #
    @property
    def partials(self) -> tuple[PartialResult, ...]:
        """The accumulated blocks in trial order (shared, not copied)."""
        return tuple(self._ordered())

    @property
    def covered_trials(self) -> int:
        """Number of trials accumulated so far."""
        return sum(partial.n_trials for partial in self._partials)

    @property
    def is_complete(self) -> bool:
        """True when the partials tile the whole trial domain."""
        return self.covered_trials == self.trials.size

    @property
    def wall_seconds(self) -> float:
        """Total wall time of the results added via :meth:`add_result`."""
        return self._wall_seconds

    def missing_ranges(self) -> List[TrialRange]:
        """The trial ranges no partial covers yet (empty when complete)."""
        gaps: List[TrialRange] = []
        cursor = self.trials.start
        for partial in sorted(self._partials, key=lambda p: p.trials.start):
            if partial.trials.start > cursor:
                gaps.append(TrialRange(cursor, partial.trials.start))
            cursor = partial.trials.stop
        if cursor < self.trials.stop:
            gaps.append(TrialRange(cursor, self.trials.stop))
        return gaps

    # ------------------------------------------------------------------ #
    # Streaming views
    # ------------------------------------------------------------------ #
    def _ordered(self) -> List[PartialResult]:
        return sorted(self._partials, key=lambda p: p.trials.start)

    def layer_blocks(self, row: int) -> Iterator[np.ndarray]:
        """One layer's year-loss blocks in trial order (views, not copies).

        Feed these to the block-wise metric constructors
        (:func:`~repro.ylt.metrics.compute_risk_metrics_from_blocks`,
        :func:`~repro.ylt.ep_curve.aep_curve_from_blocks`) without ever
        materialising the full per-trial vector in one array.
        """
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range [0, {self.n_rows})")
        for partial in self._ordered():
            yield partial.losses[row]

    def portfolio_blocks(self) -> Iterator[np.ndarray]:
        """Per-trial portfolio losses (sum over rows) in trial order."""
        for partial in self._ordered():
            yield partial.losses.sum(axis=0)

    def max_occurrence_blocks(self, row: int) -> Iterator[np.ndarray]:
        """One layer's maximum-occurrence blocks in trial order (for OEP)."""
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range [0, {self.n_rows})")
        for partial in self._ordered():
            if partial.max_occurrence is None:
                raise ValueError("an accumulated partial lacks maximum occurrence losses")
            yield partial.max_occurrence[row]

    def metric_state(self) -> MetricState:
        """The mergeable summary state of everything accumulated so far.

        Computed over the blocks in trial order, so the state is a pure
        function of the accumulated partials — independent of the order they
        were added or merged in.
        """
        state: MetricState | None = None
        for partial in self._ordered():
            block_state = MetricState.from_losses(partial.losses)
            state = block_state if state is None else state.merge(block_state)
        if state is None:
            zeros = np.zeros(self.n_rows, dtype=np.float64)
            return MetricState(0, zeros, zeros.copy(), zeros.copy())
        return state

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #
    def _require_complete(self) -> None:
        if not self.is_complete:
            gaps = ", ".join(f"[{g.start}, {g.stop})" for g in self.missing_ranges())
            raise ValueError(f"accumulator is incomplete; missing trial ranges: {gaps}")

    def year_losses(self) -> np.ndarray:
        """The merged ``(n_rows, n_trials)`` year-loss table (exact)."""
        self._require_complete()
        if len(self._partials) == 1:
            # A single block spanning the domain IS the merged table.
            return self._partials[0].losses
        losses = np.empty((self.n_rows, self.trials.size), dtype=np.float64)
        base = self.trials.start
        for partial in self._partials:
            losses[:, partial.trials.start - base : partial.trials.stop - base] = (
                partial.losses
            )
        return losses

    def max_occurrence_losses(self) -> np.ndarray | None:
        """The merged maximum-occurrence table (``None`` unless all blocks carry one)."""
        self._require_complete()
        if any(partial.max_occurrence is None for partial in self._partials):
            return None
        if len(self._partials) == 1:
            return self._partials[0].max_occurrence
        occ = np.empty((self.n_rows, self.trials.size), dtype=np.float64)
        base = self.trials.start
        for partial in self._partials:
            occ[:, partial.trials.start - base : partial.trials.stop - base] = (
                partial.max_occurrence
            )
        return occ

    def to_ylt(self) -> YearLossTable:
        """The merged Year Loss Table."""
        return YearLossTable(self.year_losses(), self.row_names, self.max_occurrence_losses())

    def finalize(
        self,
        backend: str,
        wall_seconds: float | None = None,
        workload_shape: WorkloadShape | None = None,
        details: Mapping[str, Any] | None = None,
        phase_breakdown: TimingBreakdown | None = None,
    ) -> EngineResult:
        """Assemble the merged :class:`EngineResult`.

        ``wall_seconds`` defaults to the summed wall time of the results
        added via :meth:`add_result`; ``workload_shape`` defaults to a shape
        with the merged trial count and the accumulated row count.
        """
        merged = dict(details) if details else {}
        merged.setdefault(
            "merged_shards",
            {"n_shards": len(self._partials), "n_trials": self.trials.size},
        )
        if workload_shape is None:
            workload_shape = WorkloadShape(
                n_trials=self.trials.size,
                events_per_trial=1e-9,
                n_elts=1,
                n_layers=self.n_rows,
            )
        return EngineResult(
            ylt=self.to_ylt(),
            backend=backend,
            wall_seconds=self._wall_seconds if wall_seconds is None else wall_seconds,
            workload_shape=workload_shape,
            phase_breakdown=phase_breakdown,
            details=merged,
        )
