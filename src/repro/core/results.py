"""Engine result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.parallel.device import KernelEstimate, WorkloadShape
from repro.utils.timing import TimingBreakdown
from repro.ylt.table import YearLossTable

__all__ = ["EngineResult"]


@dataclass(frozen=True)
class EngineResult:
    """Output of one aggregate-analysis run.

    Attributes
    ----------
    ylt:
        The Year Loss Table (one row per layer).
    backend:
        Name of the backend that produced the result.
    wall_seconds:
        Measured wall-clock time of the analysis stage (excludes workload
        generation; includes the backend's own data-structure preparation,
        matching the paper's "analysis stage" timing).
    workload_shape:
        Shape of the analysed workload (trials, events/trial, ELTs, layers).
    phase_breakdown:
        Per-phase timing (Fig. 6b) when phase recording was enabled.
    modeled:
        Per-layer simulated-device estimates (GPU backend only).
    modeled_seconds:
        Sum of the modelled kernel times (GPU backend only; ``None`` otherwise).
    details:
        Backend-specific extras (e.g. scheduling information).
    """

    ylt: YearLossTable
    backend: str
    wall_seconds: float
    workload_shape: WorkloadShape
    phase_breakdown: TimingBreakdown | None = None
    modeled: Sequence[KernelEstimate] = field(default_factory=tuple)
    modeled_seconds: float | None = None
    details: Mapping[str, Any] = field(default_factory=dict)

    @property
    def n_trials(self) -> int:
        """Number of trials analysed."""
        return self.ylt.n_trials

    @property
    def n_layers(self) -> int:
        """Number of layers analysed."""
        return self.ylt.n_layers

    @property
    def trials_per_second(self) -> float:
        """Throughput of the run in (layer, trial) pairs per second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.n_trials * self.n_layers / self.wall_seconds

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        text = (
            f"backend={self.backend} layers={self.n_layers} trials={self.n_trials} "
            f"wall={self.wall_seconds:.4f}s"
        )
        if self.modeled_seconds is not None:
            text += f" modeled={self.modeled_seconds:.3f}s"
        return text
