"""Engine result container."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.parallel.device import KernelEstimate, WorkloadShape
from repro.utils.timing import TimingBreakdown
from repro.ylt.table import YearLossTable

__all__ = ["EngineResult"]


@dataclass(frozen=True)
class EngineResult:
    """Output of one aggregate-analysis run.

    Attributes
    ----------
    ylt:
        The Year Loss Table (one row per layer).
    backend:
        Name of the backend that produced the result.
    wall_seconds:
        Measured wall-clock time of the analysis stage (excludes workload
        generation; includes the backend's own data-structure preparation,
        matching the paper's "analysis stage" timing).
    workload_shape:
        Shape of the analysed workload (trials, events/trial, ELTs, layers).
    phase_breakdown:
        Per-phase timing (Fig. 6b) when phase recording was enabled.
    modeled:
        Per-layer simulated-device estimates (GPU backend only).
    modeled_seconds:
        Sum of the modelled kernel times (GPU backend only; ``None`` otherwise).
    details:
        Backend-specific extras (e.g. scheduling information).
    """

    ylt: YearLossTable
    backend: str
    wall_seconds: float
    workload_shape: WorkloadShape
    phase_breakdown: TimingBreakdown | None = None
    modeled: Sequence[KernelEstimate] = field(default_factory=tuple)
    modeled_seconds: float | None = None
    details: Mapping[str, Any] = field(default_factory=dict)

    @property
    def n_trials(self) -> int:
        """Number of trials analysed."""
        return self.ylt.n_trials

    @property
    def n_layers(self) -> int:
        """Number of layers analysed."""
        return self.ylt.n_layers

    @property
    def trials_per_second(self) -> float:
        """Throughput of the run in (layer, trial) pairs per second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.n_trials * self.n_layers / self.wall_seconds

    def for_layer_subset(
        self,
        indices: Sequence[int],
        extra_details: Mapping[str, Any] | None = None,
    ) -> "EngineResult":
        """A result restricted to the given layer rows.

        Used by :meth:`~repro.core.engine.AggregateRiskEngine.run_many` to
        split a batched multi-program run back into per-program results.  The
        wall time of the shared run is carried over unchanged (the layers
        were priced together; their costs are not separable), and the
        workload shape keeps every dimension except the layer count.
        """
        idx = [int(i) for i in indices]
        if not idx:
            raise ValueError("at least one layer index is required")
        for i in idx:
            if not 0 <= i < self.ylt.n_layers:
                raise IndexError(f"layer index {i} out of range [0, {self.ylt.n_layers})")
        max_occ = self.ylt.max_occurrence_losses
        ylt = YearLossTable(
            self.ylt.losses[idx],
            [self.ylt.layer_names[i] for i in idx],
            max_occ[idx] if max_occ is not None else None,
        )
        details = dict(self.details)
        if extra_details:
            details.update(extra_details)
        modeled = self.modeled
        modeled_seconds = self.modeled_seconds
        if len(modeled) == self.ylt.n_layers:
            modeled = tuple(modeled[i] for i in idx)
            if modeled_seconds is not None:
                modeled_seconds = float(sum(est.seconds for est in modeled))
        return replace(
            self,
            ylt=ylt,
            workload_shape=replace(self.workload_shape, n_layers=len(idx)),
            modeled=modeled,
            modeled_seconds=modeled_seconds,
            details=details,
        )

    def with_extra_details(self, **extra: Any) -> "EngineResult":
        """A copy of this result with ``extra`` merged into ``details``.

        Used by the sequential backend's plan scheduler, which delegates to
        its reference execution loop and then stamps the plan provenance
        onto the result.
        """
        details = dict(self.details)
        details.update(extra)
        return replace(self, details=details)

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        text = (
            f"backend={self.backend} layers={self.n_layers} trials={self.n_trials} "
            f"wall={self.wall_seconds:.4f}s"
        )
        if self.modeled_seconds is not None:
            text += f" modeled={self.modeled_seconds:.3f}s"
        return text
