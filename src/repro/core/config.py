"""Engine configuration.

One :class:`EngineConfig` object configures every backend; irrelevant fields
are simply ignored by backends that do not use them (e.g. ``threads_per_block``
only matters to the GPU backend).  Keeping a single configuration type makes
the benchmark sweeps trivial: change one field, re-run, compare.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.parallel.device import GPUSpec
from repro.parallel.scheduling import SchedulingPolicy

__all__ = [
    "EngineConfig",
    "ELT_REPRESENTATIONS",
    "BACKEND_NAMES",
    "DTYPE_NAMES",
    "EXECUTION_MODES",
    "SHARED_MEMORY_MODES",
]

#: Lookup-structure choices for the sequential backend (Section III-B ablation).
ELT_REPRESENTATIONS: tuple[str, ...] = ("direct", "sorted", "hashed")

#: Names of the available engine backends.
BACKEND_NAMES: tuple[str, ...] = (
    "sequential",
    "vectorized",
    "chunked",
    "multicore",
    "gpu",
    "native",
)

#: Loss-stack precisions of the native backend's fused gather path.
DTYPE_NAMES: tuple[str, ...] = ("float64", "float32")

#: Facade dispatch modes.  Only ``"plan"`` remains: every workload lowers to
#: an :class:`~repro.core.plan.ExecutionPlan` executed by the backend's plan
#: scheduler.  The pre-plan ``"legacy"`` per-backend dispatch was kept one
#: release behind the plan-vs-legacy conformance suite and has now been
#: removed as scheduled; requesting it raises with a migration hint.
EXECUTION_MODES: tuple[str, ...] = ("plan",)

#: Multicore transport of the plan's read-only arrays: ``"auto"`` publishes
#: them through shared memory whenever workers cannot inherit the parent's
#: address space (any start method except ``fork``), ``"on"``/``"off"`` force
#: the choice.
SHARED_MEMORY_MODES: tuple[str, ...] = ("auto", "on", "off")


def _default_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn`` (Windows)."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@dataclass(frozen=True)
class EngineConfig:
    """Configuration shared by all engine backends.

    Attributes
    ----------
    backend:
        One of :data:`BACKEND_NAMES`.
    execution:
        ``"plan"`` (the only mode) lowers ``run`` to an
        :class:`~repro.core.plan.ExecutionPlan` and executes it through the
        backend's plan scheduler — the single code path shared with
        ``run_many``, ``run_stacked``, the portfolio sweep and the
        :class:`~repro.service.service.RiskService` request path.  The
        pre-plan ``"legacy"`` dispatch has been removed; requesting it
        raises a ``ValueError`` with a migration hint.
    shared_memory:
        How the multicore plan scheduler transports the fused loss stack and
        the YET columns to its workers: ``"auto"`` (default) attaches them
        zero-copy through :class:`~repro.parallel.shared_memory.SharedArray`
        whenever workers cannot inherit the parent's memory (``spawn`` /
        ``forkserver``), ``"on"`` forces shared memory even under ``fork``,
        ``"off"`` forces the per-worker pickling transport (the benchmark
        baseline).  A single-worker run executes in-process — no transport
        exists, so every mode behaves like ``"off"`` there.
    elt_representation:
        ELT lookup structure used by the *sequential* backend: ``"direct"``
        (direct access table, the paper's choice), ``"sorted"`` (binary
        search) or ``"hashed"`` (open-addressing hash table).
    use_aggregate_shortcut:
        Apply the aggregate terms with the telescoped shortcut (True) or with
        the paper's full cumulative pass (False).  Both produce identical year
        losses; the flag exists for the ablation benchmark.
    fused_layers:
        Price all layers of the program through the fused multi-layer batch
        kernel (one stacked ``(n_layers, catalog_size)`` gather per YET pass)
        instead of looping over the layers one at a time.  Honoured by the
        vectorized, chunked and multicore backends; the sequential and gpu
        backends always use their per-layer reference paths.  Both paths
        produce identical year losses; disabling exists for the
        fused-vs-per-layer benchmark and conformance tests.
    record_max_occurrence:
        Record each trial's largest occurrence loss (needed for OEP curves);
        small extra cost.
    record_phases:
        Record the per-phase timing breakdown (Figure 6b); adds measurement
        overhead, so benchmarks of raw speed leave it off.
    trial_shards:
        Trial-shard count of the scheduler's shard loop: every backend
        executes a plan as this many disjoint trial shards, accumulating the
        per-shard :class:`~repro.core.results.PartialResult` blocks into the
        final result.  The merged output is **bit-identical** for every shard
        count (per-trial reductions are trial-local); sharding exists to
        bound the per-pass working set (the fused gather covers one shard's
        events instead of the whole YET) and to shape the run for
        distribution.  ``1`` (the default) is the monolithic single-shard
        loop; a plan carrying its own ``n_shards`` overrides this field.
    chunk_events:
        Flattened-event chunk size of the *chunked* backend (number of event
        occurrences staged per iteration; chunks are cut at trial
        boundaries, so any chunk size produces identical results).
    replication_block:
        Replications sampled and priced per fused pass by the
        replication-batched secondary-uncertainty engine
        (:meth:`~repro.uncertainty.analysis.SecondaryUncertaintyAnalysis.run_batched`).
        ``0`` prices all replications in one pass; a positive value streams
        blocks of that many replications so the working set (the sampled
        ``replication_block * n_layers`` stack rows) stays bounded — the
        replication analogue of ``chunk_events``.  Draws are per-replication
        child streams, so the block size never changes the results.
    n_workers:
        Worker processes of the *multicore* backend (the paper's "cores").
    scheduling:
        Static or dynamic trial-block scheduling for the multicore backend.
    oversubscription:
        Work items per worker under dynamic scheduling (the paper's "threads
        per core").
    start_method:
        Multiprocessing start method for the multicore backend; validated
        against :func:`multiprocessing.get_all_start_methods` at
        construction time so a typo fails here rather than deep inside the
        executor.  Defaults to ``"fork"`` where the platform offers it and
        ``"spawn"`` elsewhere (Windows).
    threads_per_block:
        CUDA-block size of the simulated *gpu* backend.
    gpu_chunk_size:
        Chunk size (events staged in shared memory per thread) of the
        optimised GPU kernel.
    gpu_optimised:
        Run the optimised (chunked, shared-memory) kernel rather than the
        basic kernel on the simulated GPU.
    gpu_spec:
        Hardware spec of the simulated device.
    dtype:
        Precision of the loss stack the *native* backend's fused gather
        reads: ``"float64"`` (default) is bit-identical to the vectorized
        backend; ``"float32"`` stores the stack in single precision —
        halving the random-gather bandwidth that dominates the runtime —
        while still widening every gathered value to double before terms
        and reductions, so results are bit-identical to the float64
        pipeline on the f32-quantised stack (≈1e-7 relative to the full-
        precision run).  Other backends always compute in float64 and
        ignore this field.
    native_threads:
        OpenMP thread count of the *native* backend's C kernel; ``0`` (the
        default) uses the OpenMP runtime default.  The kernel's
        (row, trial) cells are independent, so the thread count never
        changes the results.
    extra:
        Free-form options for experimental backends.
    """

    backend: str = "vectorized"
    execution: str = "plan"
    shared_memory: str = "auto"
    elt_representation: str = "direct"
    use_aggregate_shortcut: bool = True
    fused_layers: bool = True
    record_max_occurrence: bool = True
    record_phases: bool = False
    trial_shards: int = 1
    chunk_events: int = 8192
    replication_block: int = 0
    n_workers: int = 1
    scheduling: SchedulingPolicy = SchedulingPolicy.STATIC
    oversubscription: int = 1
    start_method: str = field(default_factory=_default_start_method)
    threads_per_block: int = 256
    gpu_chunk_size: int = 4
    gpu_optimised: bool = True
    gpu_spec: GPUSpec = field(default_factory=GPUSpec)
    dtype: str = "float64"
    native_threads: int = 0
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )
        if self.execution not in EXECUTION_MODES:
            if self.execution == "legacy":
                raise ValueError(
                    "execution='legacy' has been removed: the per-backend "
                    "pre-plan dispatch was deleted after its deprecation "
                    "window.  Drop the execution override — the plan "
                    "pipeline (the default) is bit-identical to the old "
                    "dispatch, as guaranteed by the retired plan-vs-legacy "
                    "conformance suite."
                )
            raise ValueError(
                f"unknown execution mode {self.execution!r}; expected one of {EXECUTION_MODES}"
            )
        if self.shared_memory not in SHARED_MEMORY_MODES:
            raise ValueError(
                f"unknown shared_memory mode {self.shared_memory!r}; "
                f"expected one of {SHARED_MEMORY_MODES}"
            )
        if self.elt_representation not in ELT_REPRESENTATIONS:
            raise ValueError(
                f"unknown ELT representation {self.elt_representation!r}; "
                f"expected one of {ELT_REPRESENTATIONS}"
            )
        if self.trial_shards <= 0:
            raise ValueError(f"trial_shards must be positive, got {self.trial_shards}")
        if self.chunk_events <= 0:
            raise ValueError(f"chunk_events must be positive, got {self.chunk_events}")
        if self.replication_block < 0:
            raise ValueError(
                f"replication_block must be non-negative, got {self.replication_block}"
            )
        if self.n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {self.n_workers}")
        if self.oversubscription <= 0:
            raise ValueError(f"oversubscription must be positive, got {self.oversubscription}")
        available_start_methods = multiprocessing.get_all_start_methods()
        if self.start_method not in available_start_methods:
            raise ValueError(
                f"unknown start_method {self.start_method!r}; this platform "
                f"supports {tuple(available_start_methods)}"
            )
        if self.threads_per_block <= 0:
            raise ValueError(f"threads_per_block must be positive, got {self.threads_per_block}")
        if self.gpu_chunk_size <= 0:
            raise ValueError(f"gpu_chunk_size must be positive, got {self.gpu_chunk_size}")
        if self.dtype not in DTYPE_NAMES:
            raise ValueError(
                f"unknown dtype {self.dtype!r}; expected one of {DTYPE_NAMES}"
            )
        if self.native_threads < 0:
            raise ValueError(
                f"native_threads must be non-negative, got {self.native_threads}"
            )

    def with_backend(self, backend: str, **overrides: Any) -> "EngineConfig":
        """A copy of this config with a different backend (and optional overrides)."""
        return replace(self, backend=backend, **overrides)

    def replace(self, **overrides: Any) -> "EngineConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)
