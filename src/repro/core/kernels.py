"""Vectorised aggregate-analysis kernels.

These functions are the NumPy translation of the per-trial body of the
paper's basic algorithm (lines 3–19) operating on *all* trials of a Year
Event Table at once (or on a contiguous chunk of its flattened events).  They
are shared by the vectorized, chunked, multicore and simulated-GPU backends —
the backends differ only in *how* they partition the work, not in the maths.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.phases import (
    PHASE_ELT_LOOKUP,
    PHASE_EVENT_FETCH,
    PHASE_FINANCIAL_TERMS,
    PHASE_LAYER_TERMS,
)
from repro.elt.combined import LayerLossMatrix
from repro.financial.policies import (
    aggregate_terms_shortcut,
    apply_aggregate_terms_cumulative,
    apply_financial_terms_matrix,
    apply_occurrence_terms,
)
from repro.financial.terms import LayerTerms
from repro.utils.arrays import segment_max
from repro.utils.timing import PhaseTimer

__all__ = ["combined_event_losses", "layer_trial_losses", "layer_trial_losses_chunked"]


def combined_event_losses(
    matrix: LayerLossMatrix,
    event_ids: np.ndarray,
    timer: PhaseTimer | None = None,
) -> np.ndarray:
    """Per-event losses combined across a layer's ELTs, net of financial terms.

    This covers lines 3–9 of the basic algorithm: gather every event's loss
    from every ELT (the random direct-access-table lookups), apply the per-ELT
    financial terms ``I`` and sum across ELTs.

    Parameters
    ----------
    matrix:
        The layer's dense loss matrix.
    event_ids:
        Flattened event ids (any number of trials' events concatenated).
    timer:
        Optional phase timer (``elt_lookup`` / ``financial_terms`` phases).
    """
    timer = timer if timer is not None else PhaseTimer(enabled=False)
    with timer.phase(PHASE_ELT_LOOKUP):
        gathered = matrix.gather(event_ids)
    with timer.phase(PHASE_FINANCIAL_TERMS):
        net = apply_financial_terms_matrix(
            gathered, matrix.retentions, matrix.limits, matrix.shares, matrix.fx_rates
        )
        combined = net.sum(axis=0)
    return combined


def layer_trial_losses(
    matrix: LayerLossMatrix,
    event_ids: np.ndarray,
    trial_offsets: np.ndarray,
    terms: LayerTerms,
    use_shortcut: bool = True,
    record_max_occurrence: bool = True,
    timer: PhaseTimer | None = None,
) -> Tuple[np.ndarray, np.ndarray | None]:
    """Year losses (and optional per-trial maximum occurrence losses) of one layer.

    The full vectorised pipeline: event fetch -> ELT lookup -> financial terms
    -> occurrence terms -> aggregate terms, over every trial delimited by
    ``trial_offsets``.

    Returns
    -------
    (year_losses, max_occurrence_losses):
        ``year_losses`` has one entry per trial; ``max_occurrence_losses`` is
        ``None`` unless ``record_max_occurrence`` is set.
    """
    timer = timer if timer is not None else PhaseTimer(enabled=False)
    with timer.phase(PHASE_EVENT_FETCH):
        # The YET is already resident; "fetching" is materialising the flat
        # event-id view the gathers will consume (a contiguous copy mirrors
        # the engine reading the trial's events from the in-memory table).
        ids = np.ascontiguousarray(event_ids, dtype=np.int64)

    combined = combined_event_losses(matrix, ids, timer)

    with timer.phase(PHASE_LAYER_TERMS):
        occurrence = apply_occurrence_terms(combined, terms)
        if use_shortcut:
            year_losses = aggregate_terms_shortcut(occurrence, trial_offsets, terms)
        else:
            year_losses = apply_aggregate_terms_cumulative(occurrence, trial_offsets, terms)
        max_occurrence = (
            segment_max(occurrence, trial_offsets) if record_max_occurrence else None
        )
    return year_losses, max_occurrence


def layer_trial_losses_chunked(
    matrix: LayerLossMatrix,
    event_ids: np.ndarray,
    trial_offsets: np.ndarray,
    terms: LayerTerms,
    chunk_events: int,
    use_shortcut: bool = True,
    record_max_occurrence: bool = True,
    timer: PhaseTimer | None = None,
) -> Tuple[np.ndarray, np.ndarray | None]:
    """Chunked variant of :func:`layer_trial_losses`.

    The flattened event stream is processed in chunks of ``chunk_events``
    occurrences so that the ``(n_elts, chunk_events)`` gather buffer — the
    working set — stays bounded regardless of the YET size.  This is the CPU
    analogue of the optimised GPU kernel's shared-memory staging: the combined
    per-event losses are accumulated into a single 1-D array and the layer
    terms are applied once at the end.
    """
    if chunk_events <= 0:
        raise ValueError(f"chunk_events must be positive, got {chunk_events}")
    timer = timer if timer is not None else PhaseTimer(enabled=False)

    with timer.phase(PHASE_EVENT_FETCH):
        ids = np.ascontiguousarray(event_ids, dtype=np.int64)
    total = ids.shape[0]
    combined = np.empty(total, dtype=np.float64)

    for start in range(0, total, int(chunk_events)):
        stop = min(start + int(chunk_events), total)
        chunk_ids = ids[start:stop]
        with timer.phase(PHASE_ELT_LOOKUP):
            gathered = matrix.gather(chunk_ids)
        with timer.phase(PHASE_FINANCIAL_TERMS):
            net = apply_financial_terms_matrix(
                gathered, matrix.retentions, matrix.limits, matrix.shares, matrix.fx_rates
            )
            combined[start:stop] = net.sum(axis=0)

    with timer.phase(PHASE_LAYER_TERMS):
        occurrence = apply_occurrence_terms(combined, terms)
        if use_shortcut:
            year_losses = aggregate_terms_shortcut(occurrence, trial_offsets, terms)
        else:
            year_losses = apply_aggregate_terms_cumulative(occurrence, trial_offsets, terms)
        max_occurrence = (
            segment_max(occurrence, trial_offsets) if record_max_occurrence else None
        )
    return year_losses, max_occurrence
