"""Vectorised aggregate-analysis kernels.

These functions are the NumPy translation of the per-trial body of the
paper's basic algorithm (lines 3–19) operating on *all* trials of a Year
Event Table at once (or on a contiguous chunk of its flattened events).  They
are shared by the vectorized, chunked, multicore and simulated-GPU backends —
the backends differ only in *how* they partition the work, not in the maths.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.phases import (
    PHASE_ELT_LOOKUP,
    PHASE_EVENT_FETCH,
    PHASE_FINANCIAL_TERMS,
    PHASE_LAYER_TERMS,
)
from repro.elt.combined import LayerLossMatrix
from repro.financial.policies import (
    aggregate_terms_shortcut,
    aggregate_terms_shortcut_batch,
    apply_aggregate_terms_cumulative,
    apply_aggregate_terms_cumulative_batch,
    apply_financial_terms_matrix,
    apply_occurrence_terms,
    apply_occurrence_terms_batch,
    clip_aggregate_totals,
)
from repro.financial.terms import LayerTerms, LayerTermsVectors
from repro.utils.arrays import (
    segment_max,
    segment_max_2d,
    segment_sum_2d,
    validate_offsets,
)
from repro.utils.timing import PhaseTimer

__all__ = [
    "combined_event_losses",
    "layer_trial_losses",
    "layer_trial_losses_chunked",
    "build_layer_loss_stack",
    "layer_trial_losses_batch",
    "replication_portfolio_losses",
]


def combined_event_losses(
    matrix: LayerLossMatrix,
    event_ids: np.ndarray,
    timer: PhaseTimer | None = None,
) -> np.ndarray:
    """Per-event losses combined across a layer's ELTs, net of financial terms.

    This covers lines 3–9 of the basic algorithm: gather every event's loss
    from every ELT (the random direct-access-table lookups), apply the per-ELT
    financial terms ``I`` and sum across ELTs.

    Parameters
    ----------
    matrix:
        The layer's dense loss matrix.
    event_ids:
        Flattened event ids (any number of trials' events concatenated).
    timer:
        Optional phase timer (``elt_lookup`` / ``financial_terms`` phases).
    """
    timer = timer if timer is not None else PhaseTimer(enabled=False)
    with timer.phase(PHASE_ELT_LOOKUP):
        gathered = matrix.gather(event_ids)
    with timer.phase(PHASE_FINANCIAL_TERMS):
        net = apply_financial_terms_matrix(
            gathered, matrix.retentions, matrix.limits, matrix.shares, matrix.fx_rates
        )
        combined = net.sum(axis=0)
    return combined


def layer_trial_losses(
    matrix: LayerLossMatrix,
    event_ids: np.ndarray,
    trial_offsets: np.ndarray,
    terms: LayerTerms,
    use_shortcut: bool = True,
    record_max_occurrence: bool = True,
    timer: PhaseTimer | None = None,
) -> Tuple[np.ndarray, np.ndarray | None]:
    """Year losses (and optional per-trial maximum occurrence losses) of one layer.

    The full vectorised pipeline: event fetch -> ELT lookup -> financial terms
    -> occurrence terms -> aggregate terms, over every trial delimited by
    ``trial_offsets``.

    Returns
    -------
    (year_losses, max_occurrence_losses):
        ``year_losses`` has one entry per trial; ``max_occurrence_losses`` is
        ``None`` unless ``record_max_occurrence`` is set.
    """
    timer = timer if timer is not None else PhaseTimer(enabled=False)
    with timer.phase(PHASE_EVENT_FETCH):
        # The YET is already resident; "fetching" is materialising the flat
        # event-id view the gathers will consume (a contiguous copy mirrors
        # the engine reading the trial's events from the in-memory table).
        ids = np.ascontiguousarray(event_ids, dtype=np.int64)

    combined = combined_event_losses(matrix, ids, timer)

    with timer.phase(PHASE_LAYER_TERMS):
        occurrence = apply_occurrence_terms(combined, terms)
        if use_shortcut:
            year_losses = aggregate_terms_shortcut(occurrence, trial_offsets, terms)
        else:
            year_losses = apply_aggregate_terms_cumulative(occurrence, trial_offsets, terms)
        max_occurrence = (
            segment_max(occurrence, trial_offsets) if record_max_occurrence else None
        )
    return year_losses, max_occurrence


def replication_portfolio_losses(year_losses: np.ndarray, n_layers: int) -> np.ndarray:
    """Per-replication portfolio year losses from fused replication rows.

    The replication-batched uncertainty engine prices ``R`` sampled program
    realisations as ``R * n_layers`` fused rows (replication-major).  This
    reduces that ``(R * n_layers, n_trials)`` year-loss matrix to the
    ``(R, n_trials)`` per-replication portfolio losses, summing each
    replication's layer block with exactly the reduction
    :meth:`~repro.ylt.table.YearLossTable.portfolio_losses` applies to a
    single program's YLT — so a batched replication reproduces the replay
    loop's portfolio losses bit for bit.
    """
    losses = np.asarray(year_losses, dtype=np.float64)
    if losses.ndim != 2:
        raise ValueError(f"year_losses must be 2-D, got shape {losses.shape}")
    if n_layers <= 0:
        raise ValueError(f"n_layers must be positive, got {n_layers}")
    if losses.shape[0] % n_layers:
        raise ValueError(
            f"{losses.shape[0]} fused rows do not divide into layers of {n_layers}"
        )
    n_replications = losses.shape[0] // n_layers
    # Reducing the middle axis of the (R, n_layers, n_trials) view adds the
    # layer rows sequentially per replication — the same accumulation order
    # as portfolio_losses' sum over axis 0 of each (n_layers, n_trials) block.
    losses = np.ascontiguousarray(losses)
    return losses.reshape(n_replications, n_layers, -1).sum(axis=1)


def build_layer_loss_stack(
    matrices: Sequence[LayerLossMatrix],
    timer: PhaseTimer | None = None,
) -> np.ndarray:
    """Stack every layer's term-netted dense losses into one matrix.

    Row ``i`` of the returned ``(n_layers, catalog_size)`` float64 matrix is
    layer ``i``'s per-catalog-entry loss net of its ELTs' financial terms,
    already combined across the layer's ELTs
    (:meth:`~repro.elt.combined.LayerLossMatrix.combined_net_losses`).  The
    financial terms depend only on the dense loss values, never on the trial,
    so applying them to the catalog axis once — instead of to every gathered
    occurrence, layer by layer — is what makes the fused multi-layer path
    cheap: the per-trial work left is a single ``(n_layers, n_events)``
    gather plus the layer terms.
    """
    if not matrices:
        raise ValueError("at least one layer loss matrix is required")
    catalog_sizes = {matrix.catalog_size for matrix in matrices}
    if len(catalog_sizes) != 1:
        raise ValueError(
            f"all layers must share one catalog size, got {sorted(catalog_sizes)}"
        )
    timer = timer if timer is not None else PhaseTimer(enabled=False)
    catalog_size = catalog_sizes.pop()
    stack = np.empty((len(matrices), catalog_size), dtype=np.float64)
    with timer.phase(PHASE_FINANCIAL_TERMS):
        for row, matrix in enumerate(matrices):
            stack[row] = matrix.combined_net_losses()
    return stack


def layer_trial_losses_batch(
    matrices: Sequence[LayerLossMatrix],
    event_ids: np.ndarray,
    trial_offsets: np.ndarray,
    terms: Sequence[LayerTerms] | LayerTermsVectors,
    use_shortcut: bool = True,
    record_max_occurrence: bool = True,
    timer: PhaseTimer | None = None,
    chunk_events: int | None = None,
    stack: np.ndarray | None = None,
    row_map: np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray | None]:
    """Year losses of *all* layers in one fused pass over the YET.

    Instead of re-gathering the event-id array against each layer's dense
    loss matrix separately (the per-layer loop of :func:`layer_trial_losses`),
    the layers' term-netted dense losses are stacked into one
    ``(n_layers, catalog_size)`` matrix, the whole YET is gathered from it
    with a single fancy-indexing operation, and the occurrence/aggregate
    terms are applied as broadcast expressions over the resulting
    ``(n_layers, n_events)`` matrix.

    Parameters
    ----------
    matrices:
        One dense loss matrix per layer (ignored when ``stack`` is given).
    terms:
        Per-layer :class:`LayerTerms` (or an already-stacked
        :class:`LayerTermsVectors`).
    chunk_events:
        When given, the stream is processed in trial-aligned chunks of about
        this many event occurrences, so the working set stays bounded at
        roughly ``(n_layers, chunk_events)`` doubles plus the outputs (the
        fused analogue of :func:`layer_trial_losses_chunked`).  Chunks are
        cut at trial boundaries only — no trial ever straddles a chunk — so
        every per-trial reduction happens inside one chunk and the streamed
        result is *bit-identical* to the unchunked gather for any chunk size
        (a single trial larger than ``chunk_events`` is processed whole).
        Only the shortcut aggregate pass supports streaming
        (``use_shortcut=False`` with ``chunk_events`` raises).
    stack:
        Optional precomputed :func:`build_layer_loss_stack` result; pass it
        when the same layers are priced repeatedly (or when the stack is
        shared with worker processes).
    row_map:
        Optional ``(n_layers,)`` int array mapping each output row to a row
        of a *deduplicated* stack: when many layers share one term-netted
        loss row (candidate-term variants of the same exposure), the stack
        holds each distinct row once and ``row_map`` expands the gathered
        values back to per-layer rows before the layer terms are applied.
        The expansion copies identical floats, so results are bit-identical
        to gathering from the fully expanded stack.  Without ``row_map`` the
        stack must carry one row per layer.

    Returns
    -------
    (year_losses, max_occurrence_losses):
        ``year_losses`` has shape ``(n_layers, n_trials)``;
        ``max_occurrence_losses`` matches it, or is ``None`` unless
        ``record_max_occurrence`` is set.
    """
    timer = timer if timer is not None else PhaseTimer(enabled=False)
    vectors = terms if isinstance(terms, LayerTermsVectors) else LayerTermsVectors.from_terms(terms)
    if stack is None:
        stack = build_layer_loss_stack(matrices, timer)
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 2:
        raise ValueError(f"stack must be 2-D (n_layers, catalog_size), got shape {stack.shape}")
    if row_map is not None:
        row_map = np.ascontiguousarray(row_map, dtype=np.int64)
        if row_map.ndim != 1 or row_map.shape[0] != vectors.n_layers:
            raise ValueError(
                f"row_map must have one entry per layer ({vectors.n_layers}), "
                f"got shape {row_map.shape}"
            )
        if row_map.size and (row_map.min() < 0 or row_map.max() >= stack.shape[0]):
            raise IndexError("row_map indices out of range of the stack")
    elif stack.shape[0] != vectors.n_layers:
        raise ValueError(
            f"stack has {stack.shape[0]} layers but terms describe {vectors.n_layers}"
        )
    catalog_size = stack.shape[1]

    with timer.phase(PHASE_EVENT_FETCH):
        ids = np.ascontiguousarray(event_ids, dtype=np.int64)
    if ids.size and (ids.min() < 0 or ids.max() >= catalog_size):
        raise IndexError("event ids out of range of the catalog")

    if chunk_events is not None:
        if chunk_events <= 0:
            raise ValueError(f"chunk_events must be positive, got {chunk_events}")
        if not use_shortcut:
            raise ValueError(
                "the cumulative aggregate pass needs whole trials in memory; "
                "chunk_events requires use_shortcut=True"
            )
        return _layer_trial_losses_batch_streamed(
            stack, ids, trial_offsets, vectors, int(chunk_events),
            record_max_occurrence, timer, row_map=row_map,
        )

    with timer.phase(PHASE_ELT_LOOKUP):
        combined = stack[:, ids]
        if row_map is not None:
            # Expand the deduplicated gather to one row per layer; the copy
            # reproduces the expanded-stack gather bit for bit.
            combined = combined[row_map]

    with timer.phase(PHASE_LAYER_TERMS):
        # The gather is a fresh scratch buffer, so the occurrence terms can
        # transform it in place — peak memory stays at one full-size matrix.
        occurrence = apply_occurrence_terms_batch(combined, vectors, out=combined)
        if use_shortcut:
            year_losses = aggregate_terms_shortcut_batch(occurrence, trial_offsets, vectors)
        else:
            year_losses = apply_aggregate_terms_cumulative_batch(
                occurrence, trial_offsets, vectors
            )
        max_occurrence = (
            segment_max_2d(occurrence, trial_offsets) if record_max_occurrence else None
        )
    return year_losses, max_occurrence


def _layer_trial_losses_batch_streamed(
    stack: np.ndarray,
    ids: np.ndarray,
    trial_offsets: np.ndarray,
    vectors: LayerTermsVectors,
    chunk_events: int,
    record_max_occurrence: bool,
    timer: PhaseTimer,
    row_map: np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray | None]:
    """Bounded-memory fused pass over trial-aligned event chunks.

    Each chunk is the longest run of *whole* trials whose events fit in
    ``chunk_events`` (always at least one trial, so an oversized trial is
    processed whole rather than split).  Because no trial straddles a chunk,
    every per-trial reduction happens entirely inside one chunk and the
    streamed result is bit-identical to the unchunked gather — the property
    that lets trial shards of the chunked backend merge exactly, regardless
    of where the shard (and hence the chunk grid) boundaries fall.
    """
    offsets = validate_offsets(np.asarray(trial_offsets), ids.shape[0])
    n_layers = vectors.n_layers
    n_trials = offsets.size - 1
    totals = np.zeros((n_layers, n_trials), dtype=np.float64)
    max_occurrence = (
        np.zeros((n_layers, n_trials), dtype=np.float64)
        if record_max_occurrence
        else None
    )

    t0 = 0
    while t0 < n_trials:
        # Furthest trial whose last event still fits in the chunk budget
        # (but at least one trial, to guarantee progress).
        t1 = int(np.searchsorted(offsets, offsets[t0] + chunk_events, side="right")) - 1
        t1 = min(max(t1, t0 + 1), n_trials)
        start, stop = int(offsets[t0]), int(offsets[t1])
        with timer.phase(PHASE_ELT_LOOKUP):
            gathered = stack[:, ids[start:stop]]
            if row_map is not None:
                gathered = gathered[row_map]
        with timer.phase(PHASE_LAYER_TERMS):
            occurrence = apply_occurrence_terms_batch(gathered, vectors, out=gathered)
            local = offsets[t0 : t1 + 1] - start
            totals[:, t0:t1] = segment_sum_2d(occurrence, local)
            if max_occurrence is not None:
                max_occurrence[:, t0:t1] = segment_max_2d(occurrence, local)
        t0 = t1

    with timer.phase(PHASE_LAYER_TERMS):
        year_losses = clip_aggregate_totals(totals, vectors)
    return year_losses, max_occurrence


def layer_trial_losses_chunked(
    matrix: LayerLossMatrix,
    event_ids: np.ndarray,
    trial_offsets: np.ndarray,
    terms: LayerTerms,
    chunk_events: int,
    use_shortcut: bool = True,
    record_max_occurrence: bool = True,
    timer: PhaseTimer | None = None,
) -> Tuple[np.ndarray, np.ndarray | None]:
    """Chunked variant of :func:`layer_trial_losses`.

    The flattened event stream is processed in chunks of ``chunk_events``
    occurrences so that the ``(n_elts, chunk_events)`` gather buffer — the
    working set — stays bounded regardless of the YET size.  This is the CPU
    analogue of the optimised GPU kernel's shared-memory staging: the combined
    per-event losses are accumulated into a single 1-D array and the layer
    terms are applied once at the end.
    """
    if chunk_events <= 0:
        raise ValueError(f"chunk_events must be positive, got {chunk_events}")
    timer = timer if timer is not None else PhaseTimer(enabled=False)

    with timer.phase(PHASE_EVENT_FETCH):
        ids = np.ascontiguousarray(event_ids, dtype=np.int64)
    total = ids.shape[0]
    combined = np.empty(total, dtype=np.float64)

    for start in range(0, total, int(chunk_events)):
        stop = min(start + int(chunk_events), total)
        chunk_ids = ids[start:stop]
        with timer.phase(PHASE_ELT_LOOKUP):
            gathered = matrix.gather(chunk_ids)
        with timer.phase(PHASE_FINANCIAL_TERMS):
            net = apply_financial_terms_matrix(
                gathered, matrix.retentions, matrix.limits, matrix.shares, matrix.fx_rates
            )
            combined[start:stop] = net.sum(axis=0)

    with timer.phase(PHASE_LAYER_TERMS):
        occurrence = apply_occurrence_terms(combined, terms)
        if use_shortcut:
            year_losses = aggregate_terms_shortcut(occurrence, trial_offsets, terms)
        else:
            year_losses = apply_aggregate_terms_cumulative(occurrence, trial_offsets, terms)
        max_occurrence = (
            segment_max(occurrence, trial_offsets) if record_max_occurrence else None
        )
    return year_losses, max_occurrence
