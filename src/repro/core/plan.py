"""The ExecutionPlan IR: one workload description for every backend.

The paper's central observation is that aggregate risk analysis is *one*
data-parallel computation — trials x layers over a Year Event Table.  The
plan layer turns that observation into architecture: every engine workload
(``run``, ``run_many``, ``run_stacked``, replication blocks, portfolio
sweeps) lowers to the same intermediate representation, an
:class:`ExecutionPlan` describing tiles over

* the **trial axis** — contiguous trial blocks of the YET, and
* the **row axis** — stacked term-netted layer loss rows (the layout of
  :func:`~repro.core.kernels.build_layer_loss_stack`).

Backends *schedule* plans instead of reimplementing workloads: the
vectorized backend executes the single full-size tile, the chunked backend
streams the trial-flattened events of that tile, the multicore backend maps
trial blocks over worker processes (publishing the stack and YET columns
through shared memory so workers attach zero-copy), the simulated GPU
launches one ``threads_per_block x 1`` tile per simulated CUDA block, and
the sequential reference iterates the plan's source layers.  Scaling
features — row deduplication, sharding, streaming — therefore land once, in
the plan, and apply to every entry point.

Lowering is the job of :class:`PlanBuilder`:

``from_program``
    one program -> one segment of rows, one row per layer;
``from_programs``
    many programs -> one concatenated plan with per-program segments, and
    (by default) *deduplicated* rows: candidate-term variants of the same
    exposure share their term-netted loss row, so the stacked gather reads
    each distinct row once regardless of how many variants reference it;
``from_stack``
    precomputed rows (e.g. the sampled replications of the secondary-
    uncertainty engine) -> a synthetic plan with no source layers.

:meth:`ExecutionPlan.split_result` maps a combined engine result back to one
:class:`~repro.core.results.EngineResult` per segment — the inverse of the
concatenation performed by ``from_programs``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Sequence

import numpy as np

from repro.core.kernels import build_layer_loss_stack
from repro.core.results import EngineResult
from repro.financial.terms import LayerTerms, LayerTermsVectors
from repro.parallel.device import WorkloadShape
from repro.parallel.partitioner import Tile, TrialRange, shard_partition, tile_partition
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.utils.timing import PhaseTimer
from repro.yet.table import YearEventTable
from repro.ylt.table import YearLossTable

__all__ = ["ExecutionPlan", "PlanBuilder", "PlanSegment", "finalize_plan_result"]


@dataclass(frozen=True)
class PlanSegment:
    """A contiguous block of plan rows belonging to one logical result.

    ``run`` lowers to a single segment spanning every row; ``run_many`` and
    the portfolio sweep produce one segment per input program.  ``metadata``
    is merged into the split result's ``details`` (e.g. the ``"batch"``
    entry ``run_many`` has always recorded).
    """

    name: str
    start: int
    stop: int
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid segment [{self.start}, {self.stop})")

    @property
    def n_rows(self) -> int:
        """Number of plan rows in the segment."""
        return self.stop - self.start


class ExecutionPlan:
    """IR for one engine workload: stacked loss rows x trials of one YET.

    Parameters
    ----------
    yet:
        The Year Event Table every row is priced over.
    terms:
        Per-row layer terms (``n_rows`` entries).
    layers:
        The source :class:`~repro.portfolio.layer.Layer` objects, one per
        row, when the plan was lowered from programs; ``None`` for synthetic
        stacks (``run_stacked``).  Backends without a fused path (sequential,
        gpu) and the ``fused_layers=False`` ablation need them.
    stack:
        Optional precomputed ``(n_unique_rows, catalog_size)`` stack.  When
        absent it is built lazily (and cached) from the unique layers'
        matrices.
    row_map:
        Optional ``(n_rows,)`` mapping of plan rows to unique stack rows
        (row deduplication); ``None`` means the identity mapping.
    row_names:
        Per-row display names for the Year Loss Table.
    segments:
        How the combined result splits back into logical results; defaults
        to one segment spanning every row.
    source:
        Provenance tag recorded in result details (``"program"``,
        ``"batch"``, ``"stacked"``, ``"sweep"``).
    mean_elts_per_row:
        Average ELT count per row, carried into the result's workload shape.
    trial_range:
        Optional restriction of the plan to a contiguous, non-empty range of
        the YET's trials — the shard-restricted form emitted by
        :meth:`shard`.  ``None`` (the default) covers every trial.  A
        restricted plan executes like any other; its result simply carries
        the shard's columns (and records the range in
        ``details["plan"]["trial_range"]`` so a
        :class:`~repro.core.results.ResultAccumulator` can place them).
    n_shards:
        Shard count the schedulers should execute this plan with (``0`` =
        defer to ``EngineConfig.trial_shards``).  Shard-restricted children
        are created with ``n_shards=1`` so they never re-shard themselves.
    """

    def __init__(
        self,
        yet: YearEventTable,
        terms: Sequence[LayerTerms] | LayerTermsVectors,
        *,
        layers: Sequence[Layer] | None = None,
        stack: np.ndarray | None = None,
        row_map: np.ndarray | None = None,
        row_names: Sequence[str] | None = None,
        segments: Sequence[PlanSegment] | None = None,
        source: str = "program",
        mean_elts_per_row: float = 1.0,
        trial_range: TrialRange | None = None,
        n_shards: int = 0,
    ) -> None:
        self.yet = yet
        self.terms = (
            terms if isinstance(terms, LayerTermsVectors) else LayerTermsVectors.from_terms(terms)
        )
        n_rows = self.terms.n_layers
        if n_rows == 0:
            raise ValueError("a plan needs at least one row")

        self.layers: tuple[Layer, ...] | None = tuple(layers) if layers is not None else None
        if self.layers is not None and len(self.layers) != n_rows:
            raise ValueError(
                f"{len(self.layers)} source layers do not match {n_rows} plan rows"
            )

        if row_map is not None:
            row_map = np.ascontiguousarray(row_map, dtype=np.int64)
            if row_map.shape != (n_rows,):
                raise ValueError(
                    f"row_map shape {row_map.shape} does not match {n_rows} plan rows"
                )
            if stack is None and not np.array_equal(
                np.unique(row_map), np.arange(int(row_map.max(initial=-1)) + 1)
            ):
                # Without a precomputed stack the unique rows are built from
                # first-occurrence layers, so the mapping must densely cover
                # 0..k-1 (PlanBuilder always produces such maps); a sparse
                # map would leave unbuildable holes in the stack.
                raise ValueError(
                    "row_map must densely cover 0..k-1 when the stack is "
                    "built from source layers"
                )
        self.row_map = row_map

        self._stack: np.ndarray | None = None
        if stack is not None:
            stack = np.ascontiguousarray(stack, dtype=np.float64)
            if stack.ndim != 2:
                raise ValueError(f"stack must be 2-D, got shape {stack.shape}")
            expected = n_rows if row_map is None else int(row_map.max(initial=-1)) + 1
            if stack.shape[0] < expected:
                raise ValueError(
                    f"stack has {stack.shape[0]} rows but the plan addresses {expected}"
                )
            self._stack = stack
        elif self.layers is None:
            raise ValueError("a plan needs either source layers or a precomputed stack")

        self.row_names: tuple[str, ...] | None = (
            tuple(str(name) for name in row_names) if row_names is not None else None
        )
        if self.row_names is not None and len(self.row_names) != n_rows:
            raise ValueError(
                f"{len(self.row_names)} row names do not match {n_rows} plan rows"
            )

        if segments is None:
            segments = (PlanSegment(name=source, start=0, stop=n_rows),)
        self.segments: tuple[PlanSegment, ...] = tuple(segments)
        covered = sum(segment.n_rows for segment in self.segments)
        if covered != n_rows or any(
            s.stop > n_rows or (i and s.start != self.segments[i - 1].stop)
            for i, s in enumerate(self.segments)
        ):
            raise ValueError("segments must tile the row range contiguously")

        self.source = str(source)
        self.mean_elts_per_row = float(mean_elts_per_row)

        if trial_range is not None:
            if not 0 <= trial_range.start <= trial_range.stop <= yet.n_trials:
                raise ValueError(
                    f"trial range [{trial_range.start}, {trial_range.stop}) outside "
                    f"the YET's [0, {yet.n_trials})"
                )
            if trial_range.size == 0:
                raise ValueError("a shard-restricted plan needs at least one trial")
        self.trial_range = trial_range
        if n_shards < 0:
            raise ValueError(f"n_shards must be non-negative, got {n_shards}")
        self.n_shards = int(n_shards)
        # Shard-restricted children delegate lazy stack building to their
        # parent so a sharded execution builds (and caches) the stack once.
        self._stack_owner: "ExecutionPlan | None" = None
        # Cached plans are shared across threads by the serving layer;
        # the lazy stack build must happen exactly once.
        self._stack_build_lock = threading.Lock()
        # Lazily quantised float32 view of the stack (native backend,
        # EngineConfig.dtype="float32"); invalidated with the stack.
        self._stack_f32: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Shape accessors
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Number of plan rows (layers x variants x replications...)."""
        return self.terms.n_layers

    @property
    def n_unique_rows(self) -> int:
        """Number of distinct stack rows the gathers read."""
        if self.row_map is None:
            return self.n_rows
        return int(np.unique(self.row_map).size)

    @property
    def trials(self) -> TrialRange:
        """The (global) trial range the plan covers — the whole YET unless restricted."""
        if self.trial_range is not None:
            return self.trial_range
        return TrialRange(0, self.yet.n_trials)

    @property
    def n_trials(self) -> int:
        """Number of trials the plan covers."""
        return self.trials.size

    @property
    def catalog_size(self) -> int:
        """Size of the event catalog the rows index."""
        if self._stack is not None:
            return int(self._stack.shape[1])
        return self.layers[0].catalog_size

    @property
    def has_layers(self) -> bool:
        """True when the plan carries its source layers (non-synthetic rows)."""
        return self.layers is not None

    def workload_shape(self) -> WorkloadShape:
        """The workload shape recorded on results produced from this plan."""
        return WorkloadShape(
            n_trials=self.n_trials,
            events_per_trial=max(self.yet.mean_events_per_trial, 1e-9),
            n_elts=max(int(round(self.mean_elts_per_row)), 1),
            n_layers=self.n_rows,
        )

    # ------------------------------------------------------------------ #
    # Stack materialisation & tiling
    # ------------------------------------------------------------------ #
    def stack(self, timer: PhaseTimer | None = None) -> np.ndarray:
        """The ``(n_unique_rows, catalog_size)`` term-netted loss stack.

        Built lazily from the unique layers' dense matrices and cached on
        the plan, so repeated executions (conformance runs, backend sweeps)
        pay the build once.  Shard-restricted children delegate to the plan
        they were split from, so a sharded execution also builds it once.
        """
        if self._stack is None:
            with self._stack_build_lock:
                if self._stack is not None:  # another thread built it meanwhile
                    return self._stack
                if self._stack_owner is not None:
                    self._stack = self._stack_owner.stack(timer)
                    return self._stack
                if self.row_map is None:
                    matrices = [layer.loss_matrix() for layer in self.layers]
                else:
                    unique_count = int(self.row_map.max()) + 1
                    representatives: List[Layer | None] = [None] * unique_count
                    for row, unique in enumerate(self.row_map):
                        if representatives[unique] is None:
                            representatives[unique] = self.layers[row]
                    matrices = [layer.loss_matrix() for layer in representatives]
                self._stack = build_layer_loss_stack(matrices, timer)
        return self._stack

    def stack_f32(self, timer: PhaseTimer | None = None) -> np.ndarray:
        """The float32 quantisation of :meth:`stack`, built lazily and cached.

        The native backend's ``dtype="float32"`` tier gathers from this copy
        (halving the random-gather bandwidth) while still accumulating in
        double precision, so its results are bit-identical to running the
        float64 pipeline on exactly this quantised stack.  Shard-restricted
        children delegate to their parent, mirroring :meth:`stack`, so a
        sharded or delta-cached execution quantises once.
        """
        if self._stack_f32 is None:
            if self._stack_owner is not None:
                quantised = self._stack_owner.stack_f32(timer)
            else:
                quantised = np.ascontiguousarray(self.stack(timer), dtype=np.float32)
            with self._stack_build_lock:
                if self._stack_f32 is None:
                    self._stack_f32 = quantised
        return self._stack_f32

    def adopt_stack(self, stack: np.ndarray) -> None:
        """Install a precomputed stack (validated like the constructor's).

        Lets repeated lowerings over the *same* rows — above all the
        per-shard plans of :meth:`~repro.core.engine.AggregateRiskEngine.run_sharded`
        — share one stack instead of rebuilding ``n_rows x catalog_size``
        doubles per shard.
        """
        stack = np.ascontiguousarray(stack, dtype=np.float64)
        if stack.ndim != 2:
            raise ValueError(f"stack must be 2-D, got shape {stack.shape}")
        expected = (
            self.n_rows if self.row_map is None else int(self.row_map.max(initial=-1)) + 1
        )
        if stack.shape[0] < expected:
            raise ValueError(
                f"stack has {stack.shape[0]} rows but the plan addresses {expected}"
            )
        self._stack = stack
        self._stack_f32 = None

    @property
    def cached_stack(self) -> np.ndarray | None:
        """The stack if it has been built/adopted already (``None`` otherwise)."""
        return self._stack

    def tiles(
        self, trial_block: int | None = None, row_block: int | None = None
    ) -> List[Tile]:
        """The plan's iteration space split into (trial x row) tiles."""
        return tile_partition(self.n_trials, self.n_rows, trial_block, row_block)

    # ------------------------------------------------------------------ #
    # Trial sharding
    # ------------------------------------------------------------------ #
    def restrict(self, trials: TrialRange) -> "ExecutionPlan":
        """A shard of this plan covering only ``trials`` (globally indexed).

        The child shares the parent's YET, terms, layers, row map and (lazy)
        stack cache — restricting is metadata, not data movement.  Executing
        every shard of a disjoint cover and accumulating the partial results
        reproduces the monolithic run bit for bit.
        """
        if not self.trials.start <= trials.start <= trials.stop <= self.trials.stop:
            raise ValueError(
                f"shard range [{trials.start}, {trials.stop}) outside the plan's "
                f"[{self.trials.start}, {self.trials.stop})"
            )
        child = ExecutionPlan(
            self.yet,
            self.terms,
            layers=self.layers,
            stack=self._stack,
            row_map=self.row_map,
            row_names=self.row_names,
            segments=self.segments,
            source=self.source,
            mean_elts_per_row=self.mean_elts_per_row,
            trial_range=trials,
            n_shards=1,
        )
        child._stack_owner = self
        return child

    def shard(self, n_shards: int) -> List["ExecutionPlan"]:
        """Split the plan into at most ``n_shards`` shard-restricted plans.

        The shards are contiguous, disjoint, non-empty and cover the plan's
        trial range in order (:func:`~repro.parallel.partitioner.shard_partition`).
        They can be executed by any backend, in any order, on any process;
        merge their results through a
        :class:`~repro.core.results.ResultAccumulator`.
        """
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        return [self.restrict(trials) for trials in self.shard_ranges(n_shards)]

    def shard_ranges(self, n_shards: int) -> List[TrialRange]:
        """The global trial ranges a shard loop over this plan iterates.

        At most ``n_shards`` contiguous non-empty ranges (one range covering
        everything when ``n_shards <= 1``); schedulers call this with
        ``plan.n_shards or config.trial_shards``.
        """
        base = self.trials.start
        return [
            TrialRange(base + local.start, base + local.stop)
            for local in shard_partition(self.n_trials, max(int(n_shards), 1))
        ]

    # ------------------------------------------------------------------ #
    # Result splitting
    # ------------------------------------------------------------------ #
    def split_result(self, result: EngineResult) -> List[EngineResult]:
        """One result per segment, splitting the combined rows back apart."""
        if result.ylt.n_layers != self.n_rows:
            raise ValueError(
                f"result has {result.ylt.n_layers} rows but the plan describes {self.n_rows}"
            )
        if len(self.segments) == 1 and not self.segments[0].metadata:
            return [result]
        return [
            result.for_layer_subset(
                range(segment.start, segment.stop),
                extra_details=dict(segment.metadata) if segment.metadata else None,
            )
            for segment in self.segments
        ]


class PlanBuilder:
    """Lowers the engine's public workloads into :class:`ExecutionPlan`."""

    @staticmethod
    def from_program(
        program: ReinsuranceProgram | Layer,
        yet: YearEventTable,
        n_shards: int = 0,
    ) -> ExecutionPlan:
        """Lower ``run``: one row per layer of one program, one segment.

        ``n_shards`` asks the scheduler to execute the plan as that many
        trial shards (``0`` = defer to ``EngineConfig.trial_shards``); the
        merged result is bit-identical either way.
        """
        program = ReinsuranceProgram.wrap(program)
        return ExecutionPlan(
            yet,
            [layer.terms for layer in program.layers],
            layers=program.layers,
            row_names=program.layer_names,
            source="program",
            mean_elts_per_row=program.mean_elts_per_layer,
            n_shards=n_shards,
        )

    @staticmethod
    def from_programs(
        programs: Sequence[ReinsuranceProgram | Layer],
        yet: YearEventTable,
        dedupe: bool = True,
        source: str = "batch",
        n_shards: int = 0,
    ) -> ExecutionPlan:
        """Lower ``run_many``/sweep blocks: concatenated rows, one segment each.

        With ``dedupe`` (the default) rows whose term-netted losses are
        necessarily identical — layers referencing the *same* ELT objects,
        as produced by :meth:`~repro.portfolio.layer.Layer.with_terms`
        candidate variants — share one stack row via the plan's ``row_map``.
        Identity of the ELT tuple is the dedup key: it can never produce a
        false positive, and it catches exactly the sweep's variant pattern.
        """
        normalised = [ReinsuranceProgram.wrap(program) for program in programs]
        if not normalised:
            raise ValueError("at least one program is required")

        layers: List[Layer] = [layer for program in normalised for layer in program.layers]
        total_rows = len(layers)

        row_map: np.ndarray | None = None
        if dedupe:
            unique_of: dict[tuple[int, ...], int] = {}
            mapping = np.empty(total_rows, dtype=np.int64)
            for row, layer in enumerate(layers):
                key = tuple(id(elt) for elt in layer.elts)
                mapping[row] = unique_of.setdefault(key, len(unique_of))
            if len(unique_of) < total_rows:
                row_map = mapping

        segments: List[PlanSegment] = []
        start = 0
        for index, program in enumerate(normalised):
            stop = start + program.n_layers
            segments.append(
                PlanSegment(
                    name=program.name,
                    start=start,
                    stop=stop,
                    metadata={
                        "batch": {
                            "program": program.name,
                            "index": index,
                            "n_programs": len(normalised),
                            "total_layers": total_rows,
                        }
                    },
                )
            )
            start = stop

        mean_elts = sum(layer.n_elts for layer in layers) / total_rows
        return ExecutionPlan(
            yet,
            [layer.terms for layer in layers],
            layers=layers,
            row_map=row_map,
            row_names=[layer.name for layer in layers],
            segments=segments,
            source=source,
            mean_elts_per_row=mean_elts,
            n_shards=n_shards,
        )

    @staticmethod
    def from_stack(
        stack: np.ndarray,
        terms: Sequence[LayerTerms] | LayerTermsVectors,
        yet: YearEventTable,
        row_names: Sequence[str] | None = None,
        n_shards: int = 0,
    ) -> ExecutionPlan:
        """Lower ``run_stacked``: synthetic precomputed rows, no source layers."""
        return ExecutionPlan(
            yet,
            terms,
            stack=stack,
            row_names=row_names,
            source="stacked",
            n_shards=n_shards,
        )


def finalize_plan_result(
    plan: ExecutionPlan,
    backend_name: str,
    losses: np.ndarray,
    max_occurrence: np.ndarray | None,
    wall_seconds: float,
    details: Mapping[str, Any],
    *,
    phase_breakdown=None,
    modeled: Sequence = (),
    modeled_seconds: float | None = None,
) -> EngineResult:
    """Assemble the :class:`EngineResult` every plan scheduler returns.

    Merges the plan's provenance (source, row counts, dedup factor) into the
    backend's ``details`` so the one result-assembly path exists here rather
    than once per backend.
    """
    merged = dict(details)
    merged["plan"] = {
        "source": plan.source,
        "n_rows": plan.n_rows,
        "n_unique_rows": plan.n_unique_rows,
        "n_segments": len(plan.segments),
        "trial_range": [plan.trials.start, plan.trials.stop],
    }
    return EngineResult(
        ylt=YearLossTable(losses, plan.row_names, max_occurrence),
        backend=backend_name,
        wall_seconds=wall_seconds,
        workload_shape=plan.workload_shape(),
        phase_breakdown=phase_breakdown,
        modeled=tuple(modeled),
        modeled_seconds=modeled_seconds,
        details=merged,
    )
