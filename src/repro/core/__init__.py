"""The Aggregate Risk Engine (ARE): the paper's primary contribution.

The engine consumes a :class:`~repro.portfolio.program.ReinsuranceProgram`
(layers over ELTs) and a :class:`~repro.yet.table.YearEventTable` and produces
a :class:`~repro.ylt.table.YearLossTable` — one year loss per (layer, trial) —
exactly as specified by the basic algorithm in Section II-B of the paper.

Five interchangeable backends implement the same computation:

==============  ==============================================================
``sequential``  Pure-Python transcription of the paper's basic algorithm
                (the correctness reference; slow).
``vectorized``  NumPy data-parallel over the whole YET (the fastest
                single-process backend; the functional analogue of "one
                thread per trial" on a throughput device).
``chunked``     NumPy backend that streams the YET through fixed-size event
                chunks, bounding the working set (the analogue of the
                optimised GPU kernel's shared-memory staging).
``multicore``   Multi-process backend over trial blocks (the OpenMP
                analogue), with static or dynamic scheduling.
``gpu``         Functional execution on the :class:`SimulatedGPU` device
                model, reporting both the measured wall time of the NumPy
                execution and the modelled kernel time on a Tesla-C2075-class
                device.
==============  ==============================================================

:class:`~repro.core.engine.AggregateRiskEngine` is the public facade that
selects a backend from an :class:`~repro.core.config.EngineConfig`.
"""

from repro.core.chunked import ChunkedEngine
from repro.core.config import EngineConfig
from repro.core.engine import AggregateRiskEngine, available_backends
from repro.core.gpu_sim import GPUSimulatedEngine
from repro.core.multicore import MulticoreEngine
from repro.core.plan import ExecutionPlan, PlanBuilder, PlanSegment
from repro.core.phases import (
    PHASE_ELT_LOOKUP,
    PHASE_EVENT_FETCH,
    PHASE_FINANCIAL_TERMS,
    PHASE_LAYER_TERMS,
)
from repro.core.results import (
    EngineResult,
    MetricState,
    PartialResult,
    ResultAccumulator,
)
from repro.core.sequential import SequentialEngine
from repro.core.vectorized import VectorizedEngine

__all__ = [
    "AggregateRiskEngine",
    "EngineConfig",
    "EngineResult",
    "ExecutionPlan",
    "MetricState",
    "PartialResult",
    "PlanBuilder",
    "PlanSegment",
    "ResultAccumulator",
    "available_backends",
    "SequentialEngine",
    "VectorizedEngine",
    "ChunkedEngine",
    "MulticoreEngine",
    "GPUSimulatedEngine",
    "PHASE_EVENT_FETCH",
    "PHASE_ELT_LOOKUP",
    "PHASE_FINANCIAL_TERMS",
    "PHASE_LAYER_TERMS",
]
