/* Fused aggregate-analysis kernel: gather + layer terms + trial reductions.
 *
 * One call prices every plan row over one trial shard of a Year Event Table:
 * for each (row, trial) pair it gathers the trial's event losses from the
 * stacked term-netted loss matrix, applies the row's occurrence terms to
 * each gathered value, reduces the termed values to the trial's total and
 * maximum, and clips the total with the row's aggregate terms.  This is the
 * whole body of layer_trial_losses_batch() fused into a single pass with no
 * (n_rows, n_events) intermediate — the NumPy pipeline materialises that
 * matrix at least twice (gather, occurrence terms) and then re-reads it for
 * each reduction.
 *
 * Bit-identity contract (the reason this file is fussier than a textbook
 * loop): the native backend must produce the *same bits* as the vectorized
 * NumPy backend, because the golden conformance suite compares backends
 * with np.array_equal and because disjoint trial shards merge exactly only
 * if each trial's reduction is independent of everything outside the trial.
 * Three NumPy behaviours are therefore replicated precisely:
 *
 * 1. np.add.reduceat over a segment [s, e) computes
 *        v[s] + pairwise_sum(v[s+1 : e])
 *    where pairwise_sum is NumPy's blocked pairwise summation: fewer than 8
 *    elements are added sequentially; 8..128 elements use 8 interleaved
 *    accumulators initialised from the first 8 elements, an 8-wide unrolled
 *    loop, the fixed combination tree ((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7)),
 *    and a sequential tail; more than 128 elements split recursively at
 *    n2 = n/2 rounded down to a multiple of 8.  pairwise_() below mirrors
 *    that algorithm exactly (verified empirically against numpy 2.x).
 * 2. np.clip(x, 0.0, hi) == minimum(maximum(x, 0.0), hi) with NumPy's
 *    ordered comparisons: maximum keeps x only when x > 0.0 (so -0.0
 *    normalises to +0.0) and minimum keeps x only when x < hi.
 * 3. Maxima are order-independent, so the running maximum is folded inside
 *    the summation recursion; empty trials yield 0.0 for both reductions
 *    (matching segment_sum_2d / segment_max_2d with initial=0.0).
 *
 * Do NOT compile with -ffast-math (or any flag that licenses FP
 * reassociation): the summation tree IS the contract.
 *
 * The float32 variant stores the stack in single precision (halving the
 * random-gather bandwidth, which dominates the runtime) but widens every
 * gathered value to double before the terms and reductions — so it is
 * bit-identical to running the float64 pipeline on an f32-quantised stack.
 */

#include <stdint.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#define ARE_NATIVE_ABI_VERSION 1

int64_t are_abi_version(void) { return ARE_NATIVE_ABI_VERSION; }

int32_t are_openmp_enabled(void) {
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

int32_t are_max_threads(void) {
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}

/* One gathered, occurrence-termed value; folds the running maximum. */
#define DEFINE_TERMED(SUFFIX, RTYPE)                                         \
static inline double termed_##SUFFIX(                                        \
    const RTYPE *row, const int64_t *ids, int64_t i,                         \
    double occ_ret, double occ_lim, double *running_max)                     \
{                                                                            \
    double u = (double)row[ids[i]] - occ_ret;                                \
    u = (u > 0.0) ? u : 0.0;                                                 \
    u = (u < occ_lim) ? u : occ_lim;                                         \
    if (u > *running_max) *running_max = u;                                  \
    return u;                                                                \
}

/* NumPy's pairwise summation over termed values (see header comment). */
#define DEFINE_PAIRWISE(SUFFIX, RTYPE)                                      \
static double pairwise_##SUFFIX(                                             \
    const RTYPE *row, const int64_t *ids, int64_t n,                         \
    double occ_ret, double occ_lim, double *running_max)                     \
{                                                                            \
    if (n < 8) {                                                             \
        double res = 0.0;                                                    \
        for (int64_t i = 0; i < n; i++)                                      \
            res += termed_##SUFFIX(row, ids, i, occ_ret, occ_lim,            \
                                   running_max);                             \
        return res;                                                          \
    }                                                                        \
    if (n <= 128) {                                                          \
        double r[8];                                                         \
        for (int64_t j = 0; j < 8; j++)                                      \
            r[j] = termed_##SUFFIX(row, ids, j, occ_ret, occ_lim,            \
                                   running_max);                             \
        int64_t i = 8;                                                       \
        for (; i < n - (n % 8); i += 8)                                      \
            for (int64_t j = 0; j < 8; j++)                                  \
                r[j] += termed_##SUFFIX(row, ids, i + j, occ_ret, occ_lim,   \
                                        running_max);                        \
        double res = ((r[0] + r[1]) + (r[2] + r[3]))                         \
                   + ((r[4] + r[5]) + (r[6] + r[7]));                        \
        for (; i < n; i++)                                                   \
            res += termed_##SUFFIX(row, ids, i, occ_ret, occ_lim,            \
                                   running_max);                             \
        return res;                                                          \
    }                                                                        \
    int64_t n2 = n / 2;                                                      \
    n2 -= n2 % 8;                                                            \
    return pairwise_##SUFFIX(row, ids, n2, occ_ret, occ_lim, running_max)    \
         + pairwise_##SUFFIX(row, ids + n2, n - n2, occ_ret, occ_lim,        \
                             running_max);                                   \
}

DEFINE_TERMED(f64, double)
DEFINE_PAIRWISE(f64, double)
DEFINE_TERMED(f32, float)
DEFINE_PAIRWISE(f32, float)

/* The (row, trial) cell body, shared by the f64/f32 loop nests. */
#define FUSED_CELL(SUFFIX, RTYPE)                                            \
    do {                                                                     \
        const RTYPE *row_losses = (const RTYPE *)stack                       \
            + (row_map ? row_map[r] : r) * catalog_size;                     \
        const double occ_ret = occ_retentions[r];                            \
        const double occ_lim = occ_limits[r];                                \
        const int64_t start = offsets[t];                                    \
        const int64_t n = offsets[t + 1] - start;                            \
        double trial_max = 0.0;                                              \
        double total = 0.0;                                                  \
        if (n > 0) {                                                         \
            const int64_t *trial_ids = event_ids + start;                    \
            const double first = termed_##SUFFIX(                            \
                row_losses, trial_ids, 0, occ_ret, occ_lim, &trial_max);     \
            total = (n == 1)                                                 \
                ? first                                                      \
                : first + pairwise_##SUFFIX(row_losses, trial_ids + 1,       \
                                            n - 1, occ_ret, occ_lim,         \
                                            &trial_max);                     \
        }                                                                    \
        double year = total - agg_retentions[r];                             \
        year = (year > 0.0) ? year : 0.0;                                    \
        year = (year < agg_limits[r]) ? year : agg_limits[r];                \
        year_losses[r * n_trials + t] = year;                                \
        if (max_occ)                                                         \
            max_occ[r * n_trials + t] = trial_max;                           \
    } while (0)

/* Price `n_rows` plan rows over `n_trials` trials in one fused pass.
 *
 * stack:        (n_stack_rows, catalog_size) C-contiguous float64 (or
 *               float32 when stack_is_f32) term-netted loss matrix.
 * row_map:      NULL for the identity mapping, else n_rows indices into the
 *               (deduplicated) stack.
 * event_ids:    the shard's flattened event ids (n_events int64).
 * offsets:      n_trials + 1 CSR offsets local to the shard
 *               (offsets[0] == 0, offsets[n_trials] == n_events).
 * occ_/agg_*:   per-row occurrence/aggregate retentions and limits.
 * year_losses:  (n_rows, n_trials) float64 output.
 * max_occ:      NULL, or a (n_rows, n_trials) float64 output for the
 *               per-trial maximum occurrence losses.
 * n_threads:    OpenMP thread count; <= 0 means the library default.  The
 *               (row, trial) cells are independent, so threading never
 *               changes the bits.
 *
 * Returns 0 on success, a nonzero code on malformed arguments.  Event ids
 * are validated by the Python wrapper (like the NumPy kernel), not here.
 */
int32_t are_fused_rows(
    const void *stack,
    int64_t n_stack_rows,
    int64_t catalog_size,
    int32_t stack_is_f32,
    const int64_t *row_map,
    int64_t n_rows,
    const int64_t *event_ids,
    int64_t n_events,
    const int64_t *offsets,
    int64_t n_trials,
    const double *occ_retentions,
    const double *occ_limits,
    const double *agg_retentions,
    const double *agg_limits,
    double *year_losses,
    double *max_occ,
    int32_t n_threads)
{
    if (!stack || !offsets || !year_losses
        || !occ_retentions || !occ_limits || !agg_retentions || !agg_limits)
        return 1;
    if (n_rows <= 0 || n_trials < 0 || n_events < 0 || catalog_size <= 0)
        return 2;
    if (n_events > 0 && !event_ids)
        return 1;
    if (offsets[0] != 0 || offsets[n_trials] != n_events)
        return 3;
    if (!row_map && n_stack_rows < n_rows)
        return 4;

#ifdef _OPENMP
    const int nt = (n_threads > 0) ? (int)n_threads : omp_get_max_threads();
#else
    (void)n_threads;
#endif

    if (stack_is_f32) {
#ifdef _OPENMP
        #pragma omp parallel for collapse(2) schedule(static) num_threads(nt)
#endif
        for (int64_t r = 0; r < n_rows; r++)
            for (int64_t t = 0; t < n_trials; t++)
                FUSED_CELL(f32, float);
    } else {
#ifdef _OPENMP
        #pragma omp parallel for collapse(2) schedule(static) num_threads(nt)
#endif
        for (int64_t r = 0; r < n_rows; r++)
            for (int64_t t = 0; t < n_trials; t++)
                FUSED_CELL(f64, double);
    }
    return 0;
}
