"""Lazy on-demand build and ctypes loader for the native kernel tier.

The native backend ships a single C source file (``_kernels.c``) and no
build system: the first run compiles it with whatever system compiler is on
``PATH`` (``cc``/``gcc``/``clang``, overridable via ``ARE_NATIVE_CC``) using
``-O3 -fPIC -shared`` plus ``-fopenmp`` when the compiler supports it, and
loads the shared object through :mod:`ctypes`.  Build products are cached
under a content hash of the C source, the flags and the compiler version —
so rebuilds happen exactly when the C (or the toolchain) changes, and a
stale cache can never serve an old kernel for new source.

Everything degrades, nothing raises at import time: a machine without a C
compiler gets :func:`load_kernels` raising :class:`NativeBuildError`, which
the backend turns into a NumPy fallback with a one-time warning.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict

import numpy as np

__all__ = [
    "NativeBuildError",
    "NativeKernels",
    "find_compiler",
    "compiler_version",
    "openmp_flags",
    "cache_dir",
    "library_path",
    "ensure_built",
    "load_kernels",
    "native_status",
]

#: The C source compiled into the kernel library.
SOURCE_PATH = Path(__file__).resolve().with_name("_kernels.c")

#: Environment variable overriding compiler discovery (a name or a path).
CC_ENV = "ARE_NATIVE_CC"

#: Environment variable overriding the build-cache directory.
CACHE_ENV = "ARE_NATIVE_CACHE"

#: Compilers tried, in order, when ``ARE_NATIVE_CC`` is not set.
COMPILER_CANDIDATES = ("cc", "gcc", "clang")

#: Flags every build uses.  -O3 without -ffast-math preserves the FP
#: evaluation order the kernel's bit-identity contract depends on.
BASE_FLAGS = ("-O3", "-fPIC", "-shared", "-std=c11")

OPENMP_FLAG = "-fopenmp"

#: Must match ARE_NATIVE_ABI_VERSION in _kernels.c.
ABI_VERSION = 1


class NativeBuildError(RuntimeError):
    """The native kernel library could not be built or loaded."""


def find_compiler() -> str | None:
    """Absolute path of the C compiler to use, or ``None`` when absent.

    ``ARE_NATIVE_CC`` (a name or path) takes precedence; when it does not
    resolve, discovery reports *no* compiler rather than silently falling
    back to a different toolchain than the one the user asked for.
    """
    override = os.environ.get(CC_ENV)
    if override:
        return shutil.which(override)
    for candidate in COMPILER_CANDIDATES:
        path = shutil.which(candidate)
        if path:
            return path
    return None


def compiler_version(cc: str) -> str:
    """First line of ``cc --version`` (used in the build signature)."""
    try:
        probe = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, check=False, timeout=30
        )
    except OSError as exc:  # pragma: no cover - racing PATH changes
        return f"unavailable ({exc})"
    lines = (probe.stdout or probe.stderr).splitlines()
    return lines[0].strip() if lines else "unknown"


_OPENMP_PROBE_SOURCE = (
    "#include <omp.h>\n"
    "int are_openmp_probe(void) { return omp_get_max_threads(); }\n"
)

_openmp_support: Dict[str, bool] = {}
_openmp_lock = threading.Lock()


def openmp_flags(cc: str) -> tuple[str, ...]:
    """``("-fopenmp",)`` when the compiler can build with it, else ``()``.

    Probed once per compiler path by test-compiling a one-function shared
    object; memoised for the life of the process.
    """
    with _openmp_lock:
        supported = _openmp_support.get(cc)
    if supported is None:
        supported = _probe_openmp(cc)
        with _openmp_lock:
            _openmp_support[cc] = supported
    return (OPENMP_FLAG,) if supported else ()


def _probe_openmp(cc: str) -> bool:
    with tempfile.TemporaryDirectory(prefix="are-native-probe-") as tmp:
        source = Path(tmp) / "probe.c"
        source.write_text(_OPENMP_PROBE_SOURCE)
        out = Path(tmp) / "probe.so"
        command = [cc, *BASE_FLAGS, OPENMP_FLAG, str(source), "-o", str(out)]
        try:
            result = subprocess.run(command, capture_output=True, check=False, timeout=120)
        except OSError:  # pragma: no cover - racing PATH changes
            return False
        return result.returncode == 0 and out.exists()


def cache_dir() -> Path:
    """Directory the compiled libraries are cached in (created on demand)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        base = Path(override)
    else:
        base = Path.home() / ".cache" / "are_native"
    base.mkdir(parents=True, exist_ok=True)
    return base


def _build_signature(cc: str, flags: tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    digest.update(SOURCE_PATH.read_bytes())
    digest.update("\x1f".join(flags).encode())
    digest.update(compiler_version(cc).encode())
    return digest.hexdigest()[:16]


def library_path(cc: str, flags: tuple[str, ...]) -> Path:
    """Cache path of the library built from the current source with ``cc``."""
    return cache_dir() / f"are_kernels-{_build_signature(cc, flags)}.so"


def ensure_built(force: bool = False) -> Path:
    """Compile the kernel library if its cached build is missing or stale.

    The cache key embeds the source content, the flags and the compiler
    version, so editing ``_kernels.c`` (or switching toolchains) lands on a
    new path and triggers a rebuild automatically; ``force`` rebuilds even a
    fresh cache entry.
    """
    cc = find_compiler()
    if cc is None:
        override = os.environ.get(CC_ENV)
        hint = (
            f"{CC_ENV}={override!r} does not resolve to an executable"
            if override
            else f"no C compiler on PATH (tried {', '.join(COMPILER_CANDIDATES)})"
        )
        raise NativeBuildError(
            f"cannot build the native kernels: {hint}; the native backend "
            "will fall back to the vectorized NumPy path"
        )
    flags = BASE_FLAGS + openmp_flags(cc)
    target = library_path(cc, flags)
    if target.exists() and not force:
        return target

    # Build into a unique temporary name and publish atomically, so
    # concurrent first builds (several engines, several processes) race
    # benignly instead of loading a half-written object.
    fd, staging = tempfile.mkstemp(
        prefix=target.stem + "-", suffix=".so.tmp", dir=target.parent
    )
    os.close(fd)
    command = [cc, *flags, str(SOURCE_PATH), "-o", staging]
    try:
        result = subprocess.run(command, capture_output=True, text=True, check=False)
        if result.returncode != 0:
            raise NativeBuildError(
                "native kernel compilation failed "
                f"({' '.join(command)}):\n{result.stderr.strip()}"
            )
        os.replace(staging, target)
    finally:
        if os.path.exists(staging):
            os.unlink(staging)
    return target


class NativeKernels:
    """A loaded kernel library with its ABI declared and wrapped.

    Thread-safe: the underlying ``are_fused_rows`` writes only to the output
    arrays passed per call, and ctypes releases the GIL for the duration of
    the call — which is what lets the serving layer price concurrent
    requests through one loaded library.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        try:
            self._lib = ctypes.CDLL(str(path))
        except OSError as exc:
            raise NativeBuildError(f"cannot load native kernels from {path}: {exc}")

        self._lib.are_abi_version.restype = ctypes.c_int64
        self._lib.are_abi_version.argtypes = []
        self._lib.are_openmp_enabled.restype = ctypes.c_int32
        self._lib.are_openmp_enabled.argtypes = []
        self._lib.are_max_threads.restype = ctypes.c_int32
        self._lib.are_max_threads.argtypes = []
        self._lib.are_fused_rows.restype = ctypes.c_int32
        self._lib.are_fused_rows.argtypes = [
            ctypes.c_void_p,  # stack
            ctypes.c_int64,   # n_stack_rows
            ctypes.c_int64,   # catalog_size
            ctypes.c_int32,   # stack_is_f32
            ctypes.c_void_p,  # row_map (or NULL)
            ctypes.c_int64,   # n_rows
            ctypes.c_void_p,  # event_ids
            ctypes.c_int64,   # n_events
            ctypes.c_void_p,  # offsets
            ctypes.c_int64,   # n_trials
            ctypes.c_void_p,  # occ_retentions
            ctypes.c_void_p,  # occ_limits
            ctypes.c_void_p,  # agg_retentions
            ctypes.c_void_p,  # agg_limits
            ctypes.c_void_p,  # year_losses out
            ctypes.c_void_p,  # max_occ out (or NULL)
            ctypes.c_int32,   # n_threads
        ]

        abi = int(self._lib.are_abi_version())
        if abi != ABI_VERSION:
            raise NativeBuildError(
                f"native kernel ABI mismatch: library reports {abi}, "
                f"loader expects {ABI_VERSION} (stale {path}?)"
            )
        self.openmp = bool(self._lib.are_openmp_enabled())

    def max_threads(self) -> int:
        """OpenMP's default thread count for this process (1 without OpenMP)."""
        return int(self._lib.are_max_threads())

    def fused_rows(
        self,
        stack: np.ndarray,
        event_ids: np.ndarray,
        offsets: np.ndarray,
        occ_retentions: np.ndarray,
        occ_limits: np.ndarray,
        agg_retentions: np.ndarray,
        agg_limits: np.ndarray,
        row_map: np.ndarray | None = None,
        record_max_occurrence: bool = True,
        n_threads: int = 0,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """One fused pass: year losses (and optional maxima) for every row.

        Mirrors :func:`repro.core.kernels.layer_trial_losses_batch` with
        ``use_shortcut=True`` bit for bit (for a float32 ``stack``, bit for
        bit against the float64 pipeline on the f32-quantised stack).
        """
        if stack.ndim != 2:
            raise ValueError(f"stack must be 2-D, got shape {stack.shape}")
        if stack.dtype == np.float32:
            is_f32 = 1
        elif stack.dtype == np.float64:
            is_f32 = 0
        else:
            raise ValueError(f"stack dtype must be float32/float64, got {stack.dtype}")
        stack = np.ascontiguousarray(stack)
        ids = np.ascontiguousarray(event_ids, dtype=np.int64)
        offs = np.ascontiguousarray(offsets, dtype=np.int64)
        if offs.ndim != 1 or offs.size < 1:
            raise ValueError("offsets must be a non-empty 1-D array")
        n_trials = offs.size - 1
        if offs[0] != 0 or offs[-1] != ids.size:
            raise ValueError(
                f"offsets must run 0..{ids.size}, got [{offs[0]}, {offs[-1]}]"
            )
        # Same catalog-range validation as the NumPy kernel: the C side
        # gathers unchecked, so out-of-range ids must fail loudly here.
        if ids.size and (ids.min() < 0 or ids.max() >= stack.shape[1]):
            raise IndexError("event ids out of range of the catalog")

        occ_ret = np.ascontiguousarray(occ_retentions, dtype=np.float64)
        occ_lim = np.ascontiguousarray(occ_limits, dtype=np.float64)
        agg_ret = np.ascontiguousarray(agg_retentions, dtype=np.float64)
        agg_lim = np.ascontiguousarray(agg_limits, dtype=np.float64)
        n_rows = occ_ret.size
        if not (occ_lim.size == agg_ret.size == agg_lim.size == n_rows):
            raise ValueError("term vectors must all have one entry per row")

        if row_map is not None:
            row_map = np.ascontiguousarray(row_map, dtype=np.int64)
            if row_map.shape != (n_rows,):
                raise ValueError(
                    f"row_map must have one entry per row ({n_rows}), "
                    f"got shape {row_map.shape}"
                )
            if row_map.size and (row_map.min() < 0 or row_map.max() >= stack.shape[0]):
                raise IndexError("row_map indices out of range of the stack")
        elif stack.shape[0] < n_rows:
            raise ValueError(
                f"stack has {stack.shape[0]} rows but terms describe {n_rows}"
            )

        year_losses = np.empty((n_rows, n_trials), dtype=np.float64)
        max_occ = (
            np.empty((n_rows, n_trials), dtype=np.float64)
            if record_max_occurrence
            else None
        )

        status = self._lib.are_fused_rows(
            stack.ctypes.data,
            stack.shape[0],
            stack.shape[1],
            is_f32,
            row_map.ctypes.data if row_map is not None else None,
            n_rows,
            ids.ctypes.data if ids.size else None,
            ids.size,
            offs.ctypes.data,
            n_trials,
            occ_ret.ctypes.data,
            occ_lim.ctypes.data,
            agg_ret.ctypes.data,
            agg_lim.ctypes.data,
            year_losses.ctypes.data,
            max_occ.ctypes.data if max_occ is not None else None,
            int(n_threads),
        )
        if status != 0:
            raise RuntimeError(f"are_fused_rows rejected its arguments (code {status})")
        return year_losses, max_occ


_loaded: Dict[Path, NativeKernels] = {}
_load_lock = threading.Lock()


def load_kernels(force_rebuild: bool = False) -> NativeKernels:
    """Build (if needed) and load the kernel library, memoised per build.

    The memo is keyed by the content-hashed library path, so callers can
    invoke this per run: an unchanged source is a dictionary hit, and an
    edited source resolves to a new path and gets compiled + loaded fresh.

    Raises :class:`NativeBuildError` when no compiler is available or the
    build fails.
    """
    path = ensure_built(force=force_rebuild)
    with _load_lock:
        kernels = _loaded.get(path)
        if kernels is None or force_rebuild:
            kernels = NativeKernels(path)
            _loaded[path] = kernels
    return kernels


def native_status() -> Dict[str, Any]:
    """Availability probe for ``are backends``: what the native tier would do.

    Never raises and never compiles; reports the compiler (path + version),
    OpenMP support, whether a current cached build exists, and — when the
    tier is unavailable — the reason the backend would fall back.
    """
    status: Dict[str, Any] = {
        "available": False,
        "compiler": None,
        "compiler_version": None,
        "openmp": None,
        "cached_library": None,
        "cache_dir": str(cache_dir()),
        "reason": None,
    }
    cc = find_compiler()
    if cc is None:
        override = os.environ.get(CC_ENV)
        status["reason"] = (
            f"{CC_ENV}={override!r} does not resolve to an executable"
            if override
            else f"no C compiler on PATH (tried {', '.join(COMPILER_CANDIDATES)})"
        )
        return status
    status["available"] = True
    status["compiler"] = cc
    status["compiler_version"] = compiler_version(cc)
    flags = BASE_FLAGS + openmp_flags(cc)
    status["openmp"] = OPENMP_FLAG in flags
    target = library_path(cc, flags)
    status["cached_library"] = str(target) if target.exists() else None
    status["platform"] = platform.platform()
    return status
