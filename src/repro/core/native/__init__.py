"""Native compiled kernel tier: in-repo C, built on demand, loaded via ctypes.

See :mod:`repro.core.native.build` for the build/cache/loader machinery and
``_kernels.c`` for the fused kernel and its bit-identity contract; the
backend that schedules plans through it lives in
:mod:`repro.core.native_backend`.
"""

from repro.core.native.build import (
    NativeBuildError,
    NativeKernels,
    ensure_built,
    load_kernels,
    native_status,
)

__all__ = [
    "NativeBuildError",
    "NativeKernels",
    "ensure_built",
    "load_kernels",
    "native_status",
]
