"""The public engine facade.

:class:`AggregateRiskEngine` selects one of the five backends from an
:class:`~repro.core.config.EngineConfig` and drives it through the unified
**ExecutionPlan** pipeline: every public workload is *lowered* to an
:class:`~repro.core.plan.ExecutionPlan` (tiles over trial blocks x stacked
term-netted layer rows) by a :class:`~repro.core.plan.PlanBuilder`, and the
backend *schedules* that plan through the shared kernels — facade -> plan ->
scheduler.  Typical use::

    from repro.core import AggregateRiskEngine, EngineConfig

    engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
    result = engine.run(program, yet)
    year_losses = result.ylt.layer(0)

Many programs (e.g. an underwriter's candidate-term variants, or several
cedants' submissions over one simulated event set) can be priced in a single
engine invocation with :meth:`AggregateRiskEngine.run_many` — their layers
are concatenated into one plan (identical ELT gathers deduplicated across
variants), the whole batch flows through the fused multi-layer kernel in one
pass over the Year Event Table, and the result is split back per program::

    engine = AggregateRiskEngine()          # fused_layers=True by default
    results = engine.run_many([program_a, program_b], yet)
    premium_basis = results[0].ylt.layer(0)  # program_a's first layer

Workloads that synthesise their own term-netted loss rows — above all the
replication-batched secondary-uncertainty engine, which samples ``R``
realisations of a program and prices them as ``R x n_layers`` fused rows —
enter through :meth:`AggregateRiskEngine.run_stacked`; power users can build
and execute plans directly via :class:`~repro.core.plan.PlanBuilder` and
:meth:`AggregateRiskEngine.run_plan`.  Streaming many programs through
blocks of one engine pass — the scenario-diversity path — is the job of
:class:`~repro.portfolio.sweep.PortfolioSweepService` (CLI: ``are sweep``).

The resulting banded quote of the uncertainty path looks like::

    analysis = SecondaryUncertaintyAnalysis(uncertain_layers)
    quote = analysis.quote(yet, n_replications=64, rng=2012)
    print(quote.summary())            # "...: EL=1,234 premium=2,345 aal_band=[...]"
    print(quote.band("aal").relative_spread())

(the CLI equivalent is ``are uncertainty --replications 64``).

Long-lived serving deployments should front the engine with a
:class:`~repro.service.service.RiskService`: it keeps one warm engine, a
content-addressed cache of lowered plans and fused stacks, and (multicore)
retained shared-memory workspaces, so repeated requests skip straight to
the kernel pass — see :meth:`retain_shared_workspaces`.

The pre-plan per-backend ``run`` dispatch (the former ``"legacy"`` execution
mode) was kept one release behind the plan-vs-legacy conformance suite and
has been removed as scheduled; requesting that mode on
:class:`~repro.core.config.EngineConfig` now raises with a migration hint.

The facade also provides :meth:`AggregateRiskEngine.compare_backends`, which
runs the same workload through several backends (optionally through both the
fused multi-layer path and the per-layer path of each backend) and verifies
that they agree — the programmatic form of the library's core correctness
guarantee.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.core.chunked import ChunkedEngine
from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.core.gpu_sim import GPUSimulatedEngine
from repro.core.multicore import MulticoreEngine
from repro.core.plan import ExecutionPlan, PlanBuilder
from repro.core.results import EngineResult
from repro.core.sequential import SequentialEngine
from repro.core.vectorized import VectorizedEngine
from repro.financial.terms import LayerTerms, LayerTermsVectors
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.yet.table import YearEventTable

__all__ = ["AggregateRiskEngine", "available_backends"]

_BACKEND_CLASSES: Dict[str, Callable[[EngineConfig], object]] = {
    "sequential": SequentialEngine,
    "vectorized": VectorizedEngine,
    "chunked": ChunkedEngine,
    "multicore": MulticoreEngine,
    "gpu": GPUSimulatedEngine,
}


def available_backends() -> tuple[str, ...]:
    """Names of the engine backends shipped with the library."""
    return BACKEND_NAMES


class AggregateRiskEngine:
    """Facade over the aggregate-analysis backends."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig()
        backend_cls = _BACKEND_CLASSES.get(self.config.backend)
        if backend_cls is None:  # pragma: no cover - EngineConfig already validates
            raise ValueError(f"unknown backend {self.config.backend!r}")
        self._backend = backend_cls(self.config)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    @property
    def backend_name(self) -> str:
        """Name of the selected backend."""
        return self.config.backend

    def run_plan(self, plan: ExecutionPlan) -> EngineResult:
        """Execute a prebuilt :class:`~repro.core.plan.ExecutionPlan`.

        This is the single execution entry every other method funnels into:
        ``run``/``run_many``/``run_stacked`` only differ in how they *lower*
        their workload to a plan.  The backend schedules the plan's tiles
        through the shared kernels and returns the combined result (use
        :meth:`ExecutionPlan.split_result` to break a multi-segment plan's
        result back apart).
        """
        return self._backend.run_plan(plan)

    def run(self, program: ReinsuranceProgram | Layer, yet: YearEventTable) -> EngineResult:
        """Run the aggregate analysis and return the full result object."""
        return self.run_plan(PlanBuilder.from_program(program, yet))

    def year_loss_table(self, program: ReinsuranceProgram | Layer, yet: YearEventTable):
        """Run the analysis and return only the Year Loss Table."""
        return self.run(program, yet).ylt

    # ------------------------------------------------------------------ #
    # Warm-engine lifecycle (used by the RiskService)
    # ------------------------------------------------------------------ #
    def retain_shared_workspaces(self, enabled: bool = True) -> None:
        """Keep multicore shared-memory workspaces alive across runs.

        With retention enabled, re-executing the *same*
        :class:`~repro.core.plan.ExecutionPlan` object reuses the published
        shared-memory workspace instead of copying the fused stack and YET
        columns back into ``/dev/shm`` per call — the warm-request transport
        of the :class:`~repro.service.service.RiskService`.  A retained
        workspace is released when its plan is garbage collected, when
        retention is disabled, or via :meth:`release_workspaces`.  Backends
        without a shared-memory transport ignore the toggle.
        """
        backend = self._backend
        if hasattr(backend, "retain_workspaces"):
            backend.retain_workspaces = bool(enabled)
            if not enabled:
                backend.release_workspaces()

    def release_workspaces(self) -> None:
        """Close any shared-memory workspaces retained across runs."""
        backend = self._backend
        if hasattr(backend, "release_workspaces"):
            backend.release_workspaces()

    def close(self) -> None:
        """Release every resource the engine holds beyond a single run."""
        self.release_workspaces()

    def run_many(
        self,
        programs: Sequence[ReinsuranceProgram | Layer],
        yet: YearEventTable,
        dedupe: bool = True,
    ) -> List[EngineResult]:
        """Price many programs over one YET in a single engine invocation.

        The programs' layers are concatenated into one
        :class:`~repro.core.plan.ExecutionPlan` and executed in one backend
        run — with the default ``fused_layers`` configuration that means a
        single stacked gather covering *every* layer of *every* program per
        pass over the Year Event Table.  The combined result is then split
        back into one :class:`EngineResult` per input program (each carrying
        the shared run's wall time and a ``details["batch"]`` entry
        recording the batch shape).

        All programs must reference the same event-catalog size (they are
        priced against the same YET).  With ``dedupe`` (the default) layers
        of different programs that reference the same ELT objects — e.g.
        candidate-term variants built with
        :meth:`~repro.portfolio.layer.Layer.with_terms` — share one stack
        row, so each distinct term-netted gather is read once regardless of
        how many variants request it.
        """
        normalised = [ReinsuranceProgram.wrap(program) for program in programs]
        if not normalised:
            raise ValueError("run_many needs at least one program")
        plan = PlanBuilder.from_programs(normalised, yet, dedupe=dedupe)
        return plan.split_result(self.run_plan(plan))

    def run_stacked(
        self,
        stack: np.ndarray,
        terms: Sequence[LayerTerms] | LayerTermsVectors,
        yet: YearEventTable,
        layer_names: Sequence[str] | None = None,
    ) -> EngineResult:
        """Price precomputed term-netted stack rows over one YET.

        ``stack`` is an ``(n_rows, catalog_size)`` matrix in the layout of
        :func:`~repro.core.kernels.build_layer_loss_stack` — each row a dense
        per-catalog-entry loss vector already net of per-ELT financial terms —
        and ``terms`` supplies one set of layer terms per row.  This is the
        entry point for workloads that synthesise their own rows instead of
        deriving them from :class:`~repro.portfolio.layer.Layer` objects; the
        replication-batched secondary-uncertainty engine prices all ``R``
        sampled realisations of a program as ``R * n_layers`` stacked rows
        through it in a single pass over the Year Event Table.

        The workload lowers to a synthetic :class:`ExecutionPlan` (no source
        layers), so it is supported by the backends with a fused path —
        vectorized, chunked and multicore; the sequential and gpu reference
        backends raise ``ValueError``.
        """
        plan = PlanBuilder.from_stack(stack, terms, yet, row_names=layer_names)
        return self.run_plan(plan)

    # ------------------------------------------------------------------ #
    # Cross-backend validation
    # ------------------------------------------------------------------ #
    @staticmethod
    def compare_backends(
        program: ReinsuranceProgram | Layer,
        yet: YearEventTable,
        backends: Iterable[str] = ("sequential", "vectorized", "chunked"),
        base_config: EngineConfig | None = None,
        rtol: float = 1e-9,
        atol: float = 1e-6,
        check_fused: bool = False,
    ) -> Mapping[str, EngineResult]:
        """Run several backends on the same workload and assert agreement.

        With ``check_fused=True`` every backend is additionally run with
        ``fused_layers`` inverted relative to ``base_config`` — i.e. the fused
        multi-layer batch path and the per-layer loop are both exercised and
        must agree.  The extra results are stored under ``"<name>:fused"`` /
        ``"<name>:per-layer"`` keys, which reflect the *requested* config:
        backends without a fused path (sequential, gpu) — and configs where
        the fused path is unavailable, such as chunked with
        ``use_aggregate_shortcut=False`` — simply run their reference path
        twice; check ``result.details["fused_layers"]`` for the path a run
        actually took.

        Returns the per-run results; raises ``AssertionError`` with a
        descriptive message if any run's YLT deviates from the first run's
        YLT beyond the tolerances.
        """
        base = base_config if base_config is not None else EngineConfig()
        runs: List[tuple[str, EngineConfig]] = []
        for name in backends:
            runs.append((name, base.with_backend(name)))
            if check_fused:
                flipped = base.with_backend(name, fused_layers=not base.fused_layers)
                suffix = "fused" if flipped.fused_layers else "per-layer"
                runs.append((f"{name}:{suffix}", flipped))

        results: Dict[str, EngineResult] = {}
        reference_name: str | None = None
        for key, config in runs:
            results[key] = AggregateRiskEngine(config).run(program, yet)
            if reference_name is None:
                reference_name = key
                continue
            reference = results[reference_name].ylt.losses
            candidate = results[key].ylt.losses
            if not np.allclose(reference, candidate, rtol=rtol, atol=atol):
                worst = float(np.max(np.abs(reference - candidate)))
                raise AssertionError(
                    f"backend {key!r} disagrees with {reference_name!r}: "
                    f"max abs difference {worst:.3e}"
                )
        return results
