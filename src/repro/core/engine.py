"""The public engine facade.

:class:`AggregateRiskEngine` selects and drives one of the five backends from
an :class:`~repro.core.config.EngineConfig`.  Typical use::

    from repro.core import AggregateRiskEngine, EngineConfig

    engine = AggregateRiskEngine(EngineConfig(backend="vectorized"))
    result = engine.run(program, yet)
    year_losses = result.ylt.layer(0)

The facade also provides :meth:`AggregateRiskEngine.compare_backends`, which
runs the same workload through several backends and verifies that they agree —
the programmatic form of the library's core correctness guarantee.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping

import numpy as np

from repro.core.chunked import ChunkedEngine
from repro.core.config import BACKEND_NAMES, EngineConfig
from repro.core.gpu_sim import GPUSimulatedEngine
from repro.core.multicore import MulticoreEngine
from repro.core.results import EngineResult
from repro.core.sequential import SequentialEngine
from repro.core.vectorized import VectorizedEngine
from repro.portfolio.layer import Layer
from repro.portfolio.program import ReinsuranceProgram
from repro.yet.table import YearEventTable

__all__ = ["AggregateRiskEngine", "available_backends"]

_BACKEND_CLASSES: Dict[str, Callable[[EngineConfig], object]] = {
    "sequential": SequentialEngine,
    "vectorized": VectorizedEngine,
    "chunked": ChunkedEngine,
    "multicore": MulticoreEngine,
    "gpu": GPUSimulatedEngine,
}


def available_backends() -> tuple[str, ...]:
    """Names of the engine backends shipped with the library."""
    return BACKEND_NAMES


class AggregateRiskEngine:
    """Facade over the aggregate-analysis backends."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig()
        backend_cls = _BACKEND_CLASSES.get(self.config.backend)
        if backend_cls is None:  # pragma: no cover - EngineConfig already validates
            raise ValueError(f"unknown backend {self.config.backend!r}")
        self._backend = backend_cls(self.config)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    @property
    def backend_name(self) -> str:
        """Name of the selected backend."""
        return self.config.backend

    def run(self, program: ReinsuranceProgram | Layer, yet: YearEventTable) -> EngineResult:
        """Run the aggregate analysis and return the full result object."""
        return self._backend.run(program, yet)

    def year_loss_table(self, program: ReinsuranceProgram | Layer, yet: YearEventTable):
        """Run the analysis and return only the Year Loss Table."""
        return self.run(program, yet).ylt

    # ------------------------------------------------------------------ #
    # Cross-backend validation
    # ------------------------------------------------------------------ #
    @staticmethod
    def compare_backends(
        program: ReinsuranceProgram | Layer,
        yet: YearEventTable,
        backends: Iterable[str] = ("sequential", "vectorized", "chunked"),
        base_config: EngineConfig | None = None,
        rtol: float = 1e-9,
        atol: float = 1e-6,
    ) -> Mapping[str, EngineResult]:
        """Run several backends on the same workload and assert agreement.

        Returns the per-backend results; raises ``AssertionError`` with a
        descriptive message if any backend's YLT deviates from the first
        backend's YLT beyond the tolerances.
        """
        base = base_config if base_config is not None else EngineConfig()
        results: Dict[str, EngineResult] = {}
        reference_name: str | None = None
        for name in backends:
            engine = AggregateRiskEngine(base.with_backend(name))
            results[name] = engine.run(program, yet)
            if reference_name is None:
                reference_name = name
                continue
            reference = results[reference_name].ylt.losses
            candidate = results[name].ylt.losses
            if not np.allclose(reference, candidate, rtol=rtol, atol=atol):
                worst = float(np.max(np.abs(reference - candidate)))
                raise AssertionError(
                    f"backend {name!r} disagrees with {reference_name!r}: "
                    f"max abs difference {worst:.3e}"
                )
        return results
